//! The assembled PPA machine: geometry + engine + controller.
//!
//! [`Machine`] exposes the *costed* instruction set: every method that
//! corresponds to one SIMD controller instruction records exactly one step
//! of the matching [`Op`] class before executing its per-PE
//! effect through the [`crate::engine`]. Higher layers (the PPC
//! runtime, the algorithms) are written exclusively against this interface,
//! so the controller's tallies are a faithful census of the simulated
//! machine's time steps.

use crate::bus;
use crate::controller::{Controller, Op};
use crate::engine::ExecMode;
use crate::error::MachineError;
use crate::faults::{bist_sweep, FaultMap, FaultReport, SwitchFault, TransientFaults};
use crate::geometry::{Dim, Direction};
use crate::plane::Plane;

/// A Polymorphic Processor Array instance.
#[derive(Debug, Clone)]
pub struct Machine {
    dim: Dim,
    mode: ExecMode,
    controller: Controller,
    faults: FaultMap,
    transient: Option<TransientFaults>,
}

impl Machine {
    /// Creates a `rows x cols` machine running per-PE loops sequentially.
    pub fn new(rows: usize, cols: usize) -> Self {
        Machine::with_mode(Dim::new(rows, cols), ExecMode::Sequential)
    }

    /// Creates a square `n x n` machine (the shape used by all the graph
    /// algorithms: one PE per weight-matrix element).
    pub fn square(n: usize) -> Self {
        Machine::new(n, n)
    }

    /// Creates a machine with an explicit host execution mode.
    pub fn with_mode(dim: Dim, mode: ExecMode) -> Self {
        Machine {
            dim,
            mode,
            controller: Controller::new(),
            faults: FaultMap::new(),
            transient: None,
        }
    }

    // ----- fault attachment ------------------------------------------------

    /// Attaches a permanent stuck-at fault map: from now on every
    /// switch-configuring instruction passes its intended Open mask through
    /// [`FaultMap::apply`] before the bus executes. A healthy (empty) map
    /// leaves the instruction path bit-identical to an unfaulted machine.
    pub fn attach_faults(&mut self, faults: FaultMap) {
        if let Some(m) = self.controller.metrics_mut() {
            m.inc("faults.injected", faults.len() as u64);
        }
        self.faults = faults;
    }

    /// The currently attached permanent fault map.
    pub fn faults(&self) -> &FaultMap {
        &self.faults
    }

    /// Attaches a seeded transient-glitch process sampled once per bus
    /// transfer (see [`TransientFaults`]).
    pub fn attach_transient_faults(&mut self, transient: TransientFaults) {
        self.transient = Some(transient);
    }

    /// Detaches all fault models, restoring a healthy machine.
    pub fn clear_faults(&mut self) {
        self.faults = FaultMap::new();
        self.transient = None;
    }

    /// The Open mask the (possibly faulty) hardware realizes for one bus
    /// transfer, or `None` when the machine is healthy and the intended
    /// mask applies unchanged. Samples the transient process, so each call
    /// is one transfer.
    fn effective_open(&mut self, intended: &Plane<bool>) -> Option<Plane<bool>> {
        let glitch = self.transient.as_mut().and_then(|t| t.sample(self.dim));
        if self.faults.is_empty() && glitch.is_none() {
            return None;
        }
        let mut effective = self.faults.apply(intended);
        if let Some(c) = glitch {
            let flipped = !*effective.get(c);
            effective.set(c, flipped);
            if let Some(m) = self.controller.metrics_mut() {
                m.inc("faults.transient_flips", 1);
            }
        }
        if effective != *intended {
            if let Some(m) = self.controller.metrics_mut() {
                m.inc("faults.distorted_transfers", 1);
            }
        }
        Some(effective)
    }

    /// The array dimensions.
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// The host execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Changes the host execution mode (does not affect step counts).
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// Read access to the step-counting controller.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Mutable access to the controller (for tracing or phase labels).
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// Zeroes the step counters.
    pub fn reset_steps(&mut self) {
        self.controller.reset();
    }

    fn check<TP>(&self, p: &Plane<TP>) -> Result<(), MachineError> {
        if p.dim() == self.dim {
            Ok(())
        } else {
            Err(MachineError::DimMismatch {
                expected: self.dim,
                found: p.dim(),
            })
        }
    }

    /// Fraction of `true` cells in a mask plane, computed only when an
    /// observer is attached (the count is O(p) host work the simulated
    /// machine would not perform).
    fn occupancy_of(&self, mask: &Plane<bool>) -> Option<f64> {
        if !self.controller.observing() {
            return None;
        }
        let active = mask.as_slice().iter().filter(|&&b| b).count();
        Some(active as f64 / self.dim.len().max(1) as f64)
    }

    /// Number of bus clusters the Open mask induces for `dir` (only when
    /// observing). `None` when some line has no driver — the primitive
    /// itself reports that case as a fault or a single cluster.
    fn clusters_of(&self, dir: Direction, open: &Plane<bool>) -> Option<u64> {
        if !self.controller.observing() {
            return None;
        }
        match bus::cluster_heads(self.dim, dir, open) {
            Ok(heads) => Some(heads.iter().enumerate().filter(|&(i, &h)| i == h).count() as u64),
            Err(_) => None,
        }
    }

    /// Records one bus-class instruction with activity statistics and the
    /// shared bus metrics counters.
    fn record_bus(&mut self, op: Op, occupancy: Option<f64>, clusters: Option<u64>) {
        let label = self.controller.phase();
        self.controller
            .record_observed(op, label, occupancy, clusters);
        let len = self.dim.len();
        if let Some(m) = self.controller.metrics_mut() {
            m.inc("bus.transactions", 1);
            if let Some(k) = clusters {
                m.inc("bus.clusters", k);
            }
            if let Some(o) = occupancy {
                m.inc("mask.active_pes", (o * len as f64).round() as u64);
            }
        }
    }

    // ----- communication instructions -------------------------------------

    /// `broadcast(src, dir, L)`: one controller step; every PE receives the
    /// `src` value of the Open node heading its bus cluster.
    pub fn broadcast<T: Copy + Send + Sync>(
        &mut self,
        src: &Plane<T>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<T>, MachineError> {
        let effective = self.effective_open(open);
        let open = effective.as_ref().unwrap_or(open);
        let (occ, clusters) = (self.occupancy_of(open), self.clusters_of(dir, open));
        self.record_bus(Op::Broadcast, occ, clusters);
        bus::broadcast(self.mode, self.dim, src, dir, open)
    }

    /// Wired-OR over bus clusters: one controller step.
    pub fn bus_or(
        &mut self,
        values: &Plane<bool>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<bool>, MachineError> {
        let effective = self.effective_open(open);
        let open = effective.as_ref().unwrap_or(open);
        let (occ, clusters) = (self.occupancy_of(open), self.clusters_of(dir, open));
        self.record_bus(Op::BusOr, occ, clusters);
        bus::bus_or(self.mode, self.dim, values, dir, open)
    }

    /// `shift(src, dir)`: one controller step; data moves one PE towards
    /// `dir`, upstream-edge PEs receive `fill`.
    pub fn shift<T: Copy + Send + Sync>(
        &mut self,
        src: &Plane<T>,
        dir: Direction,
        fill: T,
    ) -> Result<Plane<T>, MachineError> {
        self.controller.record(Op::Shift);
        bus::shift(self.mode, self.dim, src, dir, fill)
    }

    /// Toroidal `shift`: one controller step.
    pub fn shift_wrapping<T: Copy + Send + Sync>(
        &mut self,
        src: &Plane<T>,
        dir: Direction,
    ) -> Result<Plane<T>, MachineError> {
        self.controller.record(Op::Shift);
        bus::shift_wrapping(self.mode, self.dim, src, dir)
    }

    /// Global-OR: one controller step; `true` iff any PE raises `flags`.
    /// This is the controller-side condition read used by data-dependent
    /// loops such as the MCP termination test (statement 20).
    pub fn global_or(&mut self, flags: &Plane<bool>) -> Result<bool, MachineError> {
        self.check(flags)?;
        let occ = self.occupancy_of(flags);
        let label = self.controller.phase();
        self.controller
            .record_observed(Op::GlobalOr, label, occ, None);
        let f = flags.as_slice();
        Ok(crate::engine::reduce(
            self.mode,
            self.dim.len(),
            false,
            |i| f[i],
            |a, b| a || b,
        ))
    }

    // ----- runtime self-test ----------------------------------------------

    /// Runs the executable built-in self-test on the live machine.
    ///
    /// Executes the [`bist_sweep`] patterns as real (costed, fault-applied)
    /// broadcasts of the flat-index identity plane, compares each readback
    /// against the healthy expectation computed host-side, and localizes
    /// every disagreeing switch box:
    ///
    /// * a node reading a value driven by an intended-Short neighbour names
    ///   that neighbour **stuck-Open** (the identity source makes the wrong
    ///   value *name* the rogue driver);
    /// * a node reading past its intended cluster head convicts that head
    ///   as **stuck-short**;
    /// * an undriven-line [`MachineError::BusFault`] convicts every
    ///   intended head of the dead line as **stuck-short**.
    ///
    /// Localization is exact for any single fault per bus cluster;
    /// overlapping faults are still detected but may be attributed to a
    /// neighbour. Transient glitches sampled during the sweep show up like
    /// permanent faults for the affected transfer — re-running the test
    /// distinguishes the two. The controller steps the sweep consumes are
    /// returned in [`FaultReport::steps`].
    pub fn self_test(&mut self) -> FaultReport {
        let before = self.controller.report();
        let observed = self.controller.observing();
        if observed {
            self.controller.enter_span("self_test");
        }
        let mut report = FaultReport::default();
        // Identity plane built with real instructions: ROW * cols + COL.
        let cols = self.dim.cols as i64;
        let ri = self.row_index();
        let ci = self.col_index();
        let ident = self
            .zip(&ri, &ci, move |r, c| r * cols + c)
            .expect("index planes share the machine dim");
        for pattern in bist_sweep(self.dim) {
            report.patterns_run += 1;
            // The healthy expectation is computed by the controller host on
            // the *intended* mask — no array steps, no fault application.
            let expected = bus::broadcast(self.mode, self.dim, &ident, pattern.dir, &pattern.open)
                .expect("bist patterns drive every line");
            let heads = bus::cluster_heads(self.dim, pattern.dir, &pattern.open)
                .expect("bist patterns drive every line");
            match self.broadcast(&ident, pattern.dir, &pattern.open) {
                Ok(actual) => {
                    for (idx, &head) in heads.iter().enumerate() {
                        let at = self.dim.coord(idx);
                        let got = *actual.get(at);
                        if got == *expected.get(at) {
                            continue;
                        }
                        // The identity source means `got` is the flat index
                        // of the node that actually drove this cluster.
                        let driver = self.dim.coord(got as usize);
                        if !*pattern.open.get(driver) {
                            report.note(driver, SwitchFault::StuckOpen);
                        } else {
                            // The intended head upstream of `at` failed to
                            // inject.
                            report.note(self.dim.coord(head), SwitchFault::StuckShort);
                        }
                    }
                }
                Err(MachineError::BusFault { axis, lines }) => {
                    // A dead line means every intended head on it is stuck
                    // Short.
                    for idx in 0..self.dim.len() {
                        let at = self.dim.coord(idx);
                        let line = match axis {
                            crate::geometry::Axis::Row => at.row,
                            crate::geometry::Axis::Col => at.col,
                        };
                        if lines.contains(&line) && *pattern.open.get(at) {
                            report.note(at, SwitchFault::StuckShort);
                        }
                    }
                }
                Err(e) => unreachable!("self-test broadcast cannot fail with {e}"),
            }
        }
        if observed {
            self.controller.exit_span();
        }
        report.steps = self.controller.report().since(&before);
        if let Some(m) = self.controller.metrics_mut() {
            m.inc("bist.runs", 1);
            m.inc("bist.patterns", report.patterns_run as u64);
            m.inc("faults.detected", report.located.len() as u64);
            m.inc("bist.steps", report.steps.total());
        }
        report
    }

    // ----- ALU instructions ------------------------------------------------

    /// Elementwise unary operation: one controller step.
    pub fn map<T, U, F>(&mut self, src: &Plane<T>, f: F) -> Result<Plane<U>, MachineError>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.check(src)?;
        self.controller.record(Op::Alu);
        let s = src.as_slice();
        let data = crate::engine::build(self.mode, self.dim.len(), |i| f(&s[i]));
        Ok(Plane::from_vec(self.dim, data))
    }

    /// Elementwise binary operation: one controller step.
    pub fn zip<A, B, U, F>(
        &mut self,
        a: &Plane<A>,
        b: &Plane<B>,
        f: F,
    ) -> Result<Plane<U>, MachineError>
    where
        A: Sync,
        B: Sync,
        U: Send,
        F: Fn(&A, &B) -> U + Sync,
    {
        self.check(a)?;
        self.check(b)?;
        self.controller.record(Op::Alu);
        let (sa, sb) = (a.as_slice(), b.as_slice());
        let data = crate::engine::build(self.mode, self.dim.len(), |i| f(&sa[i], &sb[i]));
        Ok(Plane::from_vec(self.dim, data))
    }

    /// Elementwise ternary operation: one controller step.
    pub fn zip3<A, B, C, U, F>(
        &mut self,
        a: &Plane<A>,
        b: &Plane<B>,
        c: &Plane<C>,
        f: F,
    ) -> Result<Plane<U>, MachineError>
    where
        A: Sync,
        B: Sync,
        C: Sync,
        U: Send,
        F: Fn(&A, &B, &C) -> U + Sync,
    {
        self.check(a)?;
        self.check(b)?;
        self.check(c)?;
        self.controller.record(Op::Alu);
        let (sa, sb, sc) = (a.as_slice(), b.as_slice(), c.as_slice());
        let data = crate::engine::build(self.mode, self.dim.len(), |i| f(&sa[i], &sb[i], &sc[i]));
        Ok(Plane::from_vec(self.dim, data))
    }

    /// Loads an immediate into every PE: one controller step.
    pub fn imm<T: Clone + Send + Sync>(&mut self, value: T) -> Plane<T> {
        self.controller.record(Op::Alu);
        Plane::filled(self.dim, value)
    }

    /// The hardwired `ROW` register (each PE knows its row index):
    /// one controller step to copy it into a plane.
    pub fn row_index(&mut self) -> Plane<i64> {
        self.controller.record(Op::Alu);
        Plane::from_fn(self.dim, |c| c.row as i64)
    }

    /// The hardwired `COL` register: one controller step.
    pub fn col_index(&mut self) -> Plane<i64> {
        self.controller.record(Op::Alu);
        Plane::from_fn(self.dim, |c| c.col as i64)
    }

    /// Masked assignment `where (mask) dst = src`: one controller step.
    /// PEs where `mask` is false keep their previous `dst` value — the
    /// SIMD `where` construct gates register *writes*, not instruction
    /// issue.
    pub fn assign_masked<T>(
        &mut self,
        dst: &mut Plane<T>,
        src: &Plane<T>,
        mask: &Plane<bool>,
    ) -> Result<(), MachineError>
    where
        T: Copy + Send + Sync,
    {
        self.check(dst)?;
        self.check(src)?;
        self.check(mask)?;
        let occ = self.occupancy_of(mask);
        let label = self.controller.phase();
        self.controller.record_observed(Op::Alu, label, occ, None);
        let len = self.dim.len();
        if let Some(mx) = self.controller.metrics_mut() {
            mx.inc("mask.writes", 1);
            if let Some(o) = occ {
                mx.inc("mask.active_pes", (o * len as f64).round() as u64);
            }
        }
        let (d, s, m) = (dst.as_slice(), src.as_slice(), mask.as_slice());
        let data = crate::engine::build(
            self.mode,
            self.dim.len(),
            |i| if m[i] { s[i] } else { d[i] },
        );
        *dst = Plane::from_vec(self.dim, data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Op;
    use crate::geometry::Coord;

    #[test]
    fn every_primitive_costs_one_step() {
        let mut m = Machine::square(4);
        let p = m.imm(1i64);
        assert_eq!(m.controller().steps(Op::Alu), 1);
        let open = m.imm(true);
        assert_eq!(m.controller().steps(Op::Alu), 2);
        m.broadcast(&p, Direction::East, &open).unwrap();
        assert_eq!(m.controller().steps(Op::Broadcast), 1);
        let flags = m.map(&p, |&v| v > 0).unwrap();
        m.bus_or(&flags, Direction::South, &open).unwrap();
        assert_eq!(m.controller().steps(Op::BusOr), 1);
        m.shift(&p, Direction::West, 0).unwrap();
        assert_eq!(m.controller().steps(Op::Shift), 1);
        m.global_or(&flags).unwrap();
        assert_eq!(m.controller().steps(Op::GlobalOr), 1);
    }

    #[test]
    fn zip_and_zip3_compute_elementwise() {
        let mut m = Machine::square(3);
        let a = Plane::from_fn(m.dim(), |c| c.row as i64);
        let b = Plane::from_fn(m.dim(), |c| c.col as i64);
        let s = m.zip(&a, &b, |x, y| x + y).unwrap();
        assert_eq!(*s.at(2, 1), 3);
        let mask = Plane::from_fn(m.dim(), |c| c.row == 0);
        let t = m
            .zip3(&s, &a, &mask, |x, y, &k| if k { *x } else { *y })
            .unwrap();
        assert_eq!(*t.at(0, 2), 2);
        assert_eq!(*t.at(1, 2), 1);
    }

    #[test]
    fn assign_masked_preserves_unmasked() {
        let mut m = Machine::square(2);
        let mut dst = Plane::filled(m.dim(), 0i64);
        let src = Plane::filled(m.dim(), 9i64);
        let mask = Plane::from_fn(m.dim(), |c| c.col == 1);
        m.assign_masked(&mut dst, &src, &mask).unwrap();
        assert_eq!(*dst.at(0, 0), 0);
        assert_eq!(*dst.at(0, 1), 9);
    }

    #[test]
    fn global_or_detects_single_flag() {
        let mut m = Machine::square(5);
        let mut flags = Plane::filled(m.dim(), false);
        assert!(!m.global_or(&flags).unwrap());
        flags.set(Coord::new(4, 4), true);
        assert!(m.global_or(&flags).unwrap());
    }

    #[test]
    fn row_col_index_registers() {
        let mut m = Machine::new(2, 3);
        let r = m.row_index();
        let c = m.col_index();
        assert_eq!(*r.at(1, 2), 1);
        assert_eq!(*c.at(1, 2), 2);
    }

    #[test]
    fn dim_mismatch_is_rejected() {
        let mut m = Machine::square(3);
        let wrong = Plane::filled(Dim::new(2, 3), 1i64);
        assert!(matches!(
            m.map(&wrong, |&v: &i64| v),
            Err(MachineError::DimMismatch { .. })
        ));
    }

    #[test]
    fn reset_steps_zeroes_counters() {
        let mut m = Machine::square(2);
        let _ = m.imm(0u8);
        m.reset_steps();
        assert_eq!(m.controller().total_steps(), 0);
    }

    #[test]
    fn attached_faults_corrupt_live_broadcasts() {
        let mut m = Machine::square(4);
        let src = Plane::from_fn(m.dim(), |c| (c.row * 4 + c.col) as i64);
        let open = Plane::from_fn(m.dim(), |c| c.col == 0 || c.col == 2);
        let healthy = m.broadcast(&src, Direction::East, &open).unwrap();
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(0, 2), SwitchFault::StuckShort);
        m.attach_faults(fm);
        let faulty = m.broadcast(&src, Direction::East, &open).unwrap();
        assert_ne!(healthy.row(0), faulty.row(0), "fault reaches the bus");
        assert_eq!(faulty.row(0), &[0, 0, 0, 0], "head at (0,2) swallowed");
        assert_eq!(healthy.row(1), faulty.row(1));
        m.clear_faults();
        let again = m.broadcast(&src, Direction::East, &open).unwrap();
        assert_eq!(again.as_slice(), healthy.as_slice());
    }

    #[test]
    fn transient_glitches_are_one_shot() {
        let mut m = Machine::square(4);
        let src = Plane::from_fn(m.dim(), |c| (c.row * 4 + c.col) as i64);
        let open = Plane::filled(m.dim(), true);
        let healthy = m.broadcast(&src, Direction::East, &open).unwrap();
        // p = 1: every transfer glitches exactly one switch.
        m.attach_transient_faults(TransientFaults::new(1.0, 3));
        let glitched = m.broadcast(&src, Direction::East, &open).unwrap();
        let wrong = glitched
            .as_slice()
            .iter()
            .zip(healthy.as_slice())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(wrong, 1, "one flipped switch corrupts exactly one PE");
        m.clear_faults();
        let again = m.broadcast(&src, Direction::East, &open).unwrap();
        assert_eq!(again.as_slice(), healthy.as_slice());
    }

    #[test]
    fn self_test_on_healthy_machine_reports_healthy() {
        let mut m = Machine::square(4);
        let report = m.self_test();
        assert!(report.is_healthy(), "{report}");
        assert_eq!(report.patterns_run, 6);
        assert!(report.steps.total() > 0, "the sweep costs real steps");
        assert_eq!(m.controller().total_steps(), report.steps.total());
    }

    #[test]
    fn self_test_localizes_every_single_stuck_fault() {
        for idx in 0..16 {
            for fault in [SwitchFault::StuckShort, SwitchFault::StuckOpen] {
                let mut m = Machine::square(4);
                let at = m.dim().coord(idx);
                let mut fm = FaultMap::new();
                fm.inject(at, fault);
                m.attach_faults(fm);
                let report = m.self_test();
                assert_eq!(
                    report.located,
                    vec![(at, fault)],
                    "fault {fault:?} at {at:?} mislocalized: {report}"
                );
            }
        }
    }

    #[test]
    fn self_test_detects_multiple_faults() {
        let mut m = Machine::square(6);
        let fm = FaultMap::random(m.dim(), 4, 99);
        let expected: Vec<Coord> = fm.iter().map(|(c, _)| c).collect();
        m.attach_faults(fm);
        let report = m.self_test();
        // Overlapping faults may be attributed to a cluster neighbour, but
        // with 4 faults on 36 nodes the sweep must at least detect trouble;
        // in the common disjoint case it localizes all of them exactly.
        assert!(!report.is_healthy());
        for c in report.coords() {
            assert!(m.dim().contains(c));
        }
        if report.located.len() == expected.len() {
            assert_eq!(report.coords(), expected);
        }
    }

    #[test]
    fn empty_fault_map_leaves_instruction_path_bit_identical() {
        let src = Plane::from_fn(Dim::square(5), |c| (c.row * 5 + c.col) as i64);
        let open = Plane::from_fn(Dim::square(5), |c| (c.row + c.col) % 3 == 0);
        let mut plain = Machine::square(5);
        let mut attached = Machine::square(5);
        attached.attach_faults(FaultMap::new());
        let a = plain.broadcast(&src, Direction::South, &open).unwrap();
        let b = attached.broadcast(&src, Direction::South, &open).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(
            plain.controller().total_steps(),
            attached.controller().total_steps()
        );
    }
}
