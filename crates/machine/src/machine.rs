//! The assembled PPA machine: geometry + issue logic + controller.
//!
//! [`Machine`] exposes the *costed* instruction set: every method that
//! corresponds to one SIMD controller instruction issues exactly one
//! [`MicroOp`] — recording a step of the matching [`Op`] class, applying
//! the fault models to switch patterns, and feeding observers — before
//! delegating the per-PE mechanics to its [`Executor`] backend. Higher
//! layers (the PPC runtime, the algorithms) are written exclusively
//! against this interface, so the controller's tallies are a faithful
//! census of the simulated machine's time steps regardless of backend.

use crate::budget::CancelToken;
use crate::bus;
use crate::controller::{Controller, Op};
use crate::engine::ExecMode;
use crate::error::MachineError;
use crate::faults::{bist_sweep, FaultMap, FaultReport, SwitchFault, TransientFaults};
use crate::geometry::{Axis, Dim, Direction};
use crate::isa::{ExecStats, Executor, Fill, MicroOp, ScalarBackend};
use crate::plane::Plane;
use ppa_obs::MicroProfile;
use std::time::Instant;

/// A Polymorphic Processor Array instance, parameterized over its
/// execution backend (the scalar reference backend by default).
#[derive(Debug, Clone)]
pub struct Machine<E: Executor = ScalarBackend> {
    dim: Dim,
    mode: ExecMode,
    controller: Controller,
    faults: FaultMap,
    transient: Option<TransientFaults>,
    step_cap: Option<u64>,
    budget_granted: u64,
    cancel: Option<CancelToken>,
    micro: Option<MicroProfile>,
    exec: E,
}

impl Machine<ScalarBackend> {
    /// Creates a `rows x cols` machine running per-PE loops sequentially.
    pub fn new(rows: usize, cols: usize) -> Self {
        Machine::with_mode(Dim::new(rows, cols), ExecMode::Sequential)
    }

    /// Creates a square `n x n` machine (the shape used by all the graph
    /// algorithms: one PE per weight-matrix element).
    pub fn square(n: usize) -> Self {
        Machine::new(n, n)
    }

    /// Creates a machine with an explicit host execution mode.
    pub fn with_mode(dim: Dim, mode: ExecMode) -> Self {
        Machine::with_backend(dim, mode, ScalarBackend)
    }
}

impl<E: Executor> Machine<E> {
    /// Creates a machine on an explicit execution backend.
    pub fn with_backend(dim: Dim, mode: ExecMode, exec: E) -> Self {
        Machine {
            dim,
            mode,
            controller: Controller::new(),
            faults: FaultMap::new(),
            transient: None,
            step_cap: None,
            budget_granted: 0,
            cancel: None,
            micro: None,
            exec,
        }
    }

    // ----- micro-op wall-clock attribution ---------------------------------

    /// Starts attributing host wall-clock to instruction classes: every
    /// costed primitive from now on times its execution mechanics (the
    /// work after the step is recorded) and buckets the nanoseconds under
    /// its controller [`Op`] class, keyed by the backend name
    /// ([`Executor::NAME`]). Each class's invocation count reconciles 1:1
    /// with the `steps.<class>` counters, since both are driven by the
    /// same issue choke point. No-op if already profiling.
    pub fn enable_micro_profile(&mut self) {
        if self.micro.is_none() {
            self.micro = Some(MicroProfile::new(E::NAME));
        }
    }

    /// Stops micro-op profiling and returns the profile gathered so far.
    /// When metrics are also being collected, the profile is folded into
    /// the registry as `exec.<backend>.<class>.ns` / `.count` counters,
    /// so one snapshot carries both step counts and time attribution.
    pub fn take_micro_profile(&mut self) -> MicroProfile {
        let p = self
            .micro
            .take()
            .unwrap_or_else(|| MicroProfile::new(E::NAME));
        if let Some(m) = self.controller.metrics_mut() {
            p.emit(m);
        }
        p
    }

    /// The live micro-op profile, if collecting.
    pub fn micro_profile(&self) -> Option<&MicroProfile> {
        self.micro.as_ref()
    }

    /// Records a controller-only step of `class` — one with no executor
    /// mechanics to time (e.g. the PPC layer's activity-bit write, or a
    /// modeled cost in an ablation comparator). Keeps the micro profile's
    /// per-class counts reconciled with the `steps.<class>` counters by
    /// attributing the instruction at zero nanoseconds.
    pub fn record_step(&mut self, class: Op) {
        self.controller.record(class);
        if let Some(p) = self.micro.as_mut() {
            p.record(class.label(), 0);
        }
    }

    /// Timer start for one instruction's mechanics (`None` when micro
    /// profiling is off, so the hot path costs one branch).
    #[inline]
    fn micro_start(&self) -> Option<Instant> {
        self.micro.as_ref().map(|_| Instant::now())
    }

    /// Closes the timing window opened by [`Machine::micro_start`],
    /// attributing the elapsed nanoseconds to `class`.
    #[inline]
    fn micro_stop(&mut self, class: Op, t: Option<Instant>) {
        if let (Some(p), Some(t)) = (self.micro.as_mut(), t) {
            p.record(class.label(), t.elapsed().as_nanos() as u64);
        }
    }

    // ----- cooperative budgets ---------------------------------------------

    /// Grants the program `budget` further controller steps: once the
    /// total step count reaches the current count plus `budget`, every
    /// fallible primitive returns
    /// [`MachineError::StepBudgetExhausted`] instead of issuing. The
    /// brake is cooperative — nothing is interrupted mid-instruction and
    /// all counters stay intact — and exact for programs built from
    /// fallible primitives (every solver loop is). Replaces any earlier
    /// limit.
    pub fn limit_steps(&mut self, budget: u64) {
        self.step_cap = Some(self.controller.total_steps() + budget);
        self.budget_granted = budget;
    }

    /// Removes the step limit installed by [`Machine::limit_steps`].
    pub fn clear_step_limit(&mut self) {
        self.step_cap = None;
        self.budget_granted = 0;
    }

    /// Steps left before the budget brake engages (`None` when no limit
    /// is installed).
    pub fn steps_remaining(&self) -> Option<u64> {
        self.step_cap
            .map(|cap| cap.saturating_sub(self.controller.total_steps()))
    }

    /// Attaches a cancellation token: once any clone of it is raised,
    /// every fallible primitive returns [`MachineError::Cancelled`]
    /// instead of issuing. Replaces any earlier token.
    pub fn attach_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Detaches the cancellation token, returning it if one was attached.
    pub fn take_cancel(&mut self) -> Option<CancelToken> {
        self.cancel.take()
    }

    /// The cooperative brake checked before every fallible instruction:
    /// cancellation first (a raised token wins even when budget remains),
    /// then the step budget.
    fn guard(&mut self) -> Result<(), MachineError> {
        if self.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            if let Some(m) = self.controller.metrics_mut() {
                m.inc("budget.cancelled", 1);
            }
            return Err(MachineError::Cancelled);
        }
        if let Some(cap) = self.step_cap {
            if self.controller.total_steps() >= cap {
                if let Some(m) = self.controller.metrics_mut() {
                    m.inc("budget.exhausted", 1);
                }
                return Err(MachineError::StepBudgetExhausted {
                    budget: self.budget_granted,
                });
            }
        }
        Ok(())
    }

    // ----- fault attachment ------------------------------------------------

    /// Attaches a permanent stuck-at fault map: from now on every
    /// switch-configuring instruction passes its intended Open mask through
    /// [`FaultMap::apply`] before the bus executes. A healthy (empty) map
    /// leaves the instruction path bit-identical to an unfaulted machine.
    pub fn attach_faults(&mut self, faults: FaultMap) {
        if let Some(m) = self.controller.metrics_mut() {
            m.inc("faults.injected", faults.len() as u64);
        }
        self.faults = faults;
    }

    /// The currently attached permanent fault map.
    pub fn faults(&self) -> &FaultMap {
        &self.faults
    }

    /// Attaches a seeded transient-glitch process sampled once per bus
    /// transfer (see [`TransientFaults`]).
    pub fn attach_transient_faults(&mut self, transient: TransientFaults) {
        self.transient = Some(transient);
    }

    /// Detaches all fault models, restoring a healthy machine.
    pub fn clear_faults(&mut self) {
        self.faults = FaultMap::new();
        self.transient = None;
    }

    /// Whether any bus transfer must route through the fault models.
    /// When false, the healthy fast path is bit-identical (the transient
    /// process would not be sampled either way).
    fn fault_routed(&self) -> bool {
        !self.faults.is_empty() || self.transient.is_some()
    }

    /// The Open mask the (possibly faulty) hardware realizes for one bus
    /// transfer, or `None` when the machine is healthy and the intended
    /// mask applies unchanged. Samples the transient process, so each call
    /// is one transfer.
    fn effective_open(&mut self, intended: &Plane<bool>) -> Option<Plane<bool>> {
        let glitch = self.transient.as_mut().and_then(|t| t.sample(self.dim));
        if self.faults.is_empty() && glitch.is_none() {
            return None;
        }
        let mut effective = self.faults.apply(intended);
        if let Some(c) = glitch {
            let flipped = !*effective.get(c);
            effective.set(c, flipped);
            if let Some(m) = self.controller.metrics_mut() {
                m.inc("faults.transient_flips", 1);
            }
        }
        if effective != *intended {
            if let Some(m) = self.controller.metrics_mut() {
                m.inc("faults.distorted_transfers", 1);
            }
        }
        Some(effective)
    }

    /// The array dimensions.
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// The host execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Changes the host execution mode (does not affect step counts).
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// Read access to the step-counting controller.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Mutable access to the controller (for tracing or phase labels).
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// Read access to the execution backend.
    pub fn exec(&self) -> &E {
        &self.exec
    }

    /// The backend's resource counters (plan-cache hits, arena recycling).
    pub fn exec_stats(&self) -> ExecStats {
        self.exec.stats()
    }

    /// Zeroes the backend's resource counters.
    pub fn reset_exec_stats(&mut self) {
        self.exec.reset_stats();
    }

    /// Zeroes the step counters.
    pub fn reset_steps(&mut self) {
        self.controller.reset();
    }

    fn check<TP>(&self, p: &Plane<TP>) -> Result<(), MachineError> {
        if p.dim() == self.dim {
            Ok(())
        } else {
            Err(MachineError::DimMismatch {
                expected: self.dim,
                found: p.dim(),
            })
        }
    }

    /// One activity-sampling decision for the instruction being issued
    /// (false outright when no observer is attached).
    fn sample_now(&mut self) -> bool {
        self.controller.observing() && self.controller.sample_activity()
    }

    /// Activity statistics for an instruction masked by a plane: occupancy
    /// (fraction of `true` cells) and, when a direction is given, the bus
    /// cluster count its Open mask induces. Computed only when the
    /// sampling policy elects this instruction — the scan is O(p) host
    /// work the simulated machine would not perform.
    fn plane_activity(
        &mut self,
        dir: Option<Direction>,
        mask: &Plane<bool>,
    ) -> (Option<f64>, Option<u64>) {
        if !self.sample_now() {
            return (None, None);
        }
        let active = mask.as_slice().iter().filter(|&&b| b).count();
        let occ = active as f64 / self.dim.len().max(1) as f64;
        // `None` clusters when some line has no driver — the primitive
        // itself reports that case as a fault or a single cluster.
        let clusters = dir.and_then(|d| match bus::cluster_heads(self.dim, d, mask) {
            Ok(heads) => Some(heads.iter().enumerate().filter(|&(i, &h)| i == h).count() as u64),
            Err(_) => None,
        });
        (Some(occ), clusters)
    }

    /// [`Machine::plane_activity`] for a backend mask; the values are
    /// identical across backends (popcount occupancy, cluster derivation
    /// on the unpacked mask).
    fn mask_activity(
        &mut self,
        dir: Option<Direction>,
        mask: &E::Mask,
    ) -> (Option<f64>, Option<u64>) {
        if !self.sample_now() {
            return (None, None);
        }
        let active = self.exec.mask_count(self.dim, mask);
        let occ = active as f64 / self.dim.len().max(1) as f64;
        let clusters = dir.and_then(|d| {
            let plane = self.exec.mask_to_plane(self.dim, mask);
            match bus::cluster_heads(self.dim, d, &plane) {
                Ok(heads) => {
                    Some(heads.iter().enumerate().filter(|&(i, &h)| i == h).count() as u64)
                }
                Err(_) => None,
            }
        });
        (Some(occ), clusters)
    }

    /// The single issue choke point: records one controller step for the
    /// micro-op's class (with the current phase label and any activity
    /// statistics) and feeds the shared metrics counters the variant owns.
    fn issue(&mut self, u: MicroOp, occupancy: Option<f64>, clusters: Option<u64>) {
        let label = self.controller.phase();
        self.controller
            .record_observed(u.class(), label, occupancy, clusters);
        let len = self.dim.len();
        match u {
            MicroOp::Broadcast(_) | MicroOp::BusOr(_) => {
                if let Some(m) = self.controller.metrics_mut() {
                    m.inc("bus.transactions", 1);
                    if let Some(k) = clusters {
                        m.inc("bus.clusters", k);
                    }
                    if let Some(o) = occupancy {
                        m.inc("mask.active_pes", (o * len as f64).round() as u64);
                    }
                }
            }
            MicroOp::AssignMasked => {
                if let Some(m) = self.controller.metrics_mut() {
                    m.inc("mask.writes", 1);
                    if let Some(o) = occupancy {
                        m.inc("mask.active_pes", (o * len as f64).round() as u64);
                    }
                }
            }
            _ => {}
        }
    }

    // ----- communication instructions -------------------------------------

    /// `broadcast(src, dir, L)`: one controller step; every PE receives the
    /// `src` value of the Open node heading its bus cluster.
    pub fn broadcast<T: Copy + Send + Sync + 'static>(
        &mut self,
        src: &Plane<T>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<T>, MachineError> {
        self.guard()?;
        let effective = self.effective_open(open);
        let open = effective.as_ref().unwrap_or(open);
        let (occ, clusters) = self.plane_activity(Some(dir), open);
        self.issue(MicroOp::Broadcast(dir), occ, clusters);
        let t = self.micro_start();
        let out = self.exec.broadcast(self.mode, self.dim, src, dir, open);
        self.micro_stop(Op::Broadcast, t);
        out
    }

    /// Wired-OR over bus clusters: one controller step.
    pub fn bus_or(
        &mut self,
        values: &Plane<bool>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<bool>, MachineError> {
        self.guard()?;
        let effective = self.effective_open(open);
        let open = effective.as_ref().unwrap_or(open);
        let (occ, clusters) = self.plane_activity(Some(dir), open);
        self.issue(MicroOp::BusOr(dir), occ, clusters);
        let t = self.micro_start();
        let out = self.exec.bus_or(self.mode, self.dim, values, dir, open);
        self.micro_stop(Op::BusOr, t);
        out
    }

    /// `broadcast` with the switch pattern held as a backend mask; same
    /// step cost, fault routing, and observability as the plane form.
    pub fn broadcast_open<T: Copy + Send + Sync + 'static>(
        &mut self,
        src: &Plane<T>,
        dir: Direction,
        open: &E::Mask,
    ) -> Result<Plane<T>, MachineError> {
        self.guard()?;
        if !self.fault_routed() {
            let (occ, clusters) = self.mask_activity(Some(dir), open);
            self.issue(MicroOp::Broadcast(dir), occ, clusters);
            let t = self.micro_start();
            let out = self
                .exec
                .broadcast_masked(self.mode, self.dim, src, dir, open);
            self.micro_stop(Op::Broadcast, t);
            return out;
        }
        let intended = self.exec.mask_to_plane(self.dim, open);
        let effective = self.effective_open(&intended);
        let open_plane = effective.as_ref().unwrap_or(&intended);
        let (occ, clusters) = self.plane_activity(Some(dir), open_plane);
        self.issue(MicroOp::Broadcast(dir), occ, clusters);
        let t = self.micro_start();
        let out = self
            .exec
            .broadcast(self.mode, self.dim, src, dir, open_plane);
        self.micro_stop(Op::Broadcast, t);
        out
    }

    /// Wired-OR with both the value set and the switch pattern held as
    /// backend masks; same step cost, fault routing, and observability as
    /// the plane form.
    pub fn mask_bus_or(
        &mut self,
        values: &E::Mask,
        dir: Direction,
        open: &E::Mask,
    ) -> Result<E::Mask, MachineError> {
        self.guard()?;
        if !self.fault_routed() {
            let (occ, clusters) = self.mask_activity(Some(dir), open);
            self.issue(MicroOp::BusOr(dir), occ, clusters);
            let t = self.micro_start();
            let out = self
                .exec
                .mask_bus_or(self.mode, self.dim, values, dir, open);
            self.micro_stop(Op::BusOr, t);
            return out;
        }
        let intended = self.exec.mask_to_plane(self.dim, open);
        let effective = self.effective_open(&intended);
        let open_plane = effective.as_ref().unwrap_or(&intended);
        let (occ, clusters) = self.plane_activity(Some(dir), open_plane);
        self.issue(MicroOp::BusOr(dir), occ, clusters);
        let t = self.micro_start();
        let routed = self.exec.mask_from_plane(self.dim, open_plane);
        let out = self
            .exec
            .mask_bus_or(self.mode, self.dim, values, dir, &routed);
        self.micro_stop(Op::BusOr, t);
        out
    }

    /// `shift(src, dir)` with an explicit edge fill policy: one controller
    /// step; data moves one PE towards `dir`.
    pub fn shift_with<T: Copy + Send + Sync + 'static>(
        &mut self,
        src: &Plane<T>,
        dir: Direction,
        fill: Fill<T>,
    ) -> Result<Plane<T>, MachineError> {
        self.guard()?;
        self.issue(MicroOp::Shift(dir), None, None);
        let t = self.micro_start();
        let out = self.exec.shift(self.mode, self.dim, src, dir, fill);
        self.micro_stop(Op::Shift, t);
        out
    }

    /// `shift(src, dir)`: one controller step; upstream-edge PEs receive
    /// `fill`.
    pub fn shift<T: Copy + Send + Sync + 'static>(
        &mut self,
        src: &Plane<T>,
        dir: Direction,
        fill: T,
    ) -> Result<Plane<T>, MachineError> {
        self.shift_with(src, dir, Fill::Value(fill))
    }

    /// Toroidal `shift`: one controller step.
    pub fn shift_wrapping<T: Copy + Send + Sync + 'static>(
        &mut self,
        src: &Plane<T>,
        dir: Direction,
    ) -> Result<Plane<T>, MachineError> {
        self.shift_with(src, dir, Fill::Wrap)
    }

    /// Global-OR: one controller step; `true` iff any PE raises `flags`.
    /// This is the controller-side condition read used by data-dependent
    /// loops such as the MCP termination test (statement 20).
    pub fn global_or(&mut self, flags: &Plane<bool>) -> Result<bool, MachineError> {
        self.guard()?;
        self.check(flags)?;
        let (occ, _) = self.plane_activity(None, flags);
        self.issue(MicroOp::GlobalOr, occ, None);
        let t = self.micro_start();
        let f = flags.as_slice();
        let any = crate::engine::reduce(self.mode, self.dim.len(), false, |i| f[i], |a, b| a || b);
        self.micro_stop(Op::GlobalOr, t);
        Ok(any)
    }

    // ----- mask instructions (bit-serial scan support) ---------------------

    /// Converts a plane into the backend mask representation without
    /// issuing an instruction (a register *view*, not an operation; use
    /// [`Machine::load_mask`] for the costed copy).
    pub fn pack_mask(&mut self, src: &Plane<bool>) -> Result<E::Mask, MachineError> {
        self.check(src)?;
        Ok(self.exec.mask_from_plane(self.dim, src))
    }

    /// Converts a backend mask back to a plane (uncosted, host-side).
    pub fn unpack_mask(&self, mask: &E::Mask) -> Plane<bool> {
        self.exec.mask_to_plane(self.dim, mask)
    }

    /// Number of set PEs in a backend mask (uncosted, host-side).
    pub fn mask_count(&self, mask: &E::Mask) -> usize {
        self.exec.mask_count(self.dim, mask)
    }

    /// Loads an immediate into every PE of a mask register: one step.
    pub fn mask_imm(&mut self, value: bool) -> E::Mask {
        self.issue(MicroOp::Imm, None, None);
        let t = self.micro_start();
        let out = self.exec.mask_filled(self.dim, value);
        self.micro_stop(Op::Alu, t);
        out
    }

    /// Copies a plane into a mask register: one step (the mask analogue of
    /// an identity [`Machine::map`]).
    pub fn load_mask(&mut self, src: &Plane<bool>) -> Result<E::Mask, MachineError> {
        self.guard()?;
        self.check(src)?;
        self.issue(MicroOp::Map, None, None);
        let t = self.micro_start();
        let out = self.exec.mask_from_plane(self.dim, src);
        self.micro_stop(Op::Alu, t);
        Ok(out)
    }

    /// Extracts bit `j` of every (non-negative) PE value: one step.
    pub fn mask_bit(&mut self, src: &Plane<i64>, j: u32) -> Result<E::Mask, MachineError> {
        debug_assert!(j < 63, "i64 sign bit is not addressable");
        self.guard()?;
        self.check(src)?;
        self.issue(MicroOp::Map, None, None);
        let t = self.micro_start();
        let out = self.exec.bit_plane(self.mode, self.dim, src, j);
        self.micro_stop(Op::Alu, t);
        Ok(out)
    }

    /// The bit-serial voting step (`keep_low` selects the Min rule
    /// `enable && !bit`, otherwise the Max rule `enable && bit`): one step.
    pub fn mask_vote(&mut self, enable: &E::Mask, bit: &E::Mask, keep_low: bool) -> E::Mask {
        self.issue(MicroOp::Zip, None, None);
        let t = self.micro_start();
        let out = self.exec.vote(self.mode, self.dim, enable, bit, keep_low);
        self.micro_stop(Op::Alu, t);
        out
    }

    /// The bit-serial knockout step (`keep_low` selects the Min rule
    /// `enable && !(present && bit)`, otherwise the Max rule
    /// `enable && (!present || bit)`): one step.
    pub fn mask_knockout(
        &mut self,
        enable: &E::Mask,
        present: &E::Mask,
        bit: &E::Mask,
        keep_low: bool,
    ) -> E::Mask {
        self.issue(MicroOp::Zip3, None, None);
        let t = self.micro_start();
        let out = self
            .exec
            .knockout(self.mode, self.dim, enable, present, bit, keep_low);
        self.micro_stop(Op::Alu, t);
        out
    }

    // ----- runtime self-test ----------------------------------------------

    /// Runs the executable built-in self-test on the live machine.
    ///
    /// Executes the [`bist_sweep`] patterns as real (costed, fault-applied)
    /// broadcasts of the flat-index identity plane, compares each readback
    /// against the healthy expectation computed host-side, and localizes
    /// every disagreeing switch box:
    ///
    /// * a node reading a value driven by an intended-Short neighbour names
    ///   that neighbour **stuck-Open** (the identity source makes the wrong
    ///   value *name* the rogue driver);
    /// * a node reading past its intended cluster head convicts that head
    ///   as **stuck-short**;
    /// * an undriven-line [`MachineError::BusFault`] convicts every
    ///   intended head of the dead line as **stuck-short**.
    ///
    /// Localization is exact for any single fault per bus cluster;
    /// overlapping faults are still detected but may be attributed to a
    /// neighbour. Transient glitches sampled during the sweep show up like
    /// permanent faults for the affected transfer — re-running the test
    /// distinguishes the two. The controller steps the sweep consumes are
    /// returned in [`FaultReport::steps`].
    pub fn self_test(&mut self) -> FaultReport {
        // The BIST is a bounded diagnostic (six patterns plus three setup
        // steps) that recovery policies run precisely when a solve was
        // aborted — including by a spent step budget or a raised cancel
        // token. It is therefore exempt from the cooperative brake: the
        // budget state is stashed for the sweep and restored afterwards.
        let stashed_cap = self.step_cap.take();
        let stashed_granted = std::mem::take(&mut self.budget_granted);
        let stashed_cancel = self.cancel.take();
        let before = self.controller.report();
        let observed = self.controller.observing();
        if observed {
            self.controller.enter_span("self_test");
        }
        let mut report = FaultReport::default();
        // Identity plane built with real instructions: ROW * cols + COL.
        let cols = self.dim.cols as i64;
        let ri = self.row_index();
        let ci = self.col_index();
        let ident = self
            .zip(&ri, &ci, move |r, c| r * cols + c)
            .expect("index planes share the machine dim");
        for pattern in bist_sweep(self.dim) {
            report.patterns_run += 1;
            // The healthy expectation is computed by the controller host on
            // the *intended* mask — no array steps, no fault application.
            let expected = bus::broadcast(self.mode, self.dim, &ident, pattern.dir, &pattern.open)
                .expect("bist patterns drive every line");
            let heads = bus::cluster_heads(self.dim, pattern.dir, &pattern.open)
                .expect("bist patterns drive every line");
            match self.broadcast(&ident, pattern.dir, &pattern.open) {
                Ok(actual) => {
                    for (idx, &head) in heads.iter().enumerate() {
                        let at = self.dim.coord(idx);
                        let got = *actual.get(at);
                        if got == *expected.get(at) {
                            continue;
                        }
                        // The identity source means `got` is the flat index
                        // of the node that actually drove this cluster.
                        let driver = self.dim.coord(got as usize);
                        if !*pattern.open.get(driver) {
                            report.note(driver, SwitchFault::StuckOpen);
                        } else {
                            // The intended head upstream of `at` failed to
                            // inject.
                            report.note(self.dim.coord(head), SwitchFault::StuckShort);
                        }
                    }
                }
                Err(MachineError::BusFault { axis, lines }) => {
                    // A dead line means every intended head on it is stuck
                    // Short.
                    for idx in 0..self.dim.len() {
                        let at = self.dim.coord(idx);
                        let line = match axis {
                            crate::geometry::Axis::Row => at.row,
                            crate::geometry::Axis::Col => at.col,
                        };
                        if lines.contains(&line) && *pattern.open.get(at) {
                            report.note(at, SwitchFault::StuckShort);
                        }
                    }
                }
                Err(e) => unreachable!("self-test broadcast cannot fail with {e}"),
            }
        }
        if observed {
            self.controller.exit_span();
        }
        self.step_cap = stashed_cap;
        self.budget_granted = stashed_granted;
        self.cancel = stashed_cancel;
        report.steps = self.controller.report().since(&before);
        if let Some(m) = self.controller.metrics_mut() {
            m.inc("bist.runs", 1);
            m.inc("bist.patterns", report.patterns_run as u64);
            m.inc("faults.detected", report.located.len() as u64);
            m.inc("bist.steps", report.steps.total());
        }
        report
    }

    // ----- ALU instructions ------------------------------------------------

    /// Elementwise unary operation: one controller step.
    pub fn map<T, U, F>(&mut self, src: &Plane<T>, f: F) -> Result<Plane<U>, MachineError>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.guard()?;
        self.check(src)?;
        self.issue(MicroOp::Map, None, None);
        let t = self.micro_start();
        let s = src.as_slice();
        let data = self.exec.build(self.mode, self.dim.len(), |i| f(&s[i]));
        let out = Plane::from_vec(self.dim, data);
        self.micro_stop(Op::Alu, t);
        Ok(out)
    }

    /// Elementwise binary operation: one controller step.
    pub fn zip<A, B, U, F>(
        &mut self,
        a: &Plane<A>,
        b: &Plane<B>,
        f: F,
    ) -> Result<Plane<U>, MachineError>
    where
        A: Sync,
        B: Sync,
        U: Send,
        F: Fn(&A, &B) -> U + Sync,
    {
        self.guard()?;
        self.check(a)?;
        self.check(b)?;
        self.issue(MicroOp::Zip, None, None);
        let t = self.micro_start();
        let (sa, sb) = (a.as_slice(), b.as_slice());
        let data = self
            .exec
            .build(self.mode, self.dim.len(), |i| f(&sa[i], &sb[i]));
        let out = Plane::from_vec(self.dim, data);
        self.micro_stop(Op::Alu, t);
        Ok(out)
    }

    /// Elementwise ternary operation: one controller step.
    pub fn zip3<A, B, C, U, F>(
        &mut self,
        a: &Plane<A>,
        b: &Plane<B>,
        c: &Plane<C>,
        f: F,
    ) -> Result<Plane<U>, MachineError>
    where
        A: Sync,
        B: Sync,
        C: Sync,
        U: Send,
        F: Fn(&A, &B, &C) -> U + Sync,
    {
        self.guard()?;
        self.check(a)?;
        self.check(b)?;
        self.check(c)?;
        self.issue(MicroOp::Zip3, None, None);
        let t = self.micro_start();
        let (sa, sb, sc) = (a.as_slice(), b.as_slice(), c.as_slice());
        let data = self
            .exec
            .build(self.mode, self.dim.len(), |i| f(&sa[i], &sb[i], &sc[i]));
        let out = Plane::from_vec(self.dim, data);
        self.micro_stop(Op::Alu, t);
        Ok(out)
    }

    /// Loads an immediate into every PE: one controller step.
    pub fn imm<T: Clone + Send + Sync>(&mut self, value: T) -> Plane<T> {
        self.issue(MicroOp::Imm, None, None);
        let t = self.micro_start();
        let out = Plane::filled(self.dim, value);
        self.micro_stop(Op::Alu, t);
        out
    }

    /// The hardwired `ROW` register (each PE knows its row index):
    /// one controller step to copy it into a plane.
    pub fn row_index(&mut self) -> Plane<i64> {
        self.issue(MicroOp::Index(Axis::Row), None, None);
        let t = self.micro_start();
        let out = Plane::from_fn(self.dim, |c| c.row as i64);
        self.micro_stop(Op::Alu, t);
        out
    }

    /// The hardwired `COL` register: one controller step.
    pub fn col_index(&mut self) -> Plane<i64> {
        self.issue(MicroOp::Index(Axis::Col), None, None);
        let t = self.micro_start();
        let out = Plane::from_fn(self.dim, |c| c.col as i64);
        self.micro_stop(Op::Alu, t);
        out
    }

    /// Per-lane immediate: lane `l` (columns `l*lane_cols ..
    /// (l+1)*lane_cols`) receives `values[l]` at every PE. On a
    /// lane-batched machine each lane has its own sub-controller
    /// issuing its immediate in lockstep, so the whole load is one
    /// controller step — exactly like [`Machine::imm`].
    ///
    /// # Panics
    /// If `lane_cols` is zero, does not divide the column count, or
    /// `values` does not cover every lane.
    pub fn lane_imm<T: Clone + Send + Sync>(&mut self, values: &[T], lane_cols: usize) -> Plane<T> {
        assert!(lane_cols > 0, "lane_cols must be positive");
        assert_eq!(
            self.dim.cols % lane_cols,
            0,
            "lane_cols {lane_cols} must divide the column count {}",
            self.dim.cols
        );
        assert_eq!(
            values.len(),
            self.dim.cols / lane_cols,
            "one immediate per lane"
        );
        self.issue(MicroOp::Imm, None, None);
        let t = self.micro_start();
        let out = Plane::from_fn(self.dim, |c| values[c.col / lane_cols].clone());
        self.micro_stop(Op::Alu, t);
        out
    }

    /// Per-lane `COL` register: the column index *within* the PE's lane
    /// (`col % lane_cols`). A lane-batched machine wires each lane's
    /// column register relative to the lane origin, so the copy is one
    /// controller step — exactly like [`Machine::col_index`].
    ///
    /// # Panics
    /// If `lane_cols` is zero or does not divide the column count.
    pub fn lane_col_index(&mut self, lane_cols: usize) -> Plane<i64> {
        assert!(lane_cols > 0, "lane_cols must be positive");
        assert_eq!(
            self.dim.cols % lane_cols,
            0,
            "lane_cols {lane_cols} must divide the column count {}",
            self.dim.cols
        );
        self.issue(MicroOp::Index(Axis::Col), None, None);
        let t = self.micro_start();
        let out = Plane::from_fn(self.dim, |c| (c.col % lane_cols) as i64);
        self.micro_stop(Op::Alu, t);
        out
    }

    /// Masked assignment `where (mask) dst = src`: one controller step.
    /// PEs where `mask` is false keep their previous `dst` value — the
    /// SIMD `where` construct gates register *writes*, not instruction
    /// issue.
    pub fn assign_masked<T>(
        &mut self,
        dst: &mut Plane<T>,
        src: &Plane<T>,
        mask: &Plane<bool>,
    ) -> Result<(), MachineError>
    where
        T: Copy + Send + Sync,
    {
        self.guard()?;
        self.check(dst)?;
        self.check(src)?;
        self.check(mask)?;
        let (occ, _) = self.plane_activity(None, mask);
        self.issue(MicroOp::AssignMasked, occ, None);
        let t = self.micro_start();
        let (d, s, m) = (dst.as_slice(), src.as_slice(), mask.as_slice());
        let data = self.exec.build(
            self.mode,
            self.dim.len(),
            |i| if m[i] { s[i] } else { d[i] },
        );
        *dst = Plane::from_vec(self.dim, data);
        self.micro_stop(Op::Alu, t);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Op;
    use crate::geometry::Coord;

    #[test]
    fn every_primitive_costs_one_step() {
        let mut m = Machine::square(4);
        let p = m.imm(1i64);
        assert_eq!(m.controller().steps(Op::Alu), 1);
        let open = m.imm(true);
        assert_eq!(m.controller().steps(Op::Alu), 2);
        m.broadcast(&p, Direction::East, &open).unwrap();
        assert_eq!(m.controller().steps(Op::Broadcast), 1);
        let flags = m.map(&p, |&v| v > 0).unwrap();
        m.bus_or(&flags, Direction::South, &open).unwrap();
        assert_eq!(m.controller().steps(Op::BusOr), 1);
        m.shift(&p, Direction::West, 0).unwrap();
        assert_eq!(m.controller().steps(Op::Shift), 1);
        m.global_or(&flags).unwrap();
        assert_eq!(m.controller().steps(Op::GlobalOr), 1);
    }

    #[test]
    fn mask_instructions_cost_like_their_plane_twins() {
        let mut m = Machine::square(4);
        let open = Plane::from_fn(m.dim(), |c| c.col == 0);
        let values = Plane::from_fn(m.dim(), |c| c.row == c.col);
        let src = Plane::from_fn(m.dim(), |c| (c.row * 4 + c.col) as i64);
        let l = m.pack_mask(&open).unwrap();
        assert_eq!(m.controller().total_steps(), 0, "pack is a view");
        let e = m.load_mask(&values).unwrap();
        assert_eq!(m.controller().steps(Op::Alu), 1);
        let b = m.mask_bit(&src, 1).unwrap();
        assert_eq!(m.controller().steps(Op::Alu), 2);
        let v = m.mask_vote(&e, &b, true);
        assert_eq!(m.controller().steps(Op::Alu), 3);
        let _k = m.mask_knockout(&e, &v, &b, true);
        assert_eq!(m.controller().steps(Op::Alu), 4);
        m.mask_bus_or(&v, Direction::West, &l).unwrap();
        assert_eq!(m.controller().steps(Op::BusOr), 1);
        m.broadcast_open(&src, Direction::East, &l).unwrap();
        assert_eq!(m.controller().steps(Op::Broadcast), 1);
    }

    #[test]
    fn mask_ops_match_plane_semantics() {
        let mut m = Machine::square(4);
        let open = Plane::from_fn(m.dim(), |c| c.col == 0 || c.col == 2);
        let values = Plane::from_fn(m.dim(), |c| c.row == 0 && c.col == 1);
        let l = m.pack_mask(&open).unwrap();
        let v = m.pack_mask(&values).unwrap();
        let or_masked = m.mask_bus_or(&v, Direction::East, &l).unwrap();
        let or_plane = m.bus_or(&values, Direction::East, &open).unwrap();
        assert_eq!(m.unpack_mask(&or_masked), or_plane);
        let src = Plane::from_fn(m.dim(), |c| (c.row * 4 + c.col) as i64);
        let bc_masked = m.broadcast_open(&src, Direction::East, &l).unwrap();
        let bc_plane = m.broadcast(&src, Direction::East, &open).unwrap();
        assert_eq!(bc_masked, bc_plane);
        assert_eq!(m.mask_count(&l), open.count_true());
    }

    #[test]
    fn zip_and_zip3_compute_elementwise() {
        let mut m = Machine::square(3);
        let a = Plane::from_fn(m.dim(), |c| c.row as i64);
        let b = Plane::from_fn(m.dim(), |c| c.col as i64);
        let s = m.zip(&a, &b, |x, y| x + y).unwrap();
        assert_eq!(*s.at(2, 1), 3);
        let mask = Plane::from_fn(m.dim(), |c| c.row == 0);
        let t = m
            .zip3(&s, &a, &mask, |x, y, &k| if k { *x } else { *y })
            .unwrap();
        assert_eq!(*t.at(0, 2), 2);
        assert_eq!(*t.at(1, 2), 1);
    }

    #[test]
    fn assign_masked_preserves_unmasked() {
        let mut m = Machine::square(2);
        let mut dst = Plane::filled(m.dim(), 0i64);
        let src = Plane::filled(m.dim(), 9i64);
        let mask = Plane::from_fn(m.dim(), |c| c.col == 1);
        m.assign_masked(&mut dst, &src, &mask).unwrap();
        assert_eq!(*dst.at(0, 0), 0);
        assert_eq!(*dst.at(0, 1), 9);
    }

    #[test]
    fn global_or_detects_single_flag() {
        let mut m = Machine::square(5);
        let mut flags = Plane::filled(m.dim(), false);
        assert!(!m.global_or(&flags).unwrap());
        flags.set(Coord::new(4, 4), true);
        assert!(m.global_or(&flags).unwrap());
    }

    #[test]
    fn row_col_index_registers() {
        let mut m = Machine::new(2, 3);
        let r = m.row_index();
        let c = m.col_index();
        assert_eq!(*r.at(1, 2), 1);
        assert_eq!(*c.at(1, 2), 2);
    }

    #[test]
    fn dim_mismatch_is_rejected() {
        let mut m = Machine::square(3);
        let wrong = Plane::filled(Dim::new(2, 3), 1i64);
        assert!(matches!(
            m.map(&wrong, |&v: &i64| v),
            Err(MachineError::DimMismatch { .. })
        ));
    }

    #[test]
    fn reset_steps_zeroes_counters() {
        let mut m = Machine::square(2);
        let _ = m.imm(0u8);
        m.reset_steps();
        assert_eq!(m.controller().total_steps(), 0);
    }

    #[test]
    fn shift_fill_policies_share_one_instruction_path() {
        let mut m = Machine::square(4);
        let src = Plane::from_fn(m.dim(), |c| c.col as i64);
        let filled = m.shift(&src, Direction::East, -7).unwrap();
        let wrapped = m.shift_wrapping(&src, Direction::East).unwrap();
        assert_eq!(m.controller().steps(Op::Shift), 2);
        assert_eq!(filled.row(1), &[-7, 0, 1, 2]);
        assert_eq!(wrapped.row(0), &[3, 0, 1, 2]);
        let explicit = m
            .shift_with(&src, Direction::East, Fill::Value(-7))
            .unwrap();
        assert_eq!(explicit, filled);
    }

    #[test]
    fn attached_faults_corrupt_live_broadcasts() {
        let mut m = Machine::square(4);
        let src = Plane::from_fn(m.dim(), |c| (c.row * 4 + c.col) as i64);
        let open = Plane::from_fn(m.dim(), |c| c.col == 0 || c.col == 2);
        let healthy = m.broadcast(&src, Direction::East, &open).unwrap();
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(0, 2), SwitchFault::StuckShort);
        m.attach_faults(fm);
        let faulty = m.broadcast(&src, Direction::East, &open).unwrap();
        assert_ne!(healthy.row(0), faulty.row(0), "fault reaches the bus");
        assert_eq!(faulty.row(0), &[0, 0, 0, 0], "head at (0,2) swallowed");
        assert_eq!(healthy.row(1), faulty.row(1));
        m.clear_faults();
        let again = m.broadcast(&src, Direction::East, &open).unwrap();
        assert_eq!(again.as_slice(), healthy.as_slice());
    }

    #[test]
    fn transient_glitches_are_one_shot() {
        let mut m = Machine::square(4);
        let src = Plane::from_fn(m.dim(), |c| (c.row * 4 + c.col) as i64);
        let open = Plane::filled(m.dim(), true);
        let healthy = m.broadcast(&src, Direction::East, &open).unwrap();
        // p = 1: every transfer glitches exactly one switch.
        m.attach_transient_faults(TransientFaults::new(1.0, 3));
        let glitched = m.broadcast(&src, Direction::East, &open).unwrap();
        let wrong = glitched
            .as_slice()
            .iter()
            .zip(healthy.as_slice())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(wrong, 1, "one flipped switch corrupts exactly one PE");
        m.clear_faults();
        let again = m.broadcast(&src, Direction::East, &open).unwrap();
        assert_eq!(again.as_slice(), healthy.as_slice());
    }

    #[test]
    fn self_test_on_healthy_machine_reports_healthy() {
        let mut m = Machine::square(4);
        let report = m.self_test();
        assert!(report.is_healthy(), "{report}");
        assert_eq!(report.patterns_run, 6);
        assert!(report.steps.total() > 0, "the sweep costs real steps");
        assert_eq!(m.controller().total_steps(), report.steps.total());
    }

    #[test]
    fn self_test_localizes_every_single_stuck_fault() {
        for idx in 0..16 {
            for fault in [SwitchFault::StuckShort, SwitchFault::StuckOpen] {
                let mut m = Machine::square(4);
                let at = m.dim().coord(idx);
                let mut fm = FaultMap::new();
                fm.inject(at, fault);
                m.attach_faults(fm);
                let report = m.self_test();
                assert_eq!(
                    report.located,
                    vec![(at, fault)],
                    "fault {fault:?} at {at:?} mislocalized: {report}"
                );
            }
        }
    }

    #[test]
    fn self_test_detects_multiple_faults() {
        let mut m = Machine::square(6);
        let fm = FaultMap::random(m.dim(), 4, 99);
        let expected: Vec<Coord> = fm.iter().map(|(c, _)| c).collect();
        m.attach_faults(fm);
        let report = m.self_test();
        // Overlapping faults may be attributed to a cluster neighbour, but
        // with 4 faults on 36 nodes the sweep must at least detect trouble;
        // in the common disjoint case it localizes all of them exactly.
        assert!(!report.is_healthy());
        for c in report.coords() {
            assert!(m.dim().contains(c));
        }
        if report.located.len() == expected.len() {
            assert_eq!(report.coords(), expected);
        }
    }

    #[test]
    fn empty_fault_map_leaves_instruction_path_bit_identical() {
        let src = Plane::from_fn(Dim::square(5), |c| (c.row * 5 + c.col) as i64);
        let open = Plane::from_fn(Dim::square(5), |c| (c.row + c.col) % 3 == 0);
        let mut plain = Machine::square(5);
        let mut attached = Machine::square(5);
        attached.attach_faults(FaultMap::new());
        let a = plain.broadcast(&src, Direction::South, &open).unwrap();
        let b = attached.broadcast(&src, Direction::South, &open).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(
            plain.controller().total_steps(),
            attached.controller().total_steps()
        );
    }

    #[test]
    fn step_budget_stops_divergent_program_exactly_at_budget() {
        let mut m = Machine::square(4);
        let flags = m.imm(false);
        m.reset_steps();
        m.limit_steps(10);
        // A deliberately divergent controller program: global-OR over an
        // all-false plane never terminates the loop on its own.
        let mut issued = 0u64;
        let err = loop {
            match m.global_or(&flags) {
                Ok(_) => issued += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(err, MachineError::StepBudgetExhausted { budget: 10 });
        assert_eq!(issued, 10, "exactly the granted steps were issued");
        assert_eq!(m.controller().total_steps(), 10, "counters intact");
        assert_eq!(m.steps_remaining(), Some(0));
        // The brake holds: further fallible instructions keep failing...
        assert!(m.global_or(&flags).is_err());
        // ...until the limit is lifted.
        m.clear_step_limit();
        assert_eq!(m.steps_remaining(), None);
        assert!(m.global_or(&flags).is_ok());
    }

    #[test]
    fn step_budget_is_relative_to_installation_point() {
        let mut m = Machine::square(3);
        let p = m.imm(1i64);
        let _ = m.map(&p, |&v| v + 1).unwrap();
        let spent = m.controller().total_steps();
        m.limit_steps(3);
        assert_eq!(m.steps_remaining(), Some(3));
        for _ in 0..3 {
            m.map(&p, |&v| v).unwrap();
        }
        assert!(matches!(
            m.map(&p, |&v: &i64| v),
            Err(MachineError::StepBudgetExhausted { budget: 3 })
        ));
        assert_eq!(m.controller().total_steps(), spent + 3);
    }

    #[test]
    fn cancel_token_stops_machine_between_instructions() {
        let mut m = Machine::square(3);
        let token = crate::budget::CancelToken::new();
        m.attach_cancel(token.clone());
        let p = m.imm(2i64);
        assert!(m.map(&p, |&v| v).is_ok(), "armed token does not fire");
        token.cancel();
        assert_eq!(m.map(&p, |&v: &i64| v), Err(MachineError::Cancelled));
        let steps = m.controller().total_steps();
        assert_eq!(steps, 2, "the refused instruction costs nothing");
        // Detaching the token re-enables the machine.
        let taken = m.take_cancel().expect("token was attached");
        assert!(taken.is_cancelled());
        assert!(m.map(&p, |&v| v).is_ok());
    }

    #[test]
    fn cancellation_outranks_remaining_budget() {
        let mut m = Machine::square(3);
        m.limit_steps(1000);
        let token = crate::budget::CancelToken::new();
        m.attach_cancel(token.clone());
        token.cancel();
        let p = Plane::filled(m.dim(), false);
        assert_eq!(m.global_or(&p), Err(MachineError::Cancelled));
    }

    #[test]
    fn self_test_is_exempt_from_budget_and_cancel() {
        let mut m = Machine::square(4);
        m.limit_steps(0);
        let token = crate::budget::CancelToken::new();
        token.cancel();
        m.attach_cancel(token);
        let report = m.self_test();
        assert!(report.is_healthy(), "{report}");
        assert_eq!(report.patterns_run, 6);
        // The brake state survives the diagnostic.
        let flags = Plane::filled(m.dim(), false);
        assert_eq!(m.global_or(&flags), Err(MachineError::Cancelled));
        m.take_cancel();
        assert!(matches!(
            m.global_or(&flags),
            Err(MachineError::StepBudgetExhausted { budget: 0 })
        ));
    }

    #[test]
    fn budget_errors_are_counted_in_metrics() {
        let mut m = Machine::square(3);
        m.controller_mut().enable_metrics();
        m.limit_steps(0);
        let flags = Plane::filled(m.dim(), false);
        assert!(m.global_or(&flags).is_err());
        let token = crate::budget::CancelToken::new();
        token.cancel();
        m.attach_cancel(token);
        assert!(m.global_or(&flags).is_err());
        let metrics = m.controller_mut().take_metrics();
        assert_eq!(metrics.counter("budget.exhausted"), 1);
        assert_eq!(metrics.counter("budget.cancelled"), 1);
    }

    #[test]
    fn micro_profile_counts_reconcile_with_step_counters() {
        let mut m = Machine::square(4);
        m.controller_mut().enable_metrics();
        m.enable_micro_profile();
        // Touch every instruction class, including the ones with no
        // executor call (imm, index registers, global-OR).
        let p = m.imm(1i64);
        let open = m.imm(true);
        let _ = m.row_index();
        let _ = m.col_index();
        let _ = m.broadcast(&p, Direction::East, &open).unwrap();
        let flags = m.map(&p, |&v| v > 0).unwrap();
        let _ = m.bus_or(&flags, Direction::South, &open).unwrap();
        let _ = m.shift(&p, Direction::West, 0).unwrap();
        let _ = m.global_or(&flags).unwrap();
        let e = m.load_mask(&flags).unwrap();
        let b = m.mask_bit(&p, 0).unwrap();
        let v = m.mask_vote(&e, &b, true);
        let _ = m.mask_knockout(&e, &v, &b, true);
        let mut dst = Plane::filled(m.dim(), 0i64);
        m.assign_masked(&mut dst, &p, &flags).unwrap();
        let l = m.pack_mask(&flags).unwrap();
        let _ = m.mask_bus_or(&v, Direction::West, &l).unwrap();
        let _ = m.broadcast_open(&p, Direction::East, &l).unwrap();
        let _ = m.mask_imm(false);

        let report = m.controller().report();
        let profile = m.take_micro_profile();
        assert_eq!(profile.backend(), "scalar");
        for op in Op::ALL {
            let count = profile.class(op.label()).map_or(0, |w| w.count);
            assert_eq!(count, report.count(op), "class {}", op.label());
        }
        assert_eq!(profile.total().count, report.total());
        // take_micro_profile folded the same tallies into the registry.
        let metrics = m.controller_mut().take_metrics();
        for op in Op::ALL {
            assert_eq!(
                metrics.counter(&format!("exec.scalar.{}.count", op.label())),
                report.count(op),
                "exec counter for {}",
                op.label()
            );
        }
    }

    #[test]
    fn micro_profile_covers_fault_routed_transfers() {
        let mut m = Machine::square(4);
        m.enable_micro_profile();
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(0, 2), SwitchFault::StuckShort);
        m.attach_faults(fm);
        let src = m.imm(1i64);
        let open_plane = m.imm(true);
        let open = m.pack_mask(&open_plane).unwrap();
        let _ = m.broadcast_open(&src, Direction::East, &open).unwrap();
        let v = m.pack_mask(&open_plane).unwrap();
        let _ = m.mask_bus_or(&v, Direction::East, &open).unwrap();
        let report = m.controller().report();
        let profile = m.take_micro_profile();
        assert_eq!(
            profile.class("broadcast").map_or(0, |w| w.count),
            report.count(Op::Broadcast)
        );
        assert_eq!(
            profile.class("bus-or").map_or(0, |w| w.count),
            report.count(Op::BusOr)
        );
    }

    #[test]
    fn occupancy_sampling_off_skips_statistics_but_not_steps() {
        use ppa_obs::OccupancySampling;
        let mut m = Machine::square(4);
        m.controller_mut().enable_metrics();
        m.controller_mut()
            .set_occupancy_sampling(OccupancySampling::Off);
        let src = m.imm(1i64);
        let open = m.imm(true);
        m.broadcast(&src, Direction::East, &open).unwrap();
        let metrics = m.controller_mut().take_metrics();
        assert_eq!(metrics.counter("steps.broadcast"), 1);
        assert_eq!(metrics.counter("bus.transactions"), 1);
        assert_eq!(metrics.counter("bus.clusters"), 0, "statistics gated off");
        assert_eq!(metrics.counter("mask.active_pes"), 0);
    }
}
