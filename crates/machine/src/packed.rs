//! The packed execution backend: u64-word bitset masks, a recycling plane
//! arena, and a bus-plan cache.
//!
//! [`PackedBackend`] implements [`Executor`] with three wall-clock levers
//! the scalar reference backend lacks:
//!
//! * **Packed masks** — every `Plane<bool>` mask inside the bit-serial
//!   `min`/`selected_min` loop is a [`PackedMask`]: 64 PEs per u64 word, so
//!   votes, knockouts, bit-plane extraction and occupancy counting are word
//!   ops and popcounts instead of per-PE byte walks.
//! * **Plane arena** — mask words are recycled through a shared
//!   [`WordPool`]; after warm-up the O(h) scan loop allocates nothing.
//! * **Bus-plan cache** — cluster resolution (`bus::cluster_keys`) is
//!   computed once per distinct (direction, Open-mask) switch configuration
//!   and reused; the MCP inner loop replays the same configuration across
//!   all h bit passes, so nearly every bus instruction hits the cache.
//!
//! Semantics are bit-identical to [`ScalarBackend`](crate::ScalarBackend):
//! the differential suite in `tests/backend_diff.rs` asserts values *and*
//! step counts across backends.

use std::cell::RefCell;
use std::rc::Rc;

use crate::bus;
use crate::engine::{self, ExecMode};
use crate::error::MachineError;
use crate::geometry::{Axis, Dim, Direction};
use crate::isa::{ExecStats, Executor};
use crate::machine::Machine;
use crate::plane::Plane;

pub(crate) const WORD_BITS: usize = 64;
/// Retained bus plans; the MCP loop needs ~5 distinct configurations, so a
/// small LRU never evicts a live plan while tolerating mask churn.
pub(crate) const PLAN_CACHE_CAP: usize = 32;

pub(crate) fn words_for(dim: Dim) -> usize {
    dim.len().div_ceil(WORD_BITS)
}

/// Whether any bit in `start..end` of a flat bitset is set.
fn range_any(words: &[u64], start: usize, end: usize) -> bool {
    let mut i = start;
    while i < end {
        let wi = i / WORD_BITS;
        let off = i % WORD_BITS;
        let take = (WORD_BITS - off).min(end - i);
        let mask = if take == WORD_BITS {
            !0u64
        } else {
            ((1u64 << take) - 1) << off
        };
        if words[wi] & mask != 0 {
            return true;
        }
        i += take;
    }
    false
}

/// Sets every bit in `start..end` of a flat bitset.
fn set_range(words: &mut [u64], start: usize, end: usize) {
    let mut i = start;
    while i < end {
        let wi = i / WORD_BITS;
        let off = i % WORD_BITS;
        let take = (WORD_BITS - off).min(end - i);
        let mask = if take == WORD_BITS {
            !0u64
        } else {
            ((1u64 << take) - 1) << off
        };
        words[wi] |= mask;
        i += take;
    }
}

// ----- word kernels ---------------------------------------------------
//
// The per-word mechanics of every packed mask micro-op, written over a
// word range `w0..w0 + out.len()` so the threaded backend can shard the
// same kernels across its worker pool. The packed backend always calls
// them with the full range; bit-identity across the two backends is
// therefore structural, not coincidental.

/// Packs the booleans backing words `w0..` of a flat plane into `out`.
pub(crate) fn pack_range(src: &[bool], w0: usize, out: &mut [u64]) {
    for (k, w) in out.iter_mut().enumerate() {
        let base = (w0 + k) * WORD_BITS;
        let top = WORD_BITS.min(src.len() - base);
        let mut word = 0u64;
        for (b, &v) in src[base..base + top].iter().enumerate() {
            word |= (v as u64) << b;
        }
        *w = word;
    }
}

/// Extracts bit `j` of the values backing words `w0..` into `out`.
pub(crate) fn bit_plane_range(src: &[i64], j: u32, w0: usize, out: &mut [u64]) {
    for (k, w) in out.iter_mut().enumerate() {
        let base = (w0 + k) * WORD_BITS;
        let top = WORD_BITS.min(src.len() - base);
        let mut word = 0u64;
        for (b, &x) in src[base..base + top].iter().enumerate() {
            debug_assert!(x >= 0, "bit-serial scan expects non-negative values");
            word |= (((x >> j) & 1) as u64) << b;
        }
        *w = word;
    }
}

/// The voting step over words `w0..`: Min rule `e & !b`, Max rule `e & b`.
/// `enable` has zero trailing bits, so the negation preserves the trim
/// invariant.
pub(crate) fn vote_range(e: &[u64], b: &[u64], keep_low: bool, w0: usize, out: &mut [u64]) {
    for (k, w) in out.iter_mut().enumerate() {
        let (ew, bw) = (e[w0 + k], b[w0 + k]);
        *w = if keep_low { ew & !bw } else { ew & bw };
    }
}

/// The knockout step over words `w0..`: Min rule `e & !(p & b)`, Max rule
/// `e & (!p | b)`.
pub(crate) fn knockout_range(
    e: &[u64],
    p: &[u64],
    b: &[u64],
    keep_low: bool,
    w0: usize,
    out: &mut [u64],
) {
    for (k, w) in out.iter_mut().enumerate() {
        let (ew, pw, bw) = (e[w0 + k], p[w0 + k], b[w0 + k]);
        *w = if keep_low {
            ew & !(pw & bw)
        } else {
            ew & (!pw | bw)
        };
    }
}

/// Wired-OR pass 1 over row-run segments: deposits a bit at the cluster
/// key of every segment that contains a set value bit.
pub(crate) fn bus_or_deposit_segs(values: &[u64], segs: &[(u32, u32, u32)], acc: &mut [u64]) {
    for &(s, e, k) in segs {
        if range_any(values, s as usize, e as usize) {
            let k = k as usize;
            acc[k / WORD_BITS] |= 1u64 << (k % WORD_BITS);
        }
    }
}

/// Wired-OR pass 2 over row-run segments: fills every segment whose
/// cluster key is lit in `acc`.
pub(crate) fn bus_or_fill_segs(acc: &[u64], segs: &[(u32, u32, u32)], out: &mut [u64]) {
    for &(s, e, k) in segs {
        let k = k as usize;
        if (acc[k / WORD_BITS] >> (k % WORD_BITS)) & 1 == 1 {
            set_range(out, s as usize, e as usize);
        }
    }
}

/// Wired-OR pass 1, general axis: deposits the set bits of `values`
/// words `w0..w0 + nwords` at their cluster keys.
pub(crate) fn bus_or_deposit_keys(
    values: &[u64],
    keys: &[u32],
    w0: usize,
    nwords: usize,
    acc: &mut [u64],
) {
    for wi in w0..w0 + nwords {
        let mut bits = values[wi];
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            let key = keys[wi * WORD_BITS + b] as usize;
            acc[key / WORD_BITS] |= 1u64 << (key % WORD_BITS);
            bits &= bits - 1;
        }
    }
}

/// Wired-OR pass 2, general axis: words `w0..` of the result, each PE
/// reading its cluster key back from `acc` (`len` is the PE count).
pub(crate) fn bus_or_read_keys(acc: &[u64], keys: &[u32], len: usize, w0: usize, out: &mut [u64]) {
    for (k, w) in out.iter_mut().enumerate() {
        let base = (w0 + k) * WORD_BITS;
        let top = WORD_BITS.min(len - base);
        let mut word = 0u64;
        for b in 0..top {
            let key = keys[base + b] as usize;
            word |= ((acc[key / WORD_BITS] >> (key % WORD_BITS)) & 1) << b;
        }
        *w = word;
    }
}

/// The shared mask arena: spent word buffers waiting to be reissued.
#[derive(Debug, Default)]
pub(crate) struct WordPool {
    free: Vec<Vec<u64>>,
    pub(crate) fresh: u64,
    pub(crate) reused: u64,
}

impl WordPool {
    /// A zeroed buffer of exactly `words` words, recycled when possible.
    pub(crate) fn get(&mut self, words: usize) -> Vec<u64> {
        while let Some(mut buf) = self.free.pop() {
            if buf.len() == words {
                self.reused += 1;
                buf.fill(0);
                return buf;
            }
            // Stale geometry (machine rebuilt with another dim): discard.
        }
        self.fresh += 1;
        vec![0u64; words]
    }

    pub(crate) fn put(&mut self, buf: Vec<u64>) {
        if !buf.is_empty() {
            self.free.push(buf);
        }
    }
}

/// A boolean mask plane packed 64 PEs per u64 word (row-major flat order).
///
/// Buffers are leased from the backend's [`WordPool`]: dropping or cloning
/// a mask goes through the arena, so steady-state mask traffic allocates
/// nothing. Bits at positions `>= dim.len()` in the last word are always
/// zero (every producing operation maintains the invariant).
pub struct PackedMask {
    dim: Dim,
    words: Vec<u64>,
    pool: Rc<RefCell<WordPool>>,
}

impl PackedMask {
    /// Whether the bit for flat PE index `i` is set.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Number of set PEs (a popcount per word).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The mask geometry.
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// Zeroes any bits at positions `>= dim.len()` in the last word.
    fn trim(&mut self) {
        let rem = self.dim.len() % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl Drop for PackedMask {
    fn drop(&mut self) {
        self.pool.borrow_mut().put(std::mem::take(&mut self.words));
    }
}

impl Clone for PackedMask {
    fn clone(&self) -> Self {
        let mut words = self.pool.borrow_mut().get(self.words.len());
        words.copy_from_slice(&self.words);
        PackedMask {
            dim: self.dim,
            words,
            pool: Rc::clone(&self.pool),
        }
    }
}

impl PartialEq for PackedMask {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.words == other.words
    }
}

impl std::fmt::Debug for PackedMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedMask")
            .field("dim", &self.dim)
            .field("set", &self.count())
            .finish()
    }
}

/// A cached bus-cluster resolution for one (direction, Open mask) pair.
#[derive(Debug)]
pub(crate) struct BusPlan {
    /// Flat index of the driving Open node, per PE (floating-segment key on
    /// driverless lines — see [`bus::cluster_keys`]).
    pub(crate) keys: Vec<u32>,
    /// Lines with no Open node (broadcast faults on these; wired-OR spans).
    pub(crate) driverless: Vec<usize>,
    /// Maximal runs of equal key as `(start, end, key)` flat-index ranges —
    /// populated only for row-axis plans, where each line's positions are
    /// contiguous in row-major order. A cluster that wraps around its line
    /// contributes two runs with the same key; the wired-OR fast path
    /// accumulates per key, so that is handled naturally.
    pub(crate) segs: Vec<(u32, u32, u32)>,
}

/// Derives the cluster plan for a packed Open mask from scratch — the
/// cache-miss path shared by the packed and threaded backends.
pub(crate) fn compute_plan(dim: Dim, dir: Direction, words: &[u64]) -> BusPlan {
    let mut open = vec![false; dim.len()];
    for (i, o) in open.iter_mut().enumerate() {
        *o = (words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1;
    }
    let (keys, driverless) = bus::cluster_keys(dim, dir, &open);
    let segs = if dir.axis() == Axis::Row {
        let mut segs = Vec::new();
        for r in 0..dim.rows {
            let base = r * dim.cols;
            let mut s = base;
            for p in base + 1..base + dim.cols {
                if keys[p] != keys[s] {
                    segs.push((s as u32, p as u32, keys[s]));
                    s = p;
                }
            }
            segs.push((s as u32, (base + dim.cols) as u32, keys[s]));
        }
        segs
    } else {
        Vec::new()
    };
    BusPlan {
        keys,
        driverless,
        segs,
    }
}

#[derive(Debug, Clone)]
struct PlanEntry {
    dir: Direction,
    fp: u64,
    words: Vec<u64>,
    plan: Rc<BusPlan>,
}

pub(crate) fn fingerprint(dir: Direction, words: &[u64]) -> u64 {
    // FNV-1a over the packed words, seeded with the direction.
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (dir as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The packed bit-plane execution backend (see module docs).
#[derive(Debug, Clone)]
pub struct PackedBackend {
    pool: Rc<RefCell<WordPool>>,
    plans: Vec<PlanEntry>,
    plan_hits: u64,
    plan_misses: u64,
    scratch: Vec<u64>,
}

impl PackedBackend {
    /// A fresh backend with an empty arena and plan cache.
    pub fn new() -> Self {
        PackedBackend {
            pool: Rc::new(RefCell::new(WordPool::default())),
            plans: Vec::new(),
            plan_hits: 0,
            plan_misses: 0,
            scratch: Vec::new(),
        }
    }

    fn alloc_mask(&mut self, dim: Dim) -> PackedMask {
        let words = self.pool.borrow_mut().get(words_for(dim));
        PackedMask {
            dim,
            words,
            pool: Rc::clone(&self.pool),
        }
    }

    /// The cached cluster plan for `open` given as packed words.
    fn plan_for_words(&mut self, dim: Dim, dir: Direction, words: &[u64]) -> Rc<BusPlan> {
        let fp = fingerprint(dir, words);
        if let Some(pos) = self
            .plans
            .iter()
            .position(|e| e.dir == dir && e.fp == fp && e.words == words)
        {
            self.plan_hits += 1;
            let entry = self.plans.remove(pos);
            let plan = Rc::clone(&entry.plan);
            self.plans.push(entry); // LRU: most recent at the back
            return plan;
        }
        self.plan_misses += 1;
        let plan = Rc::new(compute_plan(dim, dir, words));
        if self.plans.len() >= PLAN_CACHE_CAP {
            self.plans.remove(0);
        }
        self.plans.push(PlanEntry {
            dir,
            fp,
            words: words.to_vec(),
            plan: Rc::clone(&plan),
        });
        plan
    }

    /// The cached cluster plan for `open` given as a plane.
    fn plan_for_plane(&mut self, dim: Dim, dir: Direction, open: &Plane<bool>) -> Rc<BusPlan> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.resize(words_for(dim), 0);
        for (i, &o) in open.as_slice().iter().enumerate() {
            if o {
                scratch[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
            }
        }
        let plan = self.plan_for_words(dim, dir, &scratch);
        self.scratch = scratch;
        plan
    }
}

impl Default for PackedBackend {
    fn default() -> Self {
        PackedBackend::new()
    }
}

impl Executor for PackedBackend {
    type Mask = PackedMask;

    const NAME: &'static str = "packed";

    fn mask_from_plane(&mut self, dim: Dim, plane: &Plane<bool>) -> PackedMask {
        let mut mask = self.alloc_mask(dim);
        pack_range(plane.as_slice(), 0, &mut mask.words);
        mask
    }

    fn mask_to_plane(&self, dim: Dim, mask: &PackedMask) -> Plane<bool> {
        Plane::from_vec(dim, (0..dim.len()).map(|i| mask.bit(i)).collect())
    }

    fn mask_filled(&mut self, dim: Dim, value: bool) -> PackedMask {
        let mut mask = self.alloc_mask(dim);
        if value {
            mask.words.fill(!0u64);
            mask.trim();
        }
        mask
    }

    fn mask_count(&self, _dim: Dim, mask: &PackedMask) -> usize {
        mask.count()
    }

    fn bit_plane(&mut self, _mode: ExecMode, dim: Dim, src: &Plane<i64>, j: u32) -> PackedMask {
        let mut mask = self.alloc_mask(dim);
        bit_plane_range(src.as_slice(), j, 0, &mut mask.words);
        mask
    }

    fn vote(
        &mut self,
        _mode: ExecMode,
        dim: Dim,
        enable: &PackedMask,
        bit: &PackedMask,
        keep_low: bool,
    ) -> PackedMask {
        let mut out = self.alloc_mask(dim);
        vote_range(&enable.words, &bit.words, keep_low, 0, &mut out.words);
        out
    }

    fn knockout(
        &mut self,
        _mode: ExecMode,
        dim: Dim,
        enable: &PackedMask,
        present: &PackedMask,
        bit: &PackedMask,
        keep_low: bool,
    ) -> PackedMask {
        let mut out = self.alloc_mask(dim);
        knockout_range(
            &enable.words,
            &present.words,
            &bit.words,
            keep_low,
            0,
            &mut out.words,
        );
        out
    }

    fn mask_bus_or(
        &mut self,
        _mode: ExecMode,
        dim: Dim,
        values: &PackedMask,
        dir: Direction,
        open: &PackedMask,
    ) -> Result<PackedMask, MachineError> {
        let plan = self.plan_for_words(dim, dir, &open.words);
        let nwords = words_for(dim);
        let mut out = self.alloc_mask(dim);
        // Accumulator bitset indexed by cluster key: pass 1 deposits set
        // value bits at their cluster key, pass 2 reads each PE's key back.
        let mut acc = self.pool.borrow_mut().get(nwords);
        if !plan.segs.is_empty() {
            // Row-axis fast path: each cluster is a handful of contiguous
            // runs, so both passes are word-masked range ops instead of
            // per-PE bit walks.
            bus_or_deposit_segs(&values.words, &plan.segs, &mut acc);
            bus_or_fill_segs(&acc, &plan.segs, &mut out.words);
        } else {
            bus_or_deposit_keys(&values.words, &plan.keys, 0, nwords, &mut acc);
            bus_or_read_keys(&acc, &plan.keys, dim.len(), 0, &mut out.words);
        }
        self.pool.borrow_mut().put(acc);
        Ok(out)
    }

    fn broadcast<T: Copy + Send + Sync + 'static>(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        src: &Plane<T>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<T>, MachineError> {
        if src.dim() != dim {
            return Err(MachineError::DimMismatch {
                expected: dim,
                found: src.dim(),
            });
        }
        if open.dim() != dim {
            return Err(MachineError::DimMismatch {
                expected: dim,
                found: open.dim(),
            });
        }
        let plan = self.plan_for_plane(dim, dir, open);
        if !plan.driverless.is_empty() {
            return Err(MachineError::BusFault {
                axis: dir.axis(),
                lines: plan.driverless.clone(),
            });
        }
        let s = src.as_slice();
        let keys = &plan.keys;
        let data = engine::build(mode, dim.len(), |i| s[keys[i] as usize]);
        Ok(Plane::from_vec(dim, data))
    }

    fn broadcast_masked<T: Copy + Send + Sync + 'static>(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        src: &Plane<T>,
        dir: Direction,
        open: &PackedMask,
    ) -> Result<Plane<T>, MachineError> {
        if src.dim() != dim {
            return Err(MachineError::DimMismatch {
                expected: dim,
                found: src.dim(),
            });
        }
        let plan = self.plan_for_words(dim, dir, &open.words);
        if !plan.driverless.is_empty() {
            return Err(MachineError::BusFault {
                axis: dir.axis(),
                lines: plan.driverless.clone(),
            });
        }
        let s = src.as_slice();
        let keys = &plan.keys;
        let data = engine::build(mode, dim.len(), |i| s[keys[i] as usize]);
        Ok(Plane::from_vec(dim, data))
    }

    fn bus_or(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        values: &Plane<bool>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<bool>, MachineError> {
        if values.dim() != dim {
            return Err(MachineError::DimMismatch {
                expected: dim,
                found: values.dim(),
            });
        }
        if open.dim() != dim {
            return Err(MachineError::DimMismatch {
                expected: dim,
                found: open.dim(),
            });
        }
        let plan = self.plan_for_plane(dim, dir, open);
        let v = values.as_slice();
        let keys = &plan.keys;
        let mut acc = vec![false; dim.len()];
        for (i, &set) in v.iter().enumerate() {
            if set {
                acc[keys[i] as usize] = true;
            }
        }
        let data = engine::build(mode, dim.len(), |i| acc[keys[i] as usize]);
        Ok(Plane::from_vec(dim, data))
    }

    fn stats(&self) -> ExecStats {
        let pool = self.pool.borrow();
        ExecStats {
            plan_hits: self.plan_hits,
            plan_misses: self.plan_misses,
            arena_fresh: pool.fresh,
            arena_reused: pool.reused,
        }
    }

    fn reset_stats(&mut self) {
        self.plan_hits = 0;
        self.plan_misses = 0;
        let mut pool = self.pool.borrow_mut();
        pool.fresh = 0;
        pool.reused = 0;
    }
}

impl Machine<PackedBackend> {
    /// Creates a `rows x cols` machine on the packed backend.
    pub fn new_packed(rows: usize, cols: usize) -> Self {
        Machine::with_backend(
            Dim::new(rows, cols),
            ExecMode::Sequential,
            PackedBackend::new(),
        )
    }

    /// Creates a square `n x n` machine on the packed backend.
    pub fn packed_square(n: usize) -> Self {
        Machine::new_packed(n, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ScalarBackend;

    fn plane_of(dim: Dim, f: impl Fn(usize) -> bool) -> Plane<bool> {
        Plane::from_vec(dim, (0..dim.len()).map(f).collect())
    }

    #[test]
    fn pack_roundtrip_preserves_bits() {
        let dim = Dim::new(5, 13); // 65 PEs: crosses a word boundary
        let plane = plane_of(dim, |i| i % 3 == 0 || i == 64);
        let mut be = PackedBackend::new();
        let mask = be.mask_from_plane(dim, &plane);
        assert_eq!(mask.count(), plane.count_true());
        assert_eq!(be.mask_to_plane(dim, &mask), plane);
    }

    #[test]
    fn filled_mask_trims_trailing_bits() {
        let dim = Dim::new(3, 3);
        let mut be = PackedBackend::new();
        let mask = be.mask_filled(dim, true);
        assert_eq!(mask.count(), 9);
        assert_eq!(mask.words[0], 0x1ff);
    }

    #[test]
    fn packed_bus_or_matches_scalar_reference() {
        let dim = Dim::square(9);
        let mut packed = PackedBackend::new();
        let mut scalar = ScalarBackend;
        for (seed, dir) in [(3usize, Direction::East), (7, Direction::South)] {
            let open = plane_of(dim, |i| (i * seed + 1) % 4 == 0);
            let vals = plane_of(dim, |i| (i * seed) % 5 == 0);
            let pm = packed.mask_from_plane(dim, &open);
            let pv = packed.mask_from_plane(dim, &vals);
            let got = packed
                .mask_bus_or(ExecMode::Sequential, dim, &pv, dir, &pm)
                .unwrap();
            let want = scalar
                .mask_bus_or(ExecMode::Sequential, dim, &vals, dir, &open)
                .unwrap();
            assert_eq!(packed.mask_to_plane(dim, &got), want, "dir {dir:?}");
        }
    }

    #[test]
    fn plan_cache_hits_on_repeated_configurations() {
        let dim = Dim::square(8);
        let mut be = PackedBackend::new();
        let open = plane_of(dim, |i| i % 8 == 0);
        let src = Plane::from_vec(dim, (0..dim.len() as i64).collect());
        for _ in 0..5 {
            be.broadcast(ExecMode::Sequential, dim, &src, Direction::East, &open)
                .unwrap();
        }
        let stats = be.stats();
        assert_eq!(stats.plan_misses, 1);
        assert_eq!(stats.plan_hits, 4);
        assert!(stats.plan_hit_rate() > 0.75);
    }

    #[test]
    fn arena_recycles_mask_buffers() {
        let dim = Dim::square(16);
        let mut be = PackedBackend::new();
        for _ in 0..10 {
            let m = be.mask_filled(dim, true);
            drop(m);
        }
        let stats = be.stats();
        assert_eq!(stats.arena_fresh, 1, "one physical buffer serves the loop");
        assert_eq!(stats.arena_reused, 9);
    }

    #[test]
    fn driverless_broadcast_faults_like_scalar() {
        let dim = Dim::square(4);
        let mut be = PackedBackend::new();
        let open = plane_of(dim, |_| false);
        let src = Plane::filled(dim, 1i64);
        match be.broadcast(ExecMode::Sequential, dim, &src, Direction::East, &open) {
            Err(MachineError::BusFault { lines, .. }) => assert_eq!(lines, vec![0, 1, 2, 3]),
            other => panic!("expected BusFault, got {other:?}"),
        }
    }
}
