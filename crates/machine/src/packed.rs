//! The packed execution backend: wide-word bitset masks, a recycling plane
//! arena, and a bus-plan cache.
//!
//! [`PackedBackend`] implements [`Executor`] with three wall-clock levers
//! the scalar reference backend lacks:
//!
//! * **Packed masks** — every `Plane<bool>` mask inside the bit-serial
//!   `min`/`selected_min` loop is a [`PackedMask`]: `W::BITS` PEs per
//!   machine word (see the [`Word`] seam), so votes, knockouts, bit-plane
//!   extraction and occupancy counting are word ops and popcounts instead
//!   of per-PE byte walks.
//! * **Plane arena** — mask words are recycled through a shared
//!   [`WordPool`]; after warm-up the O(h) scan loop allocates nothing.
//! * **Bus-plan cache** — cluster resolution (`bus::cluster_keys`) is
//!   computed once per distinct (direction, Open-mask) switch configuration
//!   and reused; the MCP inner loop replays the same configuration across
//!   all h bit passes, so nearly every bus instruction hits the cache.
//!   Plans are fingerprinted per word width, so a 64-bit plan can never be
//!   replayed against 256-bit masks.
//!
//! The backend is generic over the machine word: `PackedBackend<W64>` (the
//! default) is the historical u64 backend, `PackedBackend<W256>` runs the
//! same kernels over 256-bit SWAR words. Semantics are bit-identical to
//! [`ScalarBackend`](crate::ScalarBackend) at every width: the differential
//! suites in `tests/backend_diff.rs` and `tests/backend_width.rs` assert
//! values *and* step counts across backends and widths.

use std::cell::RefCell;
use std::rc::Rc;

use crate::bus;
use crate::engine::{self, ExecMode};
use crate::error::MachineError;
use crate::geometry::{Axis, Dim, Direction};
use crate::isa::{ExecStats, Executor};
use crate::machine::Machine;
use crate::plane::Plane;
use crate::word::{Word, W64};

/// Retained bus plans; the MCP loop needs ~5 distinct configurations, so a
/// small LRU never evicts a live plan while tolerating mask churn.
pub(crate) const PLAN_CACHE_CAP: usize = 32;

/// Number of `W`-words needed to back one bit per PE of `dim` — the
/// width-neutral stride every packed buffer is sized with.
pub(crate) fn words_for<W: Word>(dim: Dim) -> usize {
    dim.len().div_ceil(W::BITS)
}

/// Whether any bit in `start..end` of a flat bitset is set.
pub(crate) fn range_any<W: Word>(words: &[W], start: usize, end: usize) -> bool {
    let mut i = start;
    while i < end {
        let wi = i / W::BITS;
        let off = i % W::BITS;
        let take = (W::BITS - off).min(end - i);
        if !(words[wi] & W::range_mask(off, off + take)).is_zero() {
            return true;
        }
        i += take;
    }
    false
}

/// Sets every bit in `start..end` of a flat bitset.
pub(crate) fn set_range<W: Word>(words: &mut [W], start: usize, end: usize) {
    let mut i = start;
    while i < end {
        let wi = i / W::BITS;
        let off = i % W::BITS;
        let take = (W::BITS - off).min(end - i);
        words[wi] |= W::range_mask(off, off + take);
        i += take;
    }
}

// ----- word kernels ---------------------------------------------------
//
// The per-word mechanics of every packed mask micro-op, written over a
// word range `w0..w0 + out.len()` so the threaded backend can shard the
// same kernels across its worker pool. The packed backend always calls
// them with the full range; bit-identity across the two backends is
// therefore structural, not coincidental. All kernels are generic over
// the machine word and build output words limb-by-limb, so `W64` compiles
// to exactly the historical u64 loops.

/// Packs the booleans backing words `w0..` of a flat plane into `out`.
pub(crate) fn pack_range<W: Word>(src: &[bool], w0: usize, out: &mut [W]) {
    for (k, w) in out.iter_mut().enumerate() {
        let base = (w0 + k) * W::BITS;
        let top = W::BITS.min(src.len() - base);
        let mut word = W::zero();
        let mut done = 0;
        while done < top {
            let take = 64.min(top - done);
            let mut limb = 0u64;
            for (b, &v) in src[base + done..base + done + take].iter().enumerate() {
                limb |= (v as u64) << b;
            }
            word.set_limb(done / 64, limb);
            done += take;
        }
        *w = word;
    }
}

/// Extracts bit `j` of the values backing words `w0..` into `out`.
pub(crate) fn bit_plane_range<W: Word>(src: &[i64], j: u32, w0: usize, out: &mut [W]) {
    for (k, w) in out.iter_mut().enumerate() {
        let base = (w0 + k) * W::BITS;
        let top = W::BITS.min(src.len() - base);
        let mut word = W::zero();
        let mut done = 0;
        while done < top {
            let take = 64.min(top - done);
            let mut limb = 0u64;
            for (b, &x) in src[base + done..base + done + take].iter().enumerate() {
                debug_assert!(x >= 0, "bit-serial scan expects non-negative values");
                limb |= (((x >> j) & 1) as u64) << b;
            }
            word.set_limb(done / 64, limb);
            done += take;
        }
        *w = word;
    }
}

/// The voting step over words `w0..`: Min rule `e & !b`, Max rule `e & b`.
/// `enable` has zero trailing bits, so the negation preserves the trim
/// invariant.
pub(crate) fn vote_range<W: Word>(e: &[W], b: &[W], keep_low: bool, w0: usize, out: &mut [W]) {
    for (k, w) in out.iter_mut().enumerate() {
        let (ew, bw) = (e[w0 + k], b[w0 + k]);
        *w = if keep_low { ew & !bw } else { ew & bw };
    }
}

/// The knockout step over words `w0..`: Min rule `e & !(p & b)`, Max rule
/// `e & (!p | b)`.
pub(crate) fn knockout_range<W: Word>(
    e: &[W],
    p: &[W],
    b: &[W],
    keep_low: bool,
    w0: usize,
    out: &mut [W],
) {
    for (k, w) in out.iter_mut().enumerate() {
        let (ew, pw, bw) = (e[w0 + k], p[w0 + k], b[w0 + k]);
        *w = if keep_low {
            ew & !(pw & bw)
        } else {
            ew & (!pw | bw)
        };
    }
}

/// Wired-OR pass 1 over row-run segments: deposits a bit at the cluster
/// key of every segment that contains a set value bit.
pub(crate) fn bus_or_deposit_segs<W: Word>(values: &[W], segs: &[(u32, u32, u32)], acc: &mut [W]) {
    for &(s, e, k) in segs {
        if range_any(values, s as usize, e as usize) {
            let k = k as usize;
            acc[k / W::BITS] = acc[k / W::BITS].with_bit(k % W::BITS);
        }
    }
}

/// Wired-OR pass 2 over row-run segments: fills every segment whose
/// cluster key is lit in `acc`.
pub(crate) fn bus_or_fill_segs<W: Word>(acc: &[W], segs: &[(u32, u32, u32)], out: &mut [W]) {
    for &(s, e, k) in segs {
        let k = k as usize;
        if acc[k / W::BITS].bit(k % W::BITS) {
            set_range(out, s as usize, e as usize);
        }
    }
}

/// Wired-OR pass 1, general axis: deposits the set bits of `values`
/// words `w0..w0 + nwords` at their cluster keys.
pub(crate) fn bus_or_deposit_keys<W: Word>(
    values: &[W],
    keys: &[u32],
    w0: usize,
    nwords: usize,
    acc: &mut [W],
) {
    for wi in w0..w0 + nwords {
        values[wi].for_each_set_bit(|b| {
            let key = keys[wi * W::BITS + b] as usize;
            acc[key / W::BITS] = acc[key / W::BITS].with_bit(key % W::BITS);
        });
    }
}

/// Wired-OR pass 2, general axis: words `w0..` of the result, each PE
/// reading its cluster key back from `acc` (`len` is the PE count).
pub(crate) fn bus_or_read_keys<W: Word>(
    acc: &[W],
    keys: &[u32],
    len: usize,
    w0: usize,
    out: &mut [W],
) {
    for (k, w) in out.iter_mut().enumerate() {
        let base = (w0 + k) * W::BITS;
        let top = W::BITS.min(len - base);
        let mut word = W::zero();
        let mut done = 0;
        while done < top {
            let take = 64.min(top - done);
            let mut limb = 0u64;
            for b in 0..take {
                let key = keys[base + done + b] as usize;
                limb |= (acc[key / W::BITS].bit(key % W::BITS) as u64) << b;
            }
            word.set_limb(done / 64, limb);
            done += take;
        }
        *w = word;
    }
}

/// The shared mask arena: spent word buffers waiting to be reissued.
#[derive(Debug)]
pub(crate) struct WordPool<W> {
    free: Vec<Vec<W>>,
    pub(crate) fresh: u64,
    pub(crate) reused: u64,
}

impl<W> Default for WordPool<W> {
    fn default() -> Self {
        WordPool {
            free: Vec::new(),
            fresh: 0,
            reused: 0,
        }
    }
}

impl<W: Word> WordPool<W> {
    /// A zeroed buffer of exactly `words` words, recycled when possible.
    pub(crate) fn get(&mut self, words: usize) -> Vec<W> {
        while let Some(mut buf) = self.free.pop() {
            if buf.len() == words {
                self.reused += 1;
                buf.fill(W::zero());
                return buf;
            }
            // Stale geometry (machine rebuilt with another dim): discard.
        }
        self.fresh += 1;
        vec![W::zero(); words]
    }

    pub(crate) fn put(&mut self, buf: Vec<W>) {
        if !buf.is_empty() {
            self.free.push(buf);
        }
    }
}

/// A boolean mask plane packed `W::BITS` PEs per machine word (row-major
/// flat order).
///
/// Buffers are leased from the backend's [`WordPool`]: dropping or cloning
/// a mask goes through the arena, so steady-state mask traffic allocates
/// nothing. Bits at positions `>= dim.len()` in the last word are always
/// zero (every producing operation maintains the invariant).
pub struct PackedMask<W: Word = W64> {
    dim: Dim,
    words: Vec<W>,
    pool: Rc<RefCell<WordPool<W>>>,
}

impl<W: Word> PackedMask<W> {
    /// Whether the bit for flat PE index `i` is set.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        self.words[i / W::BITS].bit(i % W::BITS)
    }

    /// Number of set PEs (a popcount per word).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// The mask geometry.
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// Zeroes any bits at positions `>= dim.len()` in the last word.
    fn trim(&mut self) {
        let rem = self.dim.len() % W::BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= W::low_mask(rem);
            }
        }
    }
}

impl<W: Word> Drop for PackedMask<W> {
    fn drop(&mut self) {
        self.pool.borrow_mut().put(std::mem::take(&mut self.words));
    }
}

impl<W: Word> Clone for PackedMask<W> {
    fn clone(&self) -> Self {
        let mut words = self.pool.borrow_mut().get(self.words.len());
        words.copy_from_slice(&self.words);
        PackedMask {
            dim: self.dim,
            words,
            pool: Rc::clone(&self.pool),
        }
    }
}

impl<W: Word> PartialEq for PackedMask<W> {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.words == other.words
    }
}

impl<W: Word> std::fmt::Debug for PackedMask<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedMask")
            .field("dim", &self.dim)
            .field("word_bits", &W::BITS)
            .field("set", &self.count())
            .finish()
    }
}

/// A cached bus-cluster resolution for one (direction, Open mask) pair.
#[derive(Debug)]
pub(crate) struct BusPlan {
    /// Flat index of the driving Open node, per PE (floating-segment key on
    /// driverless lines — see [`bus::cluster_keys`]).
    pub(crate) keys: Vec<u32>,
    /// Lines with no Open node (broadcast faults on these; wired-OR spans).
    pub(crate) driverless: Vec<usize>,
    /// Maximal runs of equal key as `(start, end, key)` flat-index ranges —
    /// populated only for row-axis plans, where each line's positions are
    /// contiguous in row-major order. A cluster that wraps around its line
    /// contributes two runs with the same key; the wired-OR fast path
    /// accumulates per key, so that is handled naturally.
    pub(crate) segs: Vec<(u32, u32, u32)>,
}

/// Derives the cluster plan for a packed Open mask from scratch — the
/// cache-miss path shared by the packed and threaded backends.
pub(crate) fn compute_plan<W: Word>(dim: Dim, dir: Direction, words: &[W]) -> BusPlan {
    let mut open = vec![false; dim.len()];
    for (i, o) in open.iter_mut().enumerate() {
        *o = words[i / W::BITS].bit(i % W::BITS);
    }
    let (keys, driverless) = bus::cluster_keys(dim, dir, &open);
    let segs = if dir.axis() == Axis::Row {
        let mut segs = Vec::new();
        for r in 0..dim.rows {
            let base = r * dim.cols;
            let mut s = base;
            for p in base + 1..base + dim.cols {
                if keys[p] != keys[s] {
                    segs.push((s as u32, p as u32, keys[s]));
                    s = p;
                }
            }
            segs.push((s as u32, (base + dim.cols) as u32, keys[s]));
        }
        segs
    } else {
        Vec::new()
    };
    BusPlan {
        keys,
        driverless,
        segs,
    }
}

#[derive(Debug, Clone)]
struct PlanEntry<W> {
    dir: Direction,
    fp: u64,
    words: Vec<W>,
    plan: Rc<BusPlan>,
}

/// FNV-1a over the packed words, seeded with the direction *and* the word
/// width, so plans can never be confused across widths even if two mask
/// encodings happen to share limb values.
pub(crate) fn fingerprint<W: Word>(dir: Direction, words: &[W]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64
        ^ (dir as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (W::BITS as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
    for &w in words {
        h = w.fold_fnv(h);
    }
    h
}

/// The packed bit-plane execution backend (see module docs), generic over
/// the machine word `W`.
#[derive(Debug, Clone)]
pub struct PackedBackend<W: Word = W64> {
    pool: Rc<RefCell<WordPool<W>>>,
    plans: Vec<PlanEntry<W>>,
    plan_hits: u64,
    plan_misses: u64,
    scratch: Vec<W>,
    /// Bench-gate mutation drill only: corrupt one bit of every vote.
    #[cfg(any(test, feature = "mutation-drill"))]
    perturb_vote: bool,
}

impl<W: Word> PackedBackend<W> {
    /// A fresh backend with an empty arena and plan cache.
    pub fn new() -> Self {
        PackedBackend {
            pool: Rc::new(RefCell::new(WordPool::default())),
            plans: Vec::new(),
            plan_hits: 0,
            plan_misses: 0,
            scratch: Vec::new(),
            #[cfg(any(test, feature = "mutation-drill"))]
            perturb_vote: false,
        }
    }

    /// A deliberately broken backend whose `vote` flips bit 0 of its first
    /// output word — the bench-gate mutation drill uses this to prove the
    /// width differential actually fails on a one-bit kernel corruption.
    /// Never compiled into release binaries.
    #[cfg(any(test, feature = "mutation-drill"))]
    pub fn with_perturbed_vote() -> Self {
        let mut be = PackedBackend::new();
        be.perturb_vote = true;
        be
    }

    fn alloc_mask(&mut self, dim: Dim) -> PackedMask<W> {
        let words = self.pool.borrow_mut().get(words_for::<W>(dim));
        PackedMask {
            dim,
            words,
            pool: Rc::clone(&self.pool),
        }
    }

    /// The cached cluster plan for `open` given as packed words.
    fn plan_for_words(&mut self, dim: Dim, dir: Direction, words: &[W]) -> Rc<BusPlan> {
        let fp = fingerprint(dir, words);
        if let Some(pos) = self
            .plans
            .iter()
            .position(|e| e.dir == dir && e.fp == fp && e.words == words)
        {
            self.plan_hits += 1;
            let entry = self.plans.remove(pos);
            let plan = Rc::clone(&entry.plan);
            self.plans.push(entry); // LRU: most recent at the back
            return plan;
        }
        self.plan_misses += 1;
        let plan = Rc::new(compute_plan(dim, dir, words));
        if self.plans.len() >= PLAN_CACHE_CAP {
            self.plans.remove(0);
        }
        self.plans.push(PlanEntry {
            dir,
            fp,
            words: words.to_vec(),
            plan: Rc::clone(&plan),
        });
        plan
    }

    /// The cached cluster plan for `open` given as a plane.
    fn plan_for_plane(&mut self, dim: Dim, dir: Direction, open: &Plane<bool>) -> Rc<BusPlan> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.resize(words_for::<W>(dim), W::zero());
        pack_range(open.as_slice(), 0, &mut scratch);
        let plan = self.plan_for_words(dim, dir, &scratch);
        self.scratch = scratch;
        plan
    }
}

impl<W: Word> Default for PackedBackend<W> {
    fn default() -> Self {
        PackedBackend::new()
    }
}

impl<W: Word> Executor for PackedBackend<W> {
    type Mask = PackedMask<W>;

    const NAME: &'static str = W::PACKED_NAME;

    fn mask_from_plane(&mut self, dim: Dim, plane: &Plane<bool>) -> PackedMask<W> {
        let mut mask = self.alloc_mask(dim);
        pack_range(plane.as_slice(), 0, &mut mask.words);
        mask
    }

    fn mask_to_plane(&self, dim: Dim, mask: &PackedMask<W>) -> Plane<bool> {
        Plane::from_vec(dim, (0..dim.len()).map(|i| mask.bit(i)).collect())
    }

    fn mask_filled(&mut self, dim: Dim, value: bool) -> PackedMask<W> {
        let mut mask = self.alloc_mask(dim);
        if value {
            mask.words.fill(W::ones());
            mask.trim();
        }
        mask
    }

    fn mask_count(&self, _dim: Dim, mask: &PackedMask<W>) -> usize {
        mask.count()
    }

    fn bit_plane(&mut self, _mode: ExecMode, dim: Dim, src: &Plane<i64>, j: u32) -> PackedMask<W> {
        let mut mask = self.alloc_mask(dim);
        bit_plane_range(src.as_slice(), j, 0, &mut mask.words);
        mask
    }

    fn vote(
        &mut self,
        _mode: ExecMode,
        dim: Dim,
        enable: &PackedMask<W>,
        bit: &PackedMask<W>,
        keep_low: bool,
    ) -> PackedMask<W> {
        let mut out = self.alloc_mask(dim);
        vote_range(&enable.words, &bit.words, keep_low, 0, &mut out.words);
        #[cfg(any(test, feature = "mutation-drill"))]
        if self.perturb_vote {
            out.words[0] ^= W::zero().with_bit(0);
        }
        out
    }

    fn knockout(
        &mut self,
        _mode: ExecMode,
        dim: Dim,
        enable: &PackedMask<W>,
        present: &PackedMask<W>,
        bit: &PackedMask<W>,
        keep_low: bool,
    ) -> PackedMask<W> {
        let mut out = self.alloc_mask(dim);
        knockout_range(
            &enable.words,
            &present.words,
            &bit.words,
            keep_low,
            0,
            &mut out.words,
        );
        out
    }

    fn mask_bus_or(
        &mut self,
        _mode: ExecMode,
        dim: Dim,
        values: &PackedMask<W>,
        dir: Direction,
        open: &PackedMask<W>,
    ) -> Result<PackedMask<W>, MachineError> {
        let plan = self.plan_for_words(dim, dir, &open.words);
        let nwords = words_for::<W>(dim);
        let mut out = self.alloc_mask(dim);
        // Accumulator bitset indexed by cluster key: pass 1 deposits set
        // value bits at their cluster key, pass 2 reads each PE's key back.
        let mut acc = self.pool.borrow_mut().get(nwords);
        if !plan.segs.is_empty() {
            // Row-axis fast path: each cluster is a handful of contiguous
            // runs, so both passes are word-masked range ops instead of
            // per-PE bit walks.
            bus_or_deposit_segs(&values.words, &plan.segs, &mut acc);
            bus_or_fill_segs(&acc, &plan.segs, &mut out.words);
        } else {
            bus_or_deposit_keys(&values.words, &plan.keys, 0, nwords, &mut acc);
            bus_or_read_keys(&acc, &plan.keys, dim.len(), 0, &mut out.words);
        }
        self.pool.borrow_mut().put(acc);
        Ok(out)
    }

    fn broadcast<T: Copy + Send + Sync + 'static>(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        src: &Plane<T>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<T>, MachineError> {
        if src.dim() != dim {
            return Err(MachineError::DimMismatch {
                expected: dim,
                found: src.dim(),
            });
        }
        if open.dim() != dim {
            return Err(MachineError::DimMismatch {
                expected: dim,
                found: open.dim(),
            });
        }
        let plan = self.plan_for_plane(dim, dir, open);
        if !plan.driverless.is_empty() {
            return Err(MachineError::BusFault {
                axis: dir.axis(),
                lines: plan.driverless.clone(),
            });
        }
        let s = src.as_slice();
        let keys = &plan.keys;
        let data = engine::build(mode, dim.len(), |i| s[keys[i] as usize]);
        Ok(Plane::from_vec(dim, data))
    }

    fn broadcast_masked<T: Copy + Send + Sync + 'static>(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        src: &Plane<T>,
        dir: Direction,
        open: &PackedMask<W>,
    ) -> Result<Plane<T>, MachineError> {
        if src.dim() != dim {
            return Err(MachineError::DimMismatch {
                expected: dim,
                found: src.dim(),
            });
        }
        let plan = self.plan_for_words(dim, dir, &open.words);
        if !plan.driverless.is_empty() {
            return Err(MachineError::BusFault {
                axis: dir.axis(),
                lines: plan.driverless.clone(),
            });
        }
        let s = src.as_slice();
        let keys = &plan.keys;
        let data = engine::build(mode, dim.len(), |i| s[keys[i] as usize]);
        Ok(Plane::from_vec(dim, data))
    }

    fn bus_or(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        values: &Plane<bool>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<bool>, MachineError> {
        if values.dim() != dim {
            return Err(MachineError::DimMismatch {
                expected: dim,
                found: values.dim(),
            });
        }
        if open.dim() != dim {
            return Err(MachineError::DimMismatch {
                expected: dim,
                found: open.dim(),
            });
        }
        let plan = self.plan_for_plane(dim, dir, open);
        let v = values.as_slice();
        let keys = &plan.keys;
        let mut acc = vec![false; dim.len()];
        for (i, &set) in v.iter().enumerate() {
            if set {
                acc[keys[i] as usize] = true;
            }
        }
        let data = engine::build(mode, dim.len(), |i| acc[keys[i] as usize]);
        Ok(Plane::from_vec(dim, data))
    }

    fn stats(&self) -> ExecStats {
        let pool = self.pool.borrow();
        ExecStats {
            plan_hits: self.plan_hits,
            plan_misses: self.plan_misses,
            arena_fresh: pool.fresh,
            arena_reused: pool.reused,
        }
    }

    fn reset_stats(&mut self) {
        self.plan_hits = 0;
        self.plan_misses = 0;
        let mut pool = self.pool.borrow_mut();
        pool.fresh = 0;
        pool.reused = 0;
    }
}

impl Machine<PackedBackend> {
    /// Creates a `rows x cols` machine on the packed backend (64-bit words).
    pub fn new_packed(rows: usize, cols: usize) -> Self {
        Machine::new_packed_wide(rows, cols)
    }

    /// Creates a square `n x n` machine on the packed backend (64-bit words).
    pub fn packed_square(n: usize) -> Self {
        Machine::new_packed(n, n)
    }
}

impl<W: Word> Machine<PackedBackend<W>> {
    /// Creates a `rows x cols` machine on the packed backend with machine
    /// word `W`.
    pub fn new_packed_wide(rows: usize, cols: usize) -> Self {
        Machine::with_backend(
            Dim::new(rows, cols),
            ExecMode::Sequential,
            PackedBackend::new(),
        )
    }

    /// Creates a square `n x n` machine on the packed backend with machine
    /// word `W`.
    pub fn packed_square_wide(n: usize) -> Self {
        Machine::new_packed_wide(n, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ScalarBackend;
    use crate::word::W256;

    fn plane_of(dim: Dim, f: impl Fn(usize) -> bool) -> Plane<bool> {
        Plane::from_vec(dim, (0..dim.len()).map(f).collect())
    }

    #[test]
    fn pack_roundtrip_preserves_bits() {
        let dim = Dim::new(5, 13); // 65 PEs: crosses a word boundary
        let plane = plane_of(dim, |i| i % 3 == 0 || i == 64);
        let mut be = PackedBackend::<W64>::new();
        let mask = be.mask_from_plane(dim, &plane);
        assert_eq!(mask.count(), plane.count_true());
        assert_eq!(be.mask_to_plane(dim, &mask), plane);
    }

    #[test]
    fn pack_roundtrip_preserves_bits_w256() {
        // 300 PEs: crosses a 256-bit word boundary, with a partial
        // trailing word (300 % 256 = 44 live bits in the last word).
        let dim = Dim::new(15, 20);
        let plane = plane_of(dim, |i| i % 3 == 0 || i == 255 || i == 256 || i == 299);
        let mut be = PackedBackend::<W256>::new();
        let mask = be.mask_from_plane(dim, &plane);
        assert_eq!(mask.count(), plane.count_true());
        assert_eq!(be.mask_to_plane(dim, &mask), plane);
    }

    #[test]
    fn filled_mask_trims_trailing_bits() {
        let dim = Dim::new(3, 3);
        let mut be = PackedBackend::<W64>::new();
        let mask = be.mask_filled(dim, true);
        assert_eq!(mask.count(), 9);
        assert_eq!(mask.words[0], 0x1ff);
    }

    #[test]
    fn filled_mask_trims_partial_trailing_word_w256() {
        // Trailing-word trim at each sub-word (limb) offset of the 256-bit
        // word: dims whose `len % 256` falls in limb 0, 1, 2 and 3.
        for (rows, cols) in [(1, 300), (1, 320), (1, 400), (1, 450), (2, 256)] {
            let dim = Dim::new(rows, cols);
            let mut be = PackedBackend::<W256>::new();
            let mask = be.mask_filled(dim, true);
            assert_eq!(mask.count(), dim.len(), "dim {dim:?}");
            for i in 0..dim.len() {
                assert!(mask.bit(i));
            }
            // Nothing past the live region in the last word.
            let last = *mask.words.last().unwrap();
            let rem = dim.len() % 256;
            if rem != 0 {
                assert_eq!(last & !W256::low_mask(rem), W256::zero(), "dim {dim:?}");
            }
        }
    }

    #[test]
    fn range_ops_cover_all_subword_offsets_w256() {
        // `range_any`/`set_range` with boundaries at all four 64-bit limb
        // offsets inside a 256-bit word, plus straddles and a full span.
        let nwords = 3; // 768 bits
        for (s, e) in [
            (0, 64),
            (64, 128),
            (128, 192),
            (192, 256),
            (60, 70),
            (120, 200),
            (250, 300), // straddles the word boundary
            (255, 257), // one bit each side of the boundary
            (500, 768), // runs to the very end
            (0, 768),   // everything
            (300, 300), // empty
        ] {
            let mut words = vec![W256::zero(); nwords];
            set_range(&mut words, s, e);
            let mut count = 0;
            for w in &words {
                count += w.count_ones();
            }
            assert_eq!(count, e - s, "set_range {s}..{e}");
            for probe in 0..768 {
                let hit = range_any(&words, probe, probe + 1);
                assert_eq!(hit, (s..e).contains(&probe), "range {s}..{e} probe {probe}");
            }
            // range_any over the exact range, just outside it, and empty.
            assert_eq!(range_any(&words, s, e), s != e);
            if s > 0 {
                assert!(!range_any(&words, 0, s), "prefix clean {s}..{e}");
            }
            if e < 768 {
                assert!(!range_any(&words, e, 768), "suffix clean {s}..{e}");
            }
        }
    }

    #[test]
    fn packed_bus_or_matches_scalar_reference() {
        let dim = Dim::square(9);
        let mut packed = PackedBackend::<W64>::new();
        let mut scalar = ScalarBackend;
        for (seed, dir) in [(3usize, Direction::East), (7, Direction::South)] {
            let open = plane_of(dim, |i| (i * seed + 1) % 4 == 0);
            let vals = plane_of(dim, |i| (i * seed) % 5 == 0);
            let pm = packed.mask_from_plane(dim, &open);
            let pv = packed.mask_from_plane(dim, &vals);
            let got = packed
                .mask_bus_or(ExecMode::Sequential, dim, &pv, dir, &pm)
                .unwrap();
            let want = scalar
                .mask_bus_or(ExecMode::Sequential, dim, &vals, dir, &open)
                .unwrap();
            assert_eq!(packed.mask_to_plane(dim, &got), want, "dir {dir:?}");
        }
    }

    #[test]
    fn packed_bus_or_matches_scalar_reference_w256() {
        // 21x21 = 441 PEs: row segments and column key walks both straddle
        // the 256-bit word boundary.
        let dim = Dim::square(21);
        let mut packed = PackedBackend::<W256>::new();
        let mut scalar = ScalarBackend;
        for (seed, dir) in [
            (3usize, Direction::East),
            (7, Direction::South),
            (11, Direction::West),
            (5, Direction::North),
        ] {
            let open = plane_of(dim, |i| (i * seed + 1) % 4 == 0);
            let vals = plane_of(dim, |i| (i * seed) % 5 == 0);
            let pm = packed.mask_from_plane(dim, &open);
            let pv = packed.mask_from_plane(dim, &vals);
            let got = packed
                .mask_bus_or(ExecMode::Sequential, dim, &pv, dir, &pm)
                .unwrap();
            let want = scalar
                .mask_bus_or(ExecMode::Sequential, dim, &vals, dir, &open)
                .unwrap();
            assert_eq!(packed.mask_to_plane(dim, &got), want, "dir {dir:?}");
        }
    }

    #[test]
    fn vote_and_knockout_match_scalar_at_w256() {
        let dim = Dim::new(9, 31); // 279 PEs: straddles the 256-bit boundary
        let mut packed = PackedBackend::<W256>::new();
        let mut scalar = ScalarBackend;
        let enable = plane_of(dim, |i| i % 2 == 0);
        let present = plane_of(dim, |i| i % 3 != 0);
        let bit = plane_of(dim, |i| (i / 5) % 2 == 1);
        let (pe, pp, pb) = (
            packed.mask_from_plane(dim, &enable),
            packed.mask_from_plane(dim, &present),
            packed.mask_from_plane(dim, &bit),
        );
        for keep_low in [true, false] {
            let got = packed.vote(ExecMode::Sequential, dim, &pe, &pb, keep_low);
            let want = scalar.vote(ExecMode::Sequential, dim, &enable, &bit, keep_low);
            assert_eq!(packed.mask_to_plane(dim, &got), want, "vote {keep_low}");
            let got = packed.knockout(ExecMode::Sequential, dim, &pe, &pp, &pb, keep_low);
            let want =
                scalar.knockout(ExecMode::Sequential, dim, &enable, &present, &bit, keep_low);
            assert_eq!(packed.mask_to_plane(dim, &got), want, "knockout {keep_low}");
        }
    }

    #[test]
    fn plan_cache_hits_on_repeated_configurations() {
        let dim = Dim::square(8);
        let mut be = PackedBackend::<W64>::new();
        let open = plane_of(dim, |i| i % 8 == 0);
        let src = Plane::from_vec(dim, (0..dim.len() as i64).collect());
        for _ in 0..5 {
            be.broadcast(ExecMode::Sequential, dim, &src, Direction::East, &open)
                .unwrap();
        }
        let stats = be.stats();
        assert_eq!(stats.plan_misses, 1);
        assert_eq!(stats.plan_hits, 4);
        assert!(stats.plan_hit_rate() > 0.75);
    }

    #[test]
    fn fingerprints_are_width_keyed() {
        // The same mask content packed at different widths must produce
        // different plan fingerprints: a plan computed for W64 words can
        // never be replayed against W256 masks.
        let dim = Dim::square(8);
        let plane = plane_of(dim, |i| i % 8 == 0);
        let mut w64 = vec![W64::zero(); words_for::<W64>(dim)];
        pack_range(plane.as_slice(), 0, &mut w64);
        let mut w256 = vec![W256::zero(); words_for::<W256>(dim)];
        pack_range(plane.as_slice(), 0, &mut w256);
        assert_ne!(
            fingerprint(Direction::East, &w64),
            fingerprint(Direction::East, &w256),
        );
    }

    #[test]
    fn arena_recycles_mask_buffers() {
        let dim = Dim::square(16);
        let mut be = PackedBackend::<W64>::new();
        for _ in 0..10 {
            let m = be.mask_filled(dim, true);
            drop(m);
        }
        let stats = be.stats();
        assert_eq!(stats.arena_fresh, 1, "one physical buffer serves the loop");
        assert_eq!(stats.arena_reused, 9);
    }

    #[test]
    fn driverless_broadcast_faults_like_scalar() {
        let dim = Dim::square(4);
        let mut be = PackedBackend::<W64>::new();
        let open = plane_of(dim, |_| false);
        let src = Plane::filled(dim, 1i64);
        match be.broadcast(ExecMode::Sequential, dim, &src, Direction::East, &open) {
            Err(MachineError::BusFault { lines, .. }) => assert_eq!(lines, vec![0, 1, 2, 3]),
            other => panic!("expected BusFault, got {other:?}"),
        }
    }

    #[test]
    fn perturbed_vote_differs_in_exactly_one_bit() {
        let dim = Dim::square(6);
        let enable = plane_of(dim, |i| i % 2 == 0);
        let bit = plane_of(dim, |i| i % 3 == 0);
        let mut clean = PackedBackend::<W256>::new();
        let mut drilled = PackedBackend::<W256>::with_perturbed_vote();
        let (ce, cb) = (
            clean.mask_from_plane(dim, &enable),
            clean.mask_from_plane(dim, &bit),
        );
        let (de, db) = (
            drilled.mask_from_plane(dim, &enable),
            drilled.mask_from_plane(dim, &bit),
        );
        let want = clean.vote(ExecMode::Sequential, dim, &ce, &cb, true);
        let got = drilled.vote(ExecMode::Sequential, dim, &de, &db, true);
        let diff: usize = (0..dim.len())
            .filter(|&i| want.bit(i) != got.bit(i))
            .count();
        assert_eq!(diff, 1, "exactly PE 0 corrupted");
    }
}
