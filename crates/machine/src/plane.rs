//! Register planes: one value per processing element.
//!
//! A [`Plane<T>`] is the machine-level storage behind a PPC `parallel`
//! variable: a dense, row-major rectangle of values, one per PE. Planes are
//! plain data — all *costed* operations on them live on
//! [`Machine`](crate::Machine) (so that every SIMD instruction is recorded
//! by the controller); the methods here are free structural helpers used to
//! build inputs and inspect outputs.

use crate::geometry::{Coord, Dim};
use std::fmt;
use std::sync::Arc;

/// A dense plane of values, one per PE, stored row-major.
///
/// Storage is shared copy-on-write: cloning a plane is an `Arc` bump (the
/// backends lean on this — the threaded backend ships plane data to its
/// persistent workers without copying), and the mutating helpers
/// ([`Plane::set`], [`Plane::as_mut_slice`]) unshare the buffer first.
#[derive(PartialEq, Eq)]
pub struct Plane<T> {
    dim: Dim,
    data: Arc<Vec<T>>,
}

impl<T> Clone for Plane<T> {
    fn clone(&self) -> Self {
        Plane {
            dim: self.dim,
            data: Arc::clone(&self.data),
        }
    }
}

impl<T> Plane<T> {
    /// Builds a plane by evaluating `f` at every coordinate.
    pub fn from_fn(dim: Dim, mut f: impl FnMut(Coord) -> T) -> Self {
        let mut data = Vec::with_capacity(dim.len());
        for row in 0..dim.rows {
            for col in 0..dim.cols {
                data.push(f(Coord::new(row, col)));
            }
        }
        Plane {
            dim,
            data: Arc::new(data),
        }
    }

    /// Wraps an existing row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != dim.len()`.
    pub fn from_vec(dim: Dim, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            dim.len(),
            "plane data length {} does not match dimension {}",
            data.len(),
            dim
        );
        Plane {
            dim,
            data: Arc::new(data),
        }
    }

    /// The dimensions of the plane.
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The shared handle to the row-major storage — how backends hand
    /// plane data to worker threads without copying.
    pub(crate) fn shared(&self) -> Arc<Vec<T>> {
        Arc::clone(&self.data)
    }

    /// Reference to the value at `c`.
    #[inline]
    pub fn get(&self, c: Coord) -> &T {
        &self.data[self.dim.index(c)]
    }

    /// Reference to the value at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> &T {
        self.get(Coord::new(row, col))
    }

    /// Iterates over all values row-major.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Iterates over `(Coord, &T)` pairs row-major.
    pub fn enumerate(&self) -> impl Iterator<Item = (Coord, &T)> {
        let dim = self.dim;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (dim.coord(i), v))
    }

    /// Borrow one row as a slice.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.dim.rows, "row {row} out of bounds");
        &self.data[row * self.dim.cols..(row + 1) * self.dim.cols]
    }

    /// Structural (uncosted) elementwise map; used to build test fixtures
    /// and to convert between value representations outside the machine.
    pub fn map_free<U>(&self, f: impl FnMut(&T) -> U) -> Plane<U> {
        Plane {
            dim: self.dim,
            data: Arc::new(self.data.iter().map(f).collect()),
        }
    }
}

impl<T: Clone> Plane<T> {
    /// Builds a plane with every element set to `value`.
    pub fn filled(dim: Dim, value: T) -> Self {
        Plane {
            dim,
            data: Arc::new(vec![value; dim.len()]),
        }
    }

    /// Mutably borrow the underlying row-major storage, unsharing it
    /// first if other clones exist.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consumes the plane, returning its row-major storage (cloned only
    /// if other handles to the buffer are still alive).
    pub fn into_vec(self) -> Vec<T> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Sets the value at `c`.
    #[inline]
    pub fn set(&mut self, c: Coord, value: T) {
        let idx = self.dim.index(c);
        Arc::make_mut(&mut self.data)[idx] = value;
    }

    /// Collects one column as a vector (rows top to bottom).
    pub fn col(&self, col: usize) -> Vec<T> {
        assert!(col < self.dim.cols, "column {col} out of bounds");
        (0..self.dim.rows)
            .map(|r| self.at(r, col).clone())
            .collect()
    }

    /// Returns the transposed plane (structural helper; the real machine
    /// transposes via bus traffic, which the algorithms never need here).
    pub fn transposed(&self) -> Plane<T> {
        let dim = Dim::new(self.dim.cols, self.dim.rows);
        Plane::from_fn(dim, |c| self.at(c.col, c.row).clone())
    }
}

impl Plane<bool> {
    /// Number of `true` elements.
    pub fn count_true(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }

    /// Whether any element is `true` (structural helper; the *costed*
    /// global-OR is [`Machine::global_or`](crate::Machine::global_or)).
    pub fn any(&self) -> bool {
        self.data.iter().any(|&b| b)
    }

    /// Whether all elements are `true`.
    pub fn all(&self) -> bool {
        self.data.iter().all(|&b| b)
    }
}

impl<T: fmt::Debug> fmt::Debug for Plane<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Plane {} [", self.dim)?;
        for row in 0..self.dim.rows {
            write!(f, "  ")?;
            for col in 0..self.dim.cols {
                write!(f, "{:?} ", self.at(row, col))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d23() -> Dim {
        Dim::new(2, 3)
    }

    #[test]
    fn from_fn_is_row_major() {
        let p = Plane::from_fn(d23(), |c| (c.row, c.col));
        assert_eq!(
            p.as_slice(),
            &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        );
    }

    #[test]
    fn get_set_round_trip() {
        let mut p = Plane::filled(d23(), 0i64);
        p.set(Coord::new(1, 2), 42);
        assert_eq!(*p.at(1, 2), 42);
        assert_eq!(*p.at(0, 2), 0);
    }

    #[test]
    #[should_panic(expected = "does not match dimension")]
    fn from_vec_length_checked() {
        let _ = Plane::from_vec(d23(), vec![1, 2, 3]);
    }

    #[test]
    fn row_and_col_extraction() {
        let p = Plane::from_fn(d23(), |c| c.row * 10 + c.col);
        assert_eq!(p.row(1), &[10, 11, 12]);
        assert_eq!(p.col(2), vec![2, 12]);
    }

    #[test]
    fn transposed_swaps_axes() {
        let p = Plane::from_fn(d23(), |c| c.row * 10 + c.col);
        let t = p.transposed();
        assert_eq!(t.dim(), Dim::new(3, 2));
        assert_eq!(*t.at(2, 1), *p.at(1, 2));
    }

    #[test]
    fn bool_plane_counts() {
        let p = Plane::from_fn(d23(), |c| c.col == 1);
        assert_eq!(p.count_true(), 2);
        assert!(p.any());
        assert!(!p.all());
    }

    #[test]
    fn clone_shares_storage_and_mutation_unshares() {
        let a = Plane::filled(d23(), 1i64);
        let mut b = a.clone();
        assert!(
            Arc::ptr_eq(&a.shared(), &b.shared()),
            "clone is an Arc bump"
        );
        b.set(Coord::new(0, 0), 9);
        assert_eq!(*a.at(0, 0), 1, "copy-on-write leaves the original alone");
        assert_eq!(*b.at(0, 0), 9);
        assert_eq!(b.clone().into_vec()[0], 9, "shared into_vec clones out");
    }

    #[test]
    fn enumerate_yields_coords() {
        let p = Plane::from_fn(d23(), |c| c.row + c.col);
        for (c, v) in p.enumerate() {
            assert_eq!(*v, c.row + c.col);
        }
    }
}
