//! Cooperative run budgets: cancellation tokens shared between a
//! running controller program and its supervisor.
//!
//! The MCP solve loop is data-dependent: the paper's `O(p * h)` bound has
//! `p` determined by the input graph, so a pathological (or adversarial)
//! weight matrix can drive a controller program far past its expected
//! step count. A serving layer therefore needs two cooperative brakes on
//! a running [`Machine`](crate::Machine):
//!
//! * a **step budget** ([`Machine::limit_steps`](crate::Machine::limit_steps)):
//!   the machine refuses to issue fallible instructions once the
//!   controller's total step count reaches the cap, returning
//!   [`MachineError::StepBudgetExhausted`](crate::MachineError::StepBudgetExhausted)
//!   with all step counters intact;
//! * a **cancel token** ([`Machine::attach_cancel`](crate::Machine::attach_cancel)):
//!   a cloneable flag another thread can raise; the machine notices it at
//!   the next fallible instruction and returns
//!   [`MachineError::Cancelled`](crate::MachineError::Cancelled).
//!
//! Both are *cooperative*: nothing is interrupted mid-instruction, the
//! machine simply declines to issue the next one. Because every solver
//! loop iteration issues fallible primitives (bus transfers, masked
//! assignments, the global-OR termination read), a runaway program is
//! stopped within one iteration of the brake engaging.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable cancellation flag.
///
/// All clones share one flag: raising it through any clone cancels every
/// machine the token is attached to, at that machine's next fallible
/// instruction. Tokens start un-cancelled and are one-way — there is no
/// reset; detach the token and attach a fresh one to re-arm a machine.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the flag has been raised (through any clone).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

impl fmt::Display for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_cancelled() {
            write!(f, "cancelled")
        } else {
            write!(f, "armed")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        assert!(!u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        assert!(u.is_cancelled());
    }

    #[test]
    fn cancel_is_idempotent() {
        let t = CancelToken::new();
        t.cancel();
        t.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.to_string(), "cancelled");
        assert_eq!(CancelToken::new().to_string(), "armed");
    }
}
