//! The threaded execution backend: packed bit-plane words sharded across a
//! persistent worker pool.
//!
//! [`ThreadedBackend`] is the third [`Executor`] over the micro-op ISA. It
//! keeps the packed backend's representation — wide bit-plane words behind
//! the [`Word`] seam, a recycling word arena, a fingerprint-keyed bus-plan
//! cache — and attacks per-step wall-clock with host parallelism:
//!
//! * **Persistent pool** — `threads - 1` workers are spawned once per
//!   backend and barrier-synchronized per micro-op through a condvar
//!   rendezvous; no instruction ever pays thread-spawn cost. The issuing
//!   thread itself computes shard 0, so `threads == 1` degenerates to a
//!   pool-free packed execution.
//! * **Shard views** — each micro-op's word rows (or plane elements, for
//!   broadcast gathers) are split into `threads` contiguous shards; every
//!   shard runs the *same* word kernels as [`PackedBackend`]
//!   (`crate::packed`'s `pack_range`, `vote_range`, …), over its range.
//!   `shard_ranges` is a pure function of the word count — itself a pure
//!   function of array size and word width — so the decomposition, and with
//!   it bit-identity, holds at every `(threads, width)` combination.
//! * **Fixed-order combination** — shard partials are concatenated (or, for
//!   the wired-OR accumulator, OR-merged) in ascending shard order on the
//!   issuing thread, so results are deterministic and bit-identical to
//!   [`ScalarBackend`](crate::ScalarBackend) regardless of thread count.
//!
//! The issue side — step accounting, fault routing, step budgets and
//! cancellation — lives in [`Machine`](crate::Machine) and is untouched:
//! the cooperative brake fires between micro-ops on the issuing thread, so
//! budget exhaustion and cancellation land on the same controller step for
//! every thread count. The differential suites in
//! `tests/backend_threaded.rs` and `tests/backend_width.rs` assert all of
//! this bit-for-bit.
//!
//! Masks and planes cross the shard boundary as `Arc` handles (see
//! [`SharedMask`] and the copy-on-write `Plane`), never as borrowed
//! slices, which keeps the pool free of `unsafe` lifetime games.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::engine::ExecMode;
use crate::error::MachineError;
use crate::geometry::{Dim, Direction};
use crate::isa::{ExecStats, Executor};
use crate::machine::Machine;
use crate::packed::{
    bit_plane_range, bus_or_deposit_keys, bus_or_deposit_segs, bus_or_fill_segs, bus_or_read_keys,
    compute_plan, fingerprint, knockout_range, pack_range, vote_range, words_for, BusPlan,
    WordPool, PLAN_CACHE_CAP,
};
use crate::plane::Plane;
use crate::word::{Word, W64};

/// Work items (source elements walked) below which a micro-op runs all its
/// shards inline on the issuing thread: the rendezvous costs more than the
/// kernel. The shard decomposition and combination order are identical
/// either way, so the choice never affects results.
const MIN_PARALLEL_ITEMS: usize = 2048;

/// Locks a mutex, neutralizing poisoning: pool state is plain data that
/// stays valid wherever a panic interrupted an update, and the stress
/// suite requires that a panicking shard never wedges later solves.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A shard's type-erased output, shipped back to the issuing thread.
type ShardOut = Box<dyn Any + Send>;
/// One micro-op's shard job: maps a shard index to that shard's partial.
type ShardJob = Arc<dyn Fn(usize) -> ShardOut + Send + Sync>;

/// The job slot workers watch: a published epoch plus the job to run.
struct JobSlot {
    epoch: u64,
    job: Option<ShardJob>,
}

/// Where workers post their shard results for the current epoch.
struct DoneBoard {
    epoch: u64,
    remaining: usize,
    results: Vec<Option<std::thread::Result<ShardOut>>>,
}

struct PoolShared {
    slot: Mutex<JobSlot>,
    start: Condvar,
    board: Mutex<DoneBoard>,
    finished: Condvar,
    shutdown: AtomicBool,
}

/// The persistent worker pool: spawned once, joined on drop.
struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Total shard count (worker count + 1 for the issuing thread).
    shards: usize,
}

impl WorkerPool {
    fn new(threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be non-zero");
        let workers = threads - 1;
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(JobSlot {
                epoch: 0,
                job: None,
            }),
            start: Condvar::new(),
            board: Mutex::new(DoneBoard {
                epoch: 0,
                remaining: 0,
                results: (0..workers).map(|_| None).collect(),
            }),
            finished: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ppa-shard-{}", id + 1))
                    .spawn(move || worker_loop(shared, id))
                    .expect("spawn shard worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            shards: workers + 1,
        }
    }

    /// Runs `job(shard)` for every shard in `0..self.shards`, shard 0 on
    /// the calling thread, and returns the outputs in ascending shard
    /// order. With `parallel == false` (or no workers) every shard runs
    /// inline in the same order — same decomposition, same combination.
    fn run(&self, parallel: bool, job: &ShardJob) -> Vec<ShardOut> {
        if !parallel || self.handles.is_empty() {
            return (0..self.shards).map(|s| job(s)).collect();
        }
        let workers = self.handles.len();
        let epoch = lock(&self.shared.slot).epoch + 1;
        {
            let mut board = lock(&self.shared.board);
            board.epoch = epoch;
            board.remaining = workers;
            for r in board.results.iter_mut() {
                *r = None;
            }
        }
        {
            let mut slot = lock(&self.shared.slot);
            slot.epoch = epoch;
            slot.job = Some(Arc::clone(job));
            self.shared.start.notify_all();
        }
        let first = catch_unwind(AssertUnwindSafe(|| job(0)));
        let worker_outs: Vec<_> = {
            let mut board = lock(&self.shared.board);
            while board.remaining > 0 {
                board = self
                    .shared
                    .finished
                    .wait(board)
                    .unwrap_or_else(|e| e.into_inner());
            }
            board
                .results
                .iter_mut()
                .map(|r| r.take().expect("every worker posts its shard"))
                .collect()
        };
        // Drop the published Arc so shard inputs are released promptly.
        lock(&self.shared.slot).job = None;
        let mut outs = Vec::with_capacity(self.shards);
        // A panicking shard propagates deterministically: shard 0 first,
        // then workers in shard order (all results are already in).
        match first {
            Ok(v) => outs.push(v),
            Err(payload) => resume_unwind(payload),
        }
        for r in worker_outs {
            match r {
                Ok(v) => outs.push(v),
                Err(payload) => resume_unwind(payload),
            }
        }
        outs
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            // Flag + notify under the slot lock so no worker can check the
            // flag and park between the two.
            let _slot = lock(&self.shared.slot);
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>, id: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = lock(&shared.slot);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if slot.epoch != seen {
                    seen = slot.epoch;
                    break Arc::clone(slot.job.as_ref().expect("published epoch carries a job"));
                }
                slot = shared.start.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        };
        // This worker owns shard `id + 1`; shard 0 runs on the issuer.
        let out = catch_unwind(AssertUnwindSafe(|| job(id + 1)));
        drop(job);
        let mut board = lock(&shared.board);
        if board.epoch == seen {
            board.results[id] = Some(out);
            board.remaining -= 1;
            if board.remaining == 0 {
                shared.finished.notify_all();
            }
        }
    }
}

/// Splits `len` items into `shards` contiguous ranges (the trailing ones
/// may be empty). The decomposition is a pure function of `(len, shards)`
/// — for word shards, `len` is itself the pure width-dependent
/// [`words_for`] count — which the determinism argument leans on.
fn shard_ranges(len: usize, shards: usize) -> Vec<(usize, usize)> {
    let chunk = len.div_ceil(shards.max(1)).max(1);
    (0..shards)
        .map(|s| ((s * chunk).min(len), ((s + 1) * chunk).min(len)))
        .collect()
}

/// A boolean mask plane packed `W::BITS` PEs per machine word, held behind
/// an `Arc` so shard workers can read it without copying.
///
/// Masks are immutable once produced (every mask micro-op builds a fresh
/// one), so clones share the buffer. When the last handle drops, the
/// buffer returns to the backend's word arena.
pub struct SharedMask<W: Word = W64> {
    dim: Dim,
    words: Option<Arc<Vec<W>>>,
    arena: Arc<Mutex<WordPool<W>>>,
}

impl<W: Word> SharedMask<W> {
    fn words(&self) -> &Arc<Vec<W>> {
        self.words.as_ref().expect("mask words live until drop")
    }

    /// Whether the bit for flat PE index `i` is set.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        self.words()[i / W::BITS].bit(i % W::BITS)
    }

    /// Number of set PEs (a popcount per word).
    pub fn count(&self) -> usize {
        self.words().iter().map(|w| w.count_ones()).sum()
    }

    /// The mask geometry.
    pub fn dim(&self) -> Dim {
        self.dim
    }
}

impl<W: Word> Drop for SharedMask<W> {
    fn drop(&mut self) {
        if let Some(arc) = self.words.take() {
            if let Ok(buf) = Arc::try_unwrap(arc) {
                lock(&self.arena).put(buf);
            }
        }
    }
}

impl<W: Word> Clone for SharedMask<W> {
    fn clone(&self) -> Self {
        SharedMask {
            dim: self.dim,
            words: Some(Arc::clone(self.words())),
            arena: Arc::clone(&self.arena),
        }
    }
}

impl<W: Word> PartialEq for SharedMask<W> {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && *self.words() == *other.words()
    }
}

impl<W: Word> std::fmt::Debug for SharedMask<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMask")
            .field("dim", &self.dim)
            .field("word_bits", &W::BITS)
            .field("set", &self.count())
            .finish()
    }
}

/// A cached cluster plan, `Arc`-shared so gather shards can read the key
/// table directly.
#[derive(Debug, Clone)]
struct PlanEntry<W> {
    dir: Direction,
    fp: u64,
    words: Vec<W>,
    plan: Arc<BusPlan>,
}

/// The threaded bit-plane execution backend (see module docs), generic
/// over the machine word `W`.
pub struct ThreadedBackend<W: Word = W64> {
    pool: Arc<WorkerPool>,
    arena: Arc<Mutex<WordPool<W>>>,
    plans: Vec<PlanEntry<W>>,
    plan_hits: u64,
    plan_misses: u64,
    min_parallel: usize,
    scratch: Vec<W>,
}

impl<W: Word> ThreadedBackend<W> {
    /// A fresh backend whose pool spans `threads` shards (`threads - 1`
    /// spawned workers plus the issuing thread).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        ThreadedBackend::with_min_parallel(threads, MIN_PARALLEL_ITEMS)
    }

    /// [`ThreadedBackend::new`] with an explicit inline/parallel cutoff in
    /// work items; `0` forces every micro-op through the rendezvous (the
    /// conformance suites use this to exercise the pool at small `n`).
    pub fn with_min_parallel(threads: usize, min_parallel: usize) -> Self {
        ThreadedBackend {
            pool: Arc::new(WorkerPool::new(threads)),
            arena: Arc::new(Mutex::new(WordPool::default())),
            plans: Vec::new(),
            plan_hits: 0,
            plan_misses: 0,
            min_parallel,
            scratch: Vec::new(),
        }
    }

    /// Total shard count (spawned workers + the issuing thread).
    pub fn threads(&self) -> usize {
        self.pool.shards
    }

    fn parallel_for(&self, items: usize) -> bool {
        items >= self.min_parallel
    }

    /// Wraps freshly computed words as a mask.
    fn mask_of(&self, dim: Dim, words: Vec<W>) -> SharedMask<W> {
        SharedMask {
            dim,
            words: Some(Arc::new(words)),
            arena: Arc::clone(&self.arena),
        }
    }

    fn alloc_words(&self, dim: Dim) -> Vec<W> {
        lock(&self.arena).get(words_for::<W>(dim))
    }

    /// Runs a word-producing shard job over the word rows of `dim` and
    /// assembles the partials, in shard order, into one arena buffer.
    ///
    /// `make` receives the shard's word range and builds its partial; it
    /// must be `'static` (capture `Arc` handles, not borrows).
    fn run_word_shards(
        &mut self,
        dim: Dim,
        items: usize,
        make: impl Fn(usize, usize) -> Vec<W> + Send + Sync + 'static,
    ) -> SharedMask<W> {
        let nwords = words_for::<W>(dim);
        let ranges = Arc::new(shard_ranges(nwords, self.pool.shards));
        let job_ranges = Arc::clone(&ranges);
        let job: ShardJob = Arc::new(move |s| {
            let (w0, w1) = job_ranges[s];
            Box::new(make(w0, w1)) as ShardOut
        });
        let outs = self.pool.run(self.parallel_for(items), &job);
        let mut words = self.alloc_words(dim);
        for (s, out) in outs.into_iter().enumerate() {
            let part = *out.downcast::<Vec<W>>().expect("word shard output");
            let (w0, w1) = ranges[s];
            words[w0..w1].copy_from_slice(&part);
        }
        self.mask_of(dim, words)
    }

    /// The cached cluster plan for `open` given as packed words.
    fn plan_for_words(&mut self, dim: Dim, dir: Direction, words: &[W]) -> Arc<BusPlan> {
        let fp = fingerprint(dir, words);
        if let Some(pos) = self
            .plans
            .iter()
            .position(|e| e.dir == dir && e.fp == fp && e.words == *words)
        {
            self.plan_hits += 1;
            let entry = self.plans.remove(pos);
            let plan = Arc::clone(&entry.plan);
            self.plans.push(entry); // LRU: most recent at the back
            return plan;
        }
        self.plan_misses += 1;
        let plan = Arc::new(compute_plan(dim, dir, words));
        if self.plans.len() >= PLAN_CACHE_CAP {
            self.plans.remove(0);
        }
        self.plans.push(PlanEntry {
            dir,
            fp,
            words: words.to_vec(),
            plan: Arc::clone(&plan),
        });
        plan
    }

    /// The cached cluster plan for `open` given as a plane.
    fn plan_for_plane(&mut self, dim: Dim, dir: Direction, open: &Plane<bool>) -> Arc<BusPlan> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.resize(words_for::<W>(dim), W::zero());
        pack_range(open.as_slice(), 0, &mut scratch);
        let plan = self.plan_for_words(dim, dir, &scratch);
        self.scratch = scratch;
        plan
    }

    /// The sharded cluster-head gather behind both broadcast forms.
    fn gather<T: Copy + Send + Sync + 'static>(
        &mut self,
        dim: Dim,
        src: &Plane<T>,
        plan: &Arc<BusPlan>,
    ) -> Plane<T> {
        let len = dim.len();
        let ranges = Arc::new(shard_ranges(len, self.pool.shards));
        let s = src.shared();
        let plan = Arc::clone(plan);
        let job_ranges = Arc::clone(&ranges);
        let job: ShardJob = Arc::new(move |shard| {
            let (r0, r1) = job_ranges[shard];
            let part: Vec<T> = (r0..r1).map(|i| s[plan.keys[i] as usize]).collect();
            Box::new(part) as ShardOut
        });
        let outs = self.pool.run(self.parallel_for(len), &job);
        let mut data: Vec<T> = Vec::with_capacity(len);
        for out in outs {
            data.extend(*out.downcast::<Vec<T>>().expect("gather shard output"));
        }
        Plane::from_vec(dim, data)
    }

    fn check_dim<T>(dim: Dim, p: &Plane<T>) -> Result<(), MachineError> {
        if p.dim() == dim {
            Ok(())
        } else {
            Err(MachineError::DimMismatch {
                expected: dim,
                found: p.dim(),
            })
        }
    }
}

impl<W: Word> Clone for ThreadedBackend<W> {
    /// Clones share the worker pool and the word arena (as packed clones
    /// share their arena); the plan cache is copied.
    fn clone(&self) -> Self {
        ThreadedBackend {
            pool: Arc::clone(&self.pool),
            arena: Arc::clone(&self.arena),
            plans: self.plans.clone(),
            plan_hits: self.plan_hits,
            plan_misses: self.plan_misses,
            min_parallel: self.min_parallel,
            scratch: Vec::new(),
        }
    }
}

impl<W: Word> std::fmt::Debug for ThreadedBackend<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedBackend")
            .field("threads", &self.pool.shards)
            .field("word_bits", &W::BITS)
            .field("plans", &self.plans.len())
            .field("min_parallel", &self.min_parallel)
            .finish()
    }
}

impl<W: Word> Executor for ThreadedBackend<W> {
    type Mask = SharedMask<W>;

    const NAME: &'static str = W::THREADED_NAME;

    fn mask_from_plane(&mut self, dim: Dim, plane: &Plane<bool>) -> SharedMask<W> {
        let src = plane.shared();
        self.run_word_shards(dim, dim.len(), move |w0, w1| {
            let mut out = vec![W::zero(); w1 - w0];
            pack_range(&src, w0, &mut out);
            out
        })
    }

    fn mask_to_plane(&self, dim: Dim, mask: &SharedMask<W>) -> Plane<bool> {
        Plane::from_vec(dim, (0..dim.len()).map(|i| mask.bit(i)).collect())
    }

    fn mask_filled(&mut self, dim: Dim, value: bool) -> SharedMask<W> {
        let mut words = self.alloc_words(dim);
        if value {
            words.fill(W::ones());
            let rem = dim.len() % W::BITS;
            if rem != 0 {
                if let Some(last) = words.last_mut() {
                    *last &= W::low_mask(rem);
                }
            }
        }
        self.mask_of(dim, words)
    }

    fn mask_count(&self, _dim: Dim, mask: &SharedMask<W>) -> usize {
        mask.count()
    }

    fn bit_plane(&mut self, _mode: ExecMode, dim: Dim, src: &Plane<i64>, j: u32) -> SharedMask<W> {
        let s = src.shared();
        self.run_word_shards(dim, dim.len(), move |w0, w1| {
            let mut out = vec![W::zero(); w1 - w0];
            bit_plane_range(&s, j, w0, &mut out);
            out
        })
    }

    fn vote(
        &mut self,
        _mode: ExecMode,
        dim: Dim,
        enable: &SharedMask<W>,
        bit: &SharedMask<W>,
        keep_low: bool,
    ) -> SharedMask<W> {
        let (e, b) = (Arc::clone(enable.words()), Arc::clone(bit.words()));
        let items = words_for::<W>(dim);
        self.run_word_shards(dim, items, move |w0, w1| {
            let mut out = vec![W::zero(); w1 - w0];
            vote_range(&e, &b, keep_low, w0, &mut out);
            out
        })
    }

    fn knockout(
        &mut self,
        _mode: ExecMode,
        dim: Dim,
        enable: &SharedMask<W>,
        present: &SharedMask<W>,
        bit: &SharedMask<W>,
        keep_low: bool,
    ) -> SharedMask<W> {
        let (e, p, b) = (
            Arc::clone(enable.words()),
            Arc::clone(present.words()),
            Arc::clone(bit.words()),
        );
        let items = words_for::<W>(dim);
        self.run_word_shards(dim, items, move |w0, w1| {
            let mut out = vec![W::zero(); w1 - w0];
            knockout_range(&e, &p, &b, keep_low, w0, &mut out);
            out
        })
    }

    fn mask_bus_or(
        &mut self,
        _mode: ExecMode,
        dim: Dim,
        values: &SharedMask<W>,
        dir: Direction,
        open: &SharedMask<W>,
    ) -> Result<SharedMask<W>, MachineError> {
        let plan = self.plan_for_words(dim, dir, open.words());
        let nwords = words_for::<W>(dim);
        let vals = Arc::clone(values.words());
        let parallel = self.parallel_for(nwords);
        let shards = self.pool.shards;
        // Pass 1 — shard partial accumulators, OR-merged in shard order
        // (the wired OR is a bitwise OR, so the merge order is immaterial
        // to the bits and fixed for determinism's sake anyway).
        let mut acc = lock(&self.arena).get(nwords);
        if !plan.segs.is_empty() {
            let seg_ranges = Arc::new(shard_ranges(plan.segs.len(), shards));
            let p1 = Arc::clone(&plan);
            let v1 = Arc::clone(&vals);
            let r1 = Arc::clone(&seg_ranges);
            let job: ShardJob = Arc::new(move |s| {
                let (s0, s1) = r1[s];
                let mut part = vec![W::zero(); v1.len()];
                bus_or_deposit_segs(&v1, &p1.segs[s0..s1], &mut part);
                Box::new(part) as ShardOut
            });
            for out in self.pool.run(parallel, &job) {
                let part = *out.downcast::<Vec<W>>().expect("acc shard output");
                for (a, w) in acc.iter_mut().zip(part) {
                    *a |= w;
                }
            }
            // Pass 2 — shard partial outputs the same way: a segment may
            // share boundary words with its neighbours, so each shard
            // fills a zeroed buffer and the issuer ORs them in order.
            let p2 = Arc::clone(&plan);
            let a2 = Arc::new(std::mem::take(&mut acc));
            let a_job = Arc::clone(&a2);
            let r2 = Arc::clone(&seg_ranges);
            let job: ShardJob = Arc::new(move |s| {
                let (s0, s1) = r2[s];
                let mut part = vec![W::zero(); p2.keys.len().div_ceil(W::BITS)];
                bus_or_fill_segs(&a_job, &p2.segs[s0..s1], &mut part);
                Box::new(part) as ShardOut
            });
            let outs = self.pool.run(parallel, &job);
            drop(job);
            let mut words = self.alloc_words(dim);
            for out in outs {
                let part = *out.downcast::<Vec<W>>().expect("fill shard output");
                for (w, p) in words.iter_mut().zip(part) {
                    *w |= p;
                }
            }
            if let Ok(buf) = Arc::try_unwrap(a2) {
                lock(&self.arena).put(buf);
            }
            return Ok(self.mask_of(dim, words));
        }
        let word_ranges = Arc::new(shard_ranges(nwords, shards));
        let p1 = Arc::clone(&plan);
        let v1 = Arc::clone(&vals);
        let r1 = Arc::clone(&word_ranges);
        let job: ShardJob = Arc::new(move |s| {
            let (w0, w1) = r1[s];
            let mut part = vec![W::zero(); v1.len()];
            bus_or_deposit_keys(&v1, &p1.keys, w0, w1 - w0, &mut part);
            Box::new(part) as ShardOut
        });
        for out in self.pool.run(parallel, &job) {
            let part = *out.downcast::<Vec<W>>().expect("acc shard output");
            for (a, w) in acc.iter_mut().zip(part) {
                *a |= w;
            }
        }
        // Pass 2 — each output word depends only on `acc`, so shards write
        // disjoint ranges concatenated in shard order.
        let p2 = Arc::clone(&plan);
        let a2 = Arc::new(std::mem::take(&mut acc));
        let len = dim.len();
        let a_job = Arc::clone(&a2);
        let r2 = Arc::clone(&word_ranges);
        let job: ShardJob = Arc::new(move |s| {
            let (w0, w1) = r2[s];
            let mut part = vec![W::zero(); w1 - w0];
            bus_or_read_keys(&a_job, &p2.keys, len, w0, &mut part);
            Box::new(part) as ShardOut
        });
        let outs = self.pool.run(parallel, &job);
        drop(job);
        let mut words = self.alloc_words(dim);
        for (s, out) in outs.into_iter().enumerate() {
            let part = *out.downcast::<Vec<W>>().expect("read shard output");
            let (w0, w1) = word_ranges[s];
            words[w0..w1].copy_from_slice(&part);
        }
        if let Ok(buf) = Arc::try_unwrap(a2) {
            lock(&self.arena).put(buf);
        }
        Ok(self.mask_of(dim, words))
    }

    fn broadcast<T: Copy + Send + Sync + 'static>(
        &mut self,
        _mode: ExecMode,
        dim: Dim,
        src: &Plane<T>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<T>, MachineError> {
        Self::check_dim(dim, src)?;
        Self::check_dim(dim, open)?;
        let plan = self.plan_for_plane(dim, dir, open);
        if !plan.driverless.is_empty() {
            return Err(MachineError::BusFault {
                axis: dir.axis(),
                lines: plan.driverless.clone(),
            });
        }
        Ok(self.gather(dim, src, &plan))
    }

    fn broadcast_masked<T: Copy + Send + Sync + 'static>(
        &mut self,
        _mode: ExecMode,
        dim: Dim,
        src: &Plane<T>,
        dir: Direction,
        open: &SharedMask<W>,
    ) -> Result<Plane<T>, MachineError> {
        Self::check_dim(dim, src)?;
        let plan = self.plan_for_words(dim, dir, open.words());
        if !plan.driverless.is_empty() {
            return Err(MachineError::BusFault {
                axis: dir.axis(),
                lines: plan.driverless.clone(),
            });
        }
        Ok(self.gather(dim, src, &plan))
    }

    fn bus_or(
        &mut self,
        _mode: ExecMode,
        dim: Dim,
        values: &Plane<bool>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<bool>, MachineError> {
        Self::check_dim(dim, values)?;
        Self::check_dim(dim, open)?;
        // The plane-form wired OR sits outside the packed scan loop (it
        // appears in setup code, not per-bit passes), so it reuses the
        // plan cache but runs its two passes on the issuing thread.
        let plan = self.plan_for_plane(dim, dir, open);
        let v = values.as_slice();
        let keys = &plan.keys;
        let mut acc = vec![false; dim.len()];
        for (i, &set) in v.iter().enumerate() {
            if set {
                acc[keys[i] as usize] = true;
            }
        }
        let data = (0..dim.len()).map(|i| acc[keys[i] as usize]).collect();
        Ok(Plane::from_vec(dim, data))
    }

    fn stats(&self) -> ExecStats {
        let arena = lock(&self.arena);
        ExecStats {
            plan_hits: self.plan_hits,
            plan_misses: self.plan_misses,
            arena_fresh: arena.fresh,
            arena_reused: arena.reused,
        }
    }

    fn reset_stats(&mut self) {
        self.plan_hits = 0;
        self.plan_misses = 0;
        let mut arena = lock(&self.arena);
        arena.fresh = 0;
        arena.reused = 0;
    }
}

impl Machine<ThreadedBackend> {
    /// Creates a `rows x cols` machine on the threaded backend with a
    /// `threads`-shard pool (64-bit words).
    pub fn new_threaded(rows: usize, cols: usize, threads: usize) -> Self {
        Machine::new_threaded_wide(rows, cols, threads)
    }

    /// Creates a square `n x n` machine on the threaded backend (64-bit
    /// words).
    pub fn threaded_square(n: usize, threads: usize) -> Self {
        Machine::new_threaded(n, n, threads)
    }
}

impl<W: Word> Machine<ThreadedBackend<W>> {
    /// Creates a `rows x cols` machine on the threaded backend with a
    /// `threads`-shard pool and machine word `W`.
    pub fn new_threaded_wide(rows: usize, cols: usize, threads: usize) -> Self {
        Machine::with_backend(
            Dim::new(rows, cols),
            ExecMode::Sequential,
            ThreadedBackend::new(threads),
        )
    }

    /// Creates a square `n x n` machine on the threaded backend with
    /// machine word `W`.
    pub fn threaded_square_wide(n: usize, threads: usize) -> Self {
        Machine::new_threaded_wide(n, n, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ScalarBackend;
    use crate::word::W256;

    fn plane_of(dim: Dim, f: impl Fn(usize) -> bool) -> Plane<bool> {
        Plane::from_vec(dim, (0..dim.len()).map(f).collect())
    }

    /// A backend that dispatches every op through the pool, regardless of
    /// size — the unit tests must exercise the rendezvous, not the inline
    /// fallback.
    fn forced(threads: usize) -> ThreadedBackend {
        ThreadedBackend::with_min_parallel(threads, 0)
    }

    #[test]
    fn pack_roundtrip_across_thread_counts() {
        let dim = Dim::new(5, 13); // 65 PEs: crosses a word boundary
        let plane = plane_of(dim, |i| i % 3 == 0 || i == 64);
        for threads in [1, 2, 3, 8] {
            let mut be = forced(threads);
            let mask = be.mask_from_plane(dim, &plane);
            assert_eq!(mask.count(), plane.count_true(), "threads={threads}");
            assert_eq!(be.mask_to_plane(dim, &mask), plane, "threads={threads}");
        }
    }

    #[test]
    fn pack_roundtrip_across_thread_counts_w256() {
        // 300 PEs: two 256-bit words, the second only partially live, so
        // shard seams and the trailing trim both cross limb boundaries.
        let dim = Dim::new(15, 20);
        let plane = plane_of(dim, |i| i % 3 == 0 || i == 255 || i == 256);
        for threads in [1, 2, 3, 8] {
            let mut be = ThreadedBackend::<W256>::with_min_parallel(threads, 0);
            let mask = be.mask_from_plane(dim, &plane);
            assert_eq!(mask.count(), plane.count_true(), "threads={threads}");
            assert_eq!(be.mask_to_plane(dim, &mask), plane, "threads={threads}");
        }
    }

    #[test]
    fn wired_or_matches_scalar_for_every_thread_count() {
        let dim = Dim::square(9);
        let mut scalar = ScalarBackend;
        for threads in [1, 2, 3, 8] {
            let mut be = forced(threads);
            for (seed, dir) in [(3usize, Direction::East), (7, Direction::South)] {
                let open = plane_of(dim, |i| (i * seed + 1) % 4 == 0);
                let vals = plane_of(dim, |i| (i * seed) % 5 == 0);
                let om = be.mask_from_plane(dim, &open);
                let vm = be.mask_from_plane(dim, &vals);
                let got = be
                    .mask_bus_or(ExecMode::Sequential, dim, &vm, dir, &om)
                    .unwrap();
                let want = scalar
                    .mask_bus_or(ExecMode::Sequential, dim, &vals, dir, &open)
                    .unwrap();
                assert_eq!(
                    be.mask_to_plane(dim, &got),
                    want,
                    "threads={threads} dir={dir:?}"
                );
            }
        }
    }

    #[test]
    fn wired_or_matches_scalar_for_every_thread_count_w256() {
        // 441 PEs: both the segment fast path (East) and the key walk
        // (South) straddle the 256-bit word boundary mid-row.
        let dim = Dim::square(21);
        let mut scalar = ScalarBackend;
        for threads in [1, 2, 3, 8] {
            let mut be = ThreadedBackend::<W256>::with_min_parallel(threads, 0);
            for (seed, dir) in [(3usize, Direction::East), (7, Direction::South)] {
                let open = plane_of(dim, |i| (i * seed + 1) % 4 == 0);
                let vals = plane_of(dim, |i| (i * seed) % 5 == 0);
                let om = be.mask_from_plane(dim, &open);
                let vm = be.mask_from_plane(dim, &vals);
                let got = be
                    .mask_bus_or(ExecMode::Sequential, dim, &vm, dir, &om)
                    .unwrap();
                let want = scalar
                    .mask_bus_or(ExecMode::Sequential, dim, &vals, dir, &open)
                    .unwrap();
                assert_eq!(
                    be.mask_to_plane(dim, &got),
                    want,
                    "threads={threads} dir={dir:?}"
                );
            }
        }
    }

    #[test]
    fn broadcast_gather_is_shard_order_independent() {
        let dim = Dim::new(6, 11); // 66 PEs, ragged against both 8 and 64
        let open = plane_of(dim, |i| i % 11 == 0);
        let src = Plane::from_vec(dim, (0..dim.len() as i64).collect());
        let mut reference = ScalarBackend;
        let want = reference
            .broadcast(ExecMode::Sequential, dim, &src, Direction::East, &open)
            .unwrap();
        for threads in [1, 2, 3, 8] {
            let mut be = forced(threads);
            let got = be
                .broadcast(ExecMode::Sequential, dim, &src, Direction::East, &open)
                .unwrap();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn driverless_broadcast_faults_like_scalar() {
        let dim = Dim::square(4);
        let mut be = forced(3);
        let open = plane_of(dim, |_| false);
        let src = Plane::filled(dim, 1i64);
        match be.broadcast(ExecMode::Sequential, dim, &src, Direction::East, &open) {
            Err(MachineError::BusFault { lines, .. }) => assert_eq!(lines, vec![0, 1, 2, 3]),
            other => panic!("expected BusFault, got {other:?}"),
        }
    }

    #[test]
    fn arena_recycles_mask_buffers_through_the_arc() {
        let dim = Dim::square(16);
        let mut be = forced(2);
        for _ in 0..10 {
            let m = be.mask_filled(dim, true);
            drop(m);
        }
        let stats = be.stats();
        assert_eq!(stats.arena_fresh, 1, "one physical buffer serves the loop");
        assert_eq!(stats.arena_reused, 9);
    }

    #[test]
    fn plan_cache_hits_on_repeated_configurations() {
        let dim = Dim::square(8);
        let mut be = forced(2);
        let open = plane_of(dim, |i| i % 8 == 0);
        let src = Plane::from_vec(dim, (0..dim.len() as i64).collect());
        for _ in 0..5 {
            be.broadcast(ExecMode::Sequential, dim, &src, Direction::East, &open)
                .unwrap();
        }
        let stats = be.stats();
        assert_eq!(stats.plan_misses, 1);
        assert_eq!(stats.plan_hits, 4);
    }

    #[test]
    fn pool_survives_a_panicking_shard() {
        let pool = WorkerPool::new(3);
        let bomb: ShardJob = Arc::new(|s| {
            if s == 1 {
                panic!("shard bomb");
            }
            Box::new(s) as ShardOut
        });
        let blast = catch_unwind(AssertUnwindSafe(|| pool.run(true, &bomb)));
        assert!(blast.is_err(), "the shard panic propagates to the issuer");
        // The pool is still serviceable afterwards: no wedged worker, no
        // poisoned rendezvous.
        let fine: ShardJob = Arc::new(|s| Box::new(s * 10) as ShardOut);
        let outs = pool.run(true, &fine);
        let got: Vec<usize> = outs
            .into_iter()
            .map(|o| *o.downcast::<usize>().unwrap())
            .collect();
        assert_eq!(got, vec![0, 10, 20]);
    }

    #[test]
    fn shard_ranges_cover_exactly() {
        for len in [0, 1, 7, 64, 65, 4096] {
            for shards in [1, 2, 3, 8] {
                let ranges = shard_ranges(len, shards);
                assert_eq!(ranges.len(), shards);
                let mut at = 0;
                for &(a, b) in &ranges {
                    assert_eq!(a, at.min(len));
                    assert!(b >= a);
                    at = b;
                }
                assert_eq!(ranges.last().unwrap().1, len);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_threads_rejected() {
        let _ = ThreadedBackend::<W64>::new(0);
    }
}
