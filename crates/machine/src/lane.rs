//! Lane geometry for batched solving.
//!
//! A lane-batched machine packs `L` independent `n x n` problems side by
//! side into one `n x (n * L)` mesh: lane `l` owns the column window
//! `l*n .. (l+1)*n`. Column buses never cross a lane boundary (each
//! column belongs to exactly one lane), and west/east bus operations
//! whose Open heads sit at per-lane columns partition at lane
//! boundaries because a cluster runs from its head up to the *next*
//! head — with one head per lane-row segment, no cluster can leak into
//! a neighbour lane.
//!
//! [`LaneLayout`] is the pure geometry: it owns no storage and issues
//! no instructions, it just maps between per-lane `n x n` coordinates
//! and the composite plane.

use crate::geometry::{Coord, Dim};
use crate::plane::Plane;
use std::ops::Range;

/// Geometry of a lane-batched `n x (n * lanes)` machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneLayout {
    n: usize,
    lanes: usize,
}

impl LaneLayout {
    /// A layout of `lanes` independent `n x n` problems.
    ///
    /// # Panics
    /// If `n` or `lanes` is zero.
    pub fn new(n: usize, lanes: usize) -> Self {
        assert!(n > 0, "lane size must be positive");
        assert!(lanes > 0, "lane count must be positive");
        LaneLayout { n, lanes }
    }

    /// Per-lane problem size (rows of the machine, columns per lane).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of lanes packed side by side.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Dimensions of the composite machine: `n` rows, `n * lanes` columns.
    pub fn dim(&self) -> Dim {
        Dim::new(self.n, self.n * self.lanes)
    }

    /// The composite-plane column window owned by `lane`.
    ///
    /// # Panics
    /// If `lane` is out of range.
    pub fn col_range(&self, lane: usize) -> Range<usize> {
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        lane * self.n..(lane + 1) * self.n
    }

    /// The physical column band of `lane` — the same window as
    /// [`LaneLayout::col_range`], named for the fault-mapping direction:
    /// a redundant vote that flags lane `l` indicts exactly the switch
    /// boxes whose column lies in `band(l)`, which is what targeted BIST
    /// localization (see `FaultMap::faults_in_cols` in this crate's
    /// `faults` module) takes as its search window.
    ///
    /// # Panics
    /// If `lane` is out of range.
    pub fn band(&self, lane: usize) -> Range<usize> {
        self.col_range(lane)
    }

    /// Which lane a composite column belongs to.
    pub fn lane_of_col(&self, col: usize) -> usize {
        col / self.n
    }

    /// Maps a composite coordinate to `(lane, row, col-within-lane)`.
    pub fn split(&self, c: Coord) -> (usize, usize, usize) {
        (c.col / self.n, c.row, c.col % self.n)
    }

    /// Builds a composite plane from a per-lane generator
    /// `f(lane, row, col)` where `row`/`col` are lane-local.
    pub fn compose<T>(&self, mut f: impl FnMut(usize, usize, usize) -> T) -> Plane<T> {
        let n = self.n;
        Plane::from_fn(self.dim(), |c| f(c.col / n, c.row, c.col % n))
    }

    /// Builds the composite plane's row-major backing vector from a
    /// per-lane generator — same values as [`LaneLayout::compose`], for
    /// callers that feed `Parallel::from_vec`-style constructors.
    pub fn compose_vec<T>(&self, mut f: impl FnMut(usize, usize, usize) -> T) -> Vec<T> {
        let n = self.n;
        let dim = self.dim();
        let mut out = Vec::with_capacity(dim.len());
        for row in 0..dim.rows {
            for col in 0..dim.cols {
                out.push(f(col / n, row, col % n));
            }
        }
        out
    }

    /// Extracts one lane's `n x n` sub-plane as a row-major vector.
    pub fn extract<T: Clone>(&self, plane: &Plane<T>, lane: usize) -> Vec<T> {
        assert_eq!(plane.dim(), self.dim(), "plane does not match this layout");
        let cols = self.col_range(lane);
        let mut out = Vec::with_capacity(self.n * self.n);
        for row in 0..self.n {
            out.extend_from_slice(&plane.row(row)[cols.clone()]);
        }
        out
    }

    /// Reads one lane-local row (`n` values) of a composite plane.
    pub fn lane_row<T: Clone>(&self, plane: &Plane<T>, lane: usize, row: usize) -> Vec<T> {
        assert_eq!(plane.dim(), self.dim(), "plane does not match this layout");
        plane.row(row)[self.col_range(lane)].to_vec()
    }

    /// Reads one lane-local cell of a composite plane.
    pub fn lane_at<'a, T>(
        &self,
        plane: &'a Plane<T>,
        lane: usize,
        row: usize,
        col: usize,
    ) -> &'a T {
        assert_eq!(plane.dim(), self.dim(), "plane does not match this layout");
        assert!(col < self.n, "lane-local column {col} out of range");
        plane.at(row, lane * self.n + col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_round_trips() {
        let l = LaneLayout::new(4, 3);
        assert_eq!(l.dim(), Dim::new(4, 12));
        assert_eq!(l.col_range(1), 4..8);
        assert_eq!(l.lane_of_col(11), 2);
        assert_eq!(l.split(Coord { row: 2, col: 9 }), (2, 2, 1));
    }

    #[test]
    fn band_is_the_lane_column_window() {
        let l = LaneLayout::new(5, 4);
        for lane in 0..4 {
            assert_eq!(l.band(lane), l.col_range(lane));
            // Every column of the band maps back to its lane.
            for col in l.band(lane) {
                assert_eq!(l.lane_of_col(col), lane);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn band_rejects_out_of_range_lanes() {
        let _ = LaneLayout::new(4, 3).band(3);
    }

    #[test]
    fn compose_then_extract_is_identity() {
        let l = LaneLayout::new(3, 4);
        let plane = l.compose(|lane, r, c| (lane * 100 + r * 10 + c) as i64);
        for lane in 0..4 {
            let sub = l.extract(&plane, lane);
            for r in 0..3 {
                for c in 0..3 {
                    assert_eq!(sub[r * 3 + c], (lane * 100 + r * 10 + c) as i64);
                    assert_eq!(*l.lane_at(&plane, lane, r, c), sub[r * 3 + c]);
                }
            }
            assert_eq!(l.lane_row(&plane, lane, 1), &sub[3..6]);
        }
    }

    #[test]
    fn compose_vec_matches_compose() {
        let l = LaneLayout::new(2, 5);
        let a = l.compose(|lane, r, c| lane * 7 + r * 3 + c);
        let b = l.compose_vec(|lane, r, c| lane * 7 + r * 3 + c);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
