//! Reconfigurable bus semantics: cluster resolution, broadcast, wired-OR.
//!
//! For a given data-movement direction the relevant bus system is a set of
//! independent *lines* (rows for East/West, columns for North/South). The
//! Open switches on a line cut it into *clusters*: each cluster consists of
//! an Open node (its **head**, which drives the sub-bus) followed by the
//! Short nodes downstream of it, in cyclic order, up to the next Open node.
//!
//! * [`broadcast`] delivers, to every node, the `src` value of its cluster
//!   head — the paper's `broadcast(src, dir, L)` primitive. A line with no
//!   Open node has no driver and is reported as a fault.
//! * [`bus_or`] delivers, to every node, the logical OR of `values` over
//!   all nodes of its cluster — the wired-OR used inside `min()`
//!   (statement 9 of the paper's routine). A line with no Open node behaves
//!   as a single cluster spanning the whole line.
//! * [`shift`] is the nearest-neighbour transfer `shift(src, dir)`.
//!
//! These functions are *uncosted* mechanics; issue them through
//! [`Machine`](crate::Machine) to have the controller count steps.

use crate::engine::{self, ExecMode};
use crate::error::MachineError;
use crate::geometry::{Dim, Direction};
use crate::isa::Fill;
use crate::plane::Plane;

/// Per-node cluster heads for direction `dir` under the Open mask `open`.
///
/// Returns a vector mapping every flat PE index to the flat index of the
/// Open node driving its sub-bus. Lines without any Open node are returned
/// in the error variant (sorted ascending) since they have no driver.
pub fn cluster_heads(
    dim: Dim,
    dir: Direction,
    open: &Plane<bool>,
) -> Result<Vec<usize>, Vec<usize>> {
    let axis = dir.axis();
    let lines = dim.lines(axis);
    let len = dim.line_len(axis);
    let mut heads = vec![0usize; dim.len()];
    let mut faults = Vec::new();
    let open = open.as_slice();
    for line in 0..lines {
        // Find the last Open node in movement order, which (cyclically)
        // drives the positions before the first Open node.
        let mut driver: Option<usize> = None;
        for pos in (0..len).rev() {
            let idx = dim.line_index(dir, line, pos);
            if open[idx] {
                driver = Some(idx);
                break;
            }
        }
        match driver {
            None => faults.push(line),
            Some(mut drv) => {
                for pos in 0..len {
                    let idx = dim.line_index(dir, line, pos);
                    if open[idx] {
                        drv = idx;
                    }
                    heads[idx] = drv;
                }
            }
        }
    }
    if faults.is_empty() {
        Ok(heads)
    } else {
        Err(faults)
    }
}

/// The `broadcast(src, dir, L)` primitive: every node receives the `src`
/// value held by the Open node heading its cluster.
pub fn broadcast<T: Copy + Send + Sync>(
    mode: ExecMode,
    dim: Dim,
    src: &Plane<T>,
    dir: Direction,
    open: &Plane<bool>,
) -> Result<Plane<T>, MachineError> {
    check_dim(dim, src.dim())?;
    check_dim(dim, open.dim())?;
    let heads = cluster_heads(dim, dir, open).map_err(|lines| MachineError::BusFault {
        axis: dir.axis(),
        lines,
    })?;
    let s = src.as_slice();
    let data = engine::build(mode, dim.len(), |i| s[heads[i]]);
    Ok(Plane::from_vec(dim, data))
}

/// Per-node cluster *keys* for direction `dir` under the Open mask `open`,
/// tolerating driverless lines.
///
/// The key of a node is the flat index of the Open node driving its
/// sub-bus — identical to [`cluster_heads`] on driven lines. A line with no
/// Open node is keyed by its first node in movement order (the floating
/// segment spans the whole line) and reported in the returned `driverless`
/// list (sorted ascending). [`bus_or`] uses the keys directly; [`broadcast`]
/// treats a non-empty `driverless` list as a [`MachineError::BusFault`].
/// The packed backend's bus-plan cache stores exactly this derivation.
pub fn cluster_keys(dim: Dim, dir: Direction, open: &[bool]) -> (Vec<u32>, Vec<usize>) {
    let axis = dir.axis();
    let lines = dim.lines(axis);
    let len = dim.line_len(axis);
    let mut key = vec![0u32; dim.len()];
    let mut driverless = Vec::new();
    for line in 0..lines {
        let mut driver: Option<usize> = None;
        for pos in (0..len).rev() {
            let idx = dim.line_index(dir, line, pos);
            if open[idx] {
                driver = Some(idx);
                break;
            }
        }
        // With no Open node the whole line is one floating segment; use the
        // first node in movement order as its key.
        let mut drv = match driver {
            Some(d) => d,
            None => {
                driverless.push(line);
                dim.line_index(dir, line, 0)
            }
        };
        for pos in 0..len {
            let idx = dim.line_index(dir, line, pos);
            if open[idx] {
                drv = idx;
            }
            key[idx] = drv as u32;
        }
    }
    (key, driverless)
}

/// The wired-OR primitive: every node receives the OR of `values` over all
/// nodes of its cluster. A line with no Open node forms a single cluster.
pub fn bus_or(
    mode: ExecMode,
    dim: Dim,
    values: &Plane<bool>,
    dir: Direction,
    open: &Plane<bool>,
) -> Result<Plane<bool>, MachineError> {
    check_dim(dim, values.dim())?;
    check_dim(dim, open.dim())?;
    let (key, _) = cluster_keys(dim, dir, open.as_slice());
    let v = values.as_slice();
    let mut acc = vec![false; dim.len()]; // indexed by cluster key (head idx)
    for (idx, &set) in v.iter().enumerate() {
        if set {
            acc[key[idx] as usize] = true;
        }
    }
    let data = engine::build(mode, dim.len(), |i| acc[key[i] as usize]);
    Ok(Plane::from_vec(dim, data))
}

/// The nearest-neighbour transfer with an explicit edge [`Fill`] policy:
/// every node receives the value of its nearest neighbour *against* `dir`
/// (i.e. data moves one step towards `dir`); upstream-edge nodes receive
/// the fill value, or the wrapped neighbour's value under [`Fill::Wrap`].
pub fn shift_with<T: Copy + Send + Sync>(
    mode: ExecMode,
    dim: Dim,
    src: &Plane<T>,
    dir: Direction,
    fill: Fill<T>,
) -> Result<Plane<T>, MachineError> {
    check_dim(dim, src.dim())?;
    let s = src.as_slice();
    let data = engine::build(mode, dim.len(), |i| {
        let c = dim.coord(i);
        match fill {
            Fill::Value(v) => match c.neighbor(dir.opposite(), dim) {
                Some(n) => s[dim.index(n)],
                None => v,
            },
            Fill::Wrap => s[dim.index(c.neighbor_wrapping(dir.opposite(), dim))],
        }
    });
    Ok(Plane::from_vec(dim, data))
}

/// The `shift(src, dir)` primitive with a constant edge fill.
pub fn shift<T: Copy + Send + Sync>(
    mode: ExecMode,
    dim: Dim,
    src: &Plane<T>,
    dir: Direction,
    fill: T,
) -> Result<Plane<T>, MachineError> {
    shift_with(mode, dim, src, dir, Fill::Value(fill))
}

/// Toroidal variant of [`shift`]: edge nodes receive the wrapped neighbour's
/// value instead of a fill.
pub fn shift_wrapping<T: Copy + Send + Sync>(
    mode: ExecMode,
    dim: Dim,
    src: &Plane<T>,
    dir: Direction,
) -> Result<Plane<T>, MachineError> {
    shift_with(mode, dim, src, dir, Fill::Wrap)
}

fn check_dim(expected: Dim, found: Dim) -> Result<(), MachineError> {
    if expected == found {
        Ok(())
    } else {
        Err(MachineError::DimMismatch { expected, found })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Coord;

    const SEQ: ExecMode = ExecMode::Sequential;

    fn dim4() -> Dim {
        Dim::square(4)
    }

    #[test]
    fn broadcast_single_open_drives_whole_line() {
        let dim = dim4();
        let src = Plane::from_fn(dim, |c| (c.row * 10 + c.col) as i64);
        // Open only column 1; broadcast East along rows.
        let open = Plane::from_fn(dim, |c| c.col == 1);
        let out = broadcast(SEQ, dim, &src, Direction::East, &open).unwrap();
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(*out.at(r, c), (r * 10 + 1) as i64, "at ({r},{c})");
            }
        }
    }

    #[test]
    fn broadcast_clusters_split_at_open_nodes() {
        let dim = dim4();
        let src = Plane::from_fn(dim, |c| c.col as i64);
        // Row 0: open at cols 0 and 2, movement East.
        // Clusters (cyclic): {0,1} headed by 0, {2,3} headed by 2.
        let open = Plane::from_fn(dim, |c| c.row == 0 && (c.col == 0 || c.col == 2));
        let out = broadcast(SEQ, dim, &src, Direction::East, &open);
        // Rows 1..3 have no open node -> fault listing those lines.
        match out {
            Err(MachineError::BusFault { lines, .. }) => assert_eq!(lines, vec![1, 2, 3]),
            other => panic!("expected fault, got {other:?}"),
        }
        // Open every other row fully at col 0 to make the call legal.
        let open = Plane::from_fn(dim, |c| {
            if c.row == 0 {
                c.col == 0 || c.col == 2
            } else {
                c.col == 0
            }
        });
        let out = broadcast(SEQ, dim, &src, Direction::East, &open).unwrap();
        assert_eq!(out.row(0), &[0, 0, 2, 2]);
        assert_eq!(out.row(1), &[0, 0, 0, 0]);
    }

    #[test]
    fn broadcast_wraps_cyclically() {
        let dim = dim4();
        let src = Plane::from_fn(dim, |c| c.col as i64);
        // Row 0: single open at col 2, movement East: cols 3, 0, 1 are all
        // downstream of col 2 on the circular bus.
        let open = Plane::from_fn(dim, |c| c.col == 2);
        let out = broadcast(SEQ, dim, &src, Direction::East, &open).unwrap();
        assert_eq!(out.row(0), &[2, 2, 2, 2]);
    }

    #[test]
    fn broadcast_direction_reversal_changes_heads() {
        let dim = dim4();
        let src = Plane::from_fn(dim, |c| c.col as i64);
        let open = Plane::from_fn(dim, |c| c.col == 0 || c.col == 2);
        let east = broadcast(SEQ, dim, &src, Direction::East, &open).unwrap();
        // East: col1 <- col0, col3 <- col2.
        assert_eq!(east.row(0), &[0, 0, 2, 2]);
        let west = broadcast(SEQ, dim, &src, Direction::West, &open).unwrap();
        // West (movement towards decreasing cols): col1 <- col2, col3 <- col0 (cyclic).
        assert_eq!(west.row(0), &[0, 2, 2, 0]);
    }

    #[test]
    fn broadcast_open_node_reads_itself() {
        let dim = dim4();
        let src = Plane::from_fn(dim, |c| (c.row * 4 + c.col) as i64);
        let open = Plane::filled(dim, true); // every node its own cluster
        let out = broadcast(SEQ, dim, &src, Direction::South, &open).unwrap();
        assert_eq!(out, src);
    }

    #[test]
    fn broadcast_south_reaches_rows_above_injector() {
        // The statement-16 pattern: diagonal opens, reader row may be above.
        let dim = dim4();
        let src = Plane::from_fn(dim, |c| if c.row == c.col { c.col as i64 } else { -1 });
        let open = Plane::from_fn(dim, |c| c.row == c.col);
        let out = broadcast(SEQ, dim, &src, Direction::South, &open).unwrap();
        // Every column j is driven entirely by (j, j).
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(*out.at(r, c), c as i64);
            }
        }
    }

    #[test]
    fn bus_or_ors_within_clusters_only() {
        let dim = dim4();
        let open = Plane::from_fn(dim, |c| c.col == 0 || c.col == 2);
        // Row 0: value true only at col 1 (cluster {0,1}).
        let vals = Plane::from_fn(dim, |c| c.row == 0 && c.col == 1);
        let out = bus_or(SEQ, dim, &vals, Direction::East, &open).unwrap();
        assert_eq!(out.row(0), &[true, true, false, false]);
        assert_eq!(out.row(1), &[false, false, false, false]);
    }

    #[test]
    fn bus_or_without_open_spans_line() {
        let dim = dim4();
        let open = Plane::filled(dim, false);
        let vals = Plane::from_fn(dim, |c| c.row == 2 && c.col == 3);
        let out = bus_or(SEQ, dim, &vals, Direction::East, &open).unwrap();
        assert_eq!(out.row(2), &[true, true, true, true]);
        assert_eq!(out.row(0), &[false, false, false, false]);
    }

    #[test]
    fn shift_east_moves_data_right_with_fill() {
        let dim = dim4();
        let src = Plane::from_fn(dim, |c| c.col as i64);
        let out = shift(SEQ, dim, &src, Direction::East, -7).unwrap();
        assert_eq!(out.row(1), &[-7, 0, 1, 2]);
    }

    #[test]
    fn shift_north_moves_data_up() {
        let dim = dim4();
        let src = Plane::from_fn(dim, |c| c.row as i64);
        let out = shift(SEQ, dim, &src, Direction::North, 99).unwrap();
        // Node (r, c) receives from (r+1, c); bottom row gets fill.
        assert_eq!(out.col(0), vec![1, 2, 3, 99]);
    }

    #[test]
    fn shift_wrapping_is_a_rotation() {
        let dim = dim4();
        let src = Plane::from_fn(dim, |c| c.col as i64);
        let out = shift_wrapping(SEQ, dim, &src, Direction::East).unwrap();
        assert_eq!(out.row(0), &[3, 0, 1, 2]);
        // Four shifts restore the original.
        let mut p = src.clone();
        for _ in 0..4 {
            p = shift_wrapping(SEQ, dim, &p, Direction::East).unwrap();
        }
        assert_eq!(p, src);
    }

    #[test]
    fn dim_mismatch_detected() {
        let dim = dim4();
        let src = Plane::filled(Dim::new(2, 4), 0i64);
        let open = Plane::filled(dim, true);
        let err = broadcast(SEQ, dim, &src, Direction::East, &open).unwrap_err();
        assert!(matches!(err, MachineError::DimMismatch { .. }));
    }

    #[test]
    fn cluster_heads_mark_each_open_as_its_own_head() {
        let dim = dim4();
        let open = Plane::from_fn(dim, |c| c.col % 2 == 0);
        let heads = cluster_heads(dim, Direction::East, &open).unwrap();
        for (i, &h) in heads.iter().enumerate() {
            let c = dim.coord(i);
            if open.as_slice()[i] {
                assert_eq!(h, i, "open node {c} should head itself");
            } else {
                assert!(open.as_slice()[h], "head of {c} must be open");
            }
        }
    }

    #[test]
    fn threaded_mode_matches_sequential() {
        let dim = Dim::square(48); // big enough to cross the chunk threshold
        let src = Plane::from_fn(dim, |c| (c.row * 31 + c.col * 7) as i64);
        let open = Plane::from_fn(dim, |c| (c.row + c.col) % 5 == 0 || c.col == 0);
        let a = broadcast(SEQ, dim, &src, Direction::East, &open).unwrap();
        let b = broadcast(ExecMode::threaded(3), dim, &src, Direction::East, &open).unwrap();
        assert_eq!(a, b);
        let va = Plane::from_fn(dim, |c| c.row % 3 == 0);
        let oa = bus_or(SEQ, dim, &va, Direction::South, &open).unwrap();
        let ob = bus_or(ExecMode::threaded(3), dim, &va, Direction::South, &open).unwrap();
        assert_eq!(oa, ob);
    }

    #[test]
    fn broadcast_column_axis_uses_column_lines() {
        let dim = Dim::new(3, 2);
        let src = Plane::from_fn(dim, |c| (c.row * 2 + c.col) as i64);
        let open = Plane::from_fn(dim, |c| c.row == 1);
        let out = broadcast(SEQ, dim, &src, Direction::North, &open).unwrap();
        for r in 0..3 {
            assert_eq!(*out.at(r, 0), 2);
            assert_eq!(*out.at(r, 1), 3);
        }
        let _ = Coord::new(0, 0); // silence unused import in some cfgs
    }
}
