//! Host-side execution engine for the data-parallel per-PE loops.
//!
//! Every simulated SIMD instruction touches all `rows * cols` PEs
//! independently, so the simulator can execute the per-PE work either
//! sequentially or chunked across OS threads (crossbeam scoped threads).
//! The choice changes only the *host wall-clock*; the simulated step counts
//! recorded by the [`Controller`](crate::Controller) are identical by
//! construction, which the engine equivalence tests assert.

use std::num::NonZeroUsize;

/// How the per-PE loops of each simulated instruction run on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Single-threaded execution (the default; fastest for small arrays).
    #[default]
    Sequential,
    /// Chunk the PE planes across this many OS threads.
    Threaded(NonZeroUsize),
}

impl ExecMode {
    /// A threaded mode using all available host parallelism (falls back to
    /// [`ExecMode::Sequential`] when only one hardware thread exists).
    pub fn auto() -> Self {
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => ExecMode::Threaded(n),
            _ => ExecMode::Sequential,
        }
    }

    /// A threaded mode with exactly `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn threaded(threads: usize) -> Self {
        ExecMode::Threaded(NonZeroUsize::new(threads).expect("thread count must be non-zero"))
    }

    /// Number of worker threads this mode uses.
    pub fn thread_count(self) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Threaded(n) => n.get(),
        }
    }
}

/// Minimum number of work items per thread before the engine bothers
/// spawning; tiny planes always run sequentially to avoid spawn overhead
/// dominating.
const MIN_CHUNK: usize = 1024;

/// Builds a vector of `len` elements where element `i` is `f(i)`,
/// using the requested execution mode.
///
/// This single entry point covers every per-PE loop in the simulator: maps,
/// zips and gathers are all expressed as index functions over borrowed
/// slices captured by `f`.
pub fn build<T, F>(mode: ExecMode, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = mode.thread_count();
    if threads <= 1 || len < MIN_CHUNK * 2 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(threads);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let f = &f;
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(len);
            if start >= end {
                break;
            }
            handles.push(scope.spawn(move |_| (start..end).map(f).collect::<Vec<T>>()));
        }
        for h in handles {
            parts.push(h.join().expect("engine worker panicked"));
        }
    })
    .expect("engine scope panicked");
    let mut out = Vec::with_capacity(len);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Folds `f(i)` over `0..len` with a commutative, associative `combine`,
/// seeded with `identity` — the engine-parallel reduction used by the
/// global-OR instruction and by test oracles.
pub fn reduce<T, F, C>(mode: ExecMode, len: usize, identity: T, f: F, combine: C) -> T
where
    T: Send + Clone,
    F: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync + Send,
{
    let threads = mode.thread_count();
    if threads <= 1 || len < MIN_CHUNK * 2 {
        return (0..len).map(f).fold(identity, combine);
    }
    let chunk = len.div_ceil(threads);
    let mut acc = identity.clone();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let f = &f;
        let combine = &combine;
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(len);
            if start >= end {
                break;
            }
            let id = identity.clone();
            handles.push(scope.spawn(move |_| (start..end).map(f).fold(id, combine)));
        }
        for h in handles {
            let part = h.join().expect("engine worker panicked");
            acc = combine(acc.clone(), part);
        }
    })
    .expect("engine scope panicked");
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_build_matches_iterator() {
        let v = build(ExecMode::Sequential, 10, |i| i * i);
        assert_eq!(v, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_build_matches_sequential() {
        let len = 10_000;
        let seq = build(ExecMode::Sequential, len, |i| i as u64 * 3 + 1);
        let par = build(ExecMode::threaded(4), len, |i| i as u64 * 3 + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn small_inputs_skip_spawning_but_agree() {
        let seq = build(ExecMode::Sequential, 7, |i| i + 1);
        let par = build(ExecMode::threaded(8), 7, |i| i + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn reduce_sums_correctly_in_both_modes() {
        let len = 5_000;
        let seq = reduce(ExecMode::Sequential, len, 0u64, |i| i as u64, |a, b| a + b);
        let par = reduce(ExecMode::threaded(3), len, 0u64, |i| i as u64, |a, b| a + b);
        let expect = (len as u64 - 1) * len as u64 / 2;
        assert_eq!(seq, expect);
        assert_eq!(par, expect);
    }

    #[test]
    fn reduce_or_short_forms() {
        let hit = reduce(
            ExecMode::threaded(2),
            4_000,
            false,
            |i| i == 3_999,
            |a, b| a || b,
        );
        assert!(hit);
    }

    #[test]
    fn auto_mode_is_valid() {
        let m = ExecMode::auto();
        assert!(m.thread_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_threads_rejected() {
        let _ = ExecMode::threaded(0);
    }
}
