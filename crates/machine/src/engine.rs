//! Host-side execution engine for the data-parallel per-PE loops.
//!
//! Every simulated SIMD instruction touches all `rows * cols` PEs
//! independently, so the simulator can execute the per-PE work either
//! sequentially or chunked across OS threads (crossbeam scoped threads).
//! The choice changes only the *host wall-clock*; the simulated step counts
//! recorded by the [`Controller`](crate::Controller) are identical by
//! construction, which the engine equivalence tests assert.
//!
//! ## Profiling
//!
//! [`enable_profiling`] turns on process-wide wall-clock accounting:
//! every `build`/`reduce` call adds its host time to an
//! [`EngineProfile`], including per-worker chunk timings in threaded
//! mode (which expose chunk imbalance). [`take_profile`] stops
//! accounting and returns the totals. The flag is a relaxed atomic read
//! on the hot path, so the disabled cost is negligible.

use ppa_obs::EngineProfile;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static PROFILING: AtomicBool = AtomicBool::new(false);
static PROFILE: Mutex<Option<EngineProfile>> = Mutex::new(None);

/// Locks the profile store, recovering from poisoning: a panicking worker
/// must not turn every later profiled run into a panic. The stored
/// `EngineProfile` is plain counters, valid regardless of where a panic
/// interrupted an update.
fn profile_lock() -> std::sync::MutexGuard<'static, Option<EngineProfile>> {
    PROFILE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Starts wall-clock profiling of every engine call, process-wide,
/// resetting any previous totals.
pub fn enable_profiling() {
    *profile_lock() = Some(EngineProfile::default());
    PROFILING.store(true, Ordering::SeqCst);
}

/// Stops profiling and returns the accumulated totals (`None` if
/// profiling was never enabled).
pub fn take_profile() -> Option<EngineProfile> {
    PROFILING.store(false, Ordering::SeqCst);
    profile_lock().take()
}

/// Whether engine profiling is currently enabled.
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

fn note_call(is_build: bool, threaded: bool, elapsed: Duration, chunks: &[(usize, u64)]) {
    let mut guard = profile_lock();
    let Some(p) = guard.as_mut() else { return };
    if is_build {
        p.build_calls += 1;
    } else {
        p.reduce_calls += 1;
    }
    let ns = elapsed.as_nanos() as u64;
    if threaded {
        p.threaded_nanos += ns;
    } else {
        p.sequential_nanos += ns;
    }
    for &(slot, n) in chunks {
        if p.per_thread_nanos.len() <= slot {
            p.per_thread_nanos.resize(slot + 1, 0);
        }
        p.per_thread_nanos[slot] += n;
    }
}

/// How the per-PE loops of each simulated instruction run on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Single-threaded execution (the default; fastest for small arrays).
    #[default]
    Sequential,
    /// Chunk the PE planes across this many OS threads.
    Threaded(NonZeroUsize),
}

impl ExecMode {
    /// A threaded mode using all available host parallelism (falls back to
    /// [`ExecMode::Sequential`] when only one hardware thread exists).
    pub fn auto() -> Self {
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => ExecMode::Threaded(n),
            _ => ExecMode::Sequential,
        }
    }

    /// A threaded mode with exactly `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn threaded(threads: usize) -> Self {
        ExecMode::Threaded(NonZeroUsize::new(threads).expect("thread count must be non-zero"))
    }

    /// Number of worker threads this mode uses.
    pub fn thread_count(self) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Threaded(n) => n.get(),
        }
    }
}

/// Minimum number of work items per thread before the engine bothers
/// spawning; tiny planes always run sequentially to avoid spawn overhead
/// dominating.
const MIN_CHUNK: usize = 1024;

/// Builds a vector of `len` elements where element `i` is `f(i)`,
/// using the requested execution mode.
///
/// This single entry point covers every per-PE loop in the simulator: maps,
/// zips and gathers are all expressed as index functions over borrowed
/// slices captured by `f`.
pub fn build<T, F>(mode: ExecMode, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let profiling = profiling_enabled();
    let call_start = profiling.then(Instant::now);
    let threads = mode.thread_count();
    if threads <= 1 || len < MIN_CHUNK * 2 {
        let out: Vec<T> = (0..len).map(f).collect();
        if let Some(t0) = call_start {
            note_call(true, false, t0.elapsed(), &[]);
        }
        return out;
    }
    let chunk = len.div_ceil(threads);
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut chunk_times: Vec<(usize, u64)> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let f = &f;
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(len);
            if start >= end {
                break;
            }
            handles.push(scope.spawn(move |_| {
                let w0 = profiling.then(Instant::now);
                let part = (start..end).map(f).collect::<Vec<T>>();
                (part, w0.map_or(0, |t0| t0.elapsed().as_nanos() as u64))
            }));
        }
        for (slot, h) in handles.into_iter().enumerate() {
            let (part, nanos) = h.join().expect("engine worker panicked");
            parts.push(part);
            if profiling {
                chunk_times.push((slot, nanos));
            }
        }
    })
    .expect("engine scope panicked");
    let mut out = Vec::with_capacity(len);
    for p in parts {
        out.extend(p);
    }
    if let Some(t0) = call_start {
        note_call(true, true, t0.elapsed(), &chunk_times);
    }
    out
}

/// Folds `f(i)` over `0..len` with a commutative, associative `combine`,
/// seeded with `identity` — the engine-parallel reduction used by the
/// global-OR instruction and by test oracles.
pub fn reduce<T, F, C>(mode: ExecMode, len: usize, identity: T, f: F, combine: C) -> T
where
    T: Send + Clone,
    F: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync + Send,
{
    let profiling = profiling_enabled();
    let call_start = profiling.then(Instant::now);
    let threads = mode.thread_count();
    if threads <= 1 || len < MIN_CHUNK * 2 {
        let out = (0..len).map(f).fold(identity, combine);
        if let Some(t0) = call_start {
            note_call(false, false, t0.elapsed(), &[]);
        }
        return out;
    }
    let chunk = len.div_ceil(threads);
    let mut acc = identity.clone();
    let mut chunk_times: Vec<(usize, u64)> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let f = &f;
        let combine = &combine;
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(len);
            if start >= end {
                break;
            }
            let id = identity.clone();
            handles.push(scope.spawn(move |_| {
                let w0 = profiling.then(Instant::now);
                let part = (start..end).map(f).fold(id, combine);
                (part, w0.map_or(0, |t0| t0.elapsed().as_nanos() as u64))
            }));
        }
        for (slot, h) in handles.into_iter().enumerate() {
            let (part, nanos) = h.join().expect("engine worker panicked");
            acc = combine(acc.clone(), part);
            if profiling {
                chunk_times.push((slot, nanos));
            }
        }
    })
    .expect("engine scope panicked");
    if let Some(t0) = call_start {
        note_call(false, true, t0.elapsed(), &chunk_times);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_build_matches_iterator() {
        let v = build(ExecMode::Sequential, 10, |i| i * i);
        assert_eq!(v, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_build_matches_sequential() {
        let len = 10_000;
        let seq = build(ExecMode::Sequential, len, |i| i as u64 * 3 + 1);
        let par = build(ExecMode::threaded(4), len, |i| i as u64 * 3 + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn small_inputs_skip_spawning_but_agree() {
        let seq = build(ExecMode::Sequential, 7, |i| i + 1);
        let par = build(ExecMode::threaded(8), 7, |i| i + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn reduce_sums_correctly_in_both_modes() {
        let len = 5_000;
        let seq = reduce(ExecMode::Sequential, len, 0u64, |i| i as u64, |a, b| a + b);
        let par = reduce(ExecMode::threaded(3), len, 0u64, |i| i as u64, |a, b| a + b);
        let expect = (len as u64 - 1) * len as u64 / 2;
        assert_eq!(seq, expect);
        assert_eq!(par, expect);
    }

    #[test]
    fn reduce_or_short_forms() {
        let hit = reduce(
            ExecMode::threaded(2),
            4_000,
            false,
            |i| i == 3_999,
            |a, b| a || b,
        );
        assert!(hit);
    }

    #[test]
    fn auto_mode_is_valid() {
        let m = ExecMode::auto();
        assert!(m.thread_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_threads_rejected() {
        let _ = ExecMode::threaded(0);
    }

    #[test]
    fn profile_survives_a_poisoned_mutex() {
        // Poison PROFILE by panicking while holding its guard, then check
        // the profiling API keeps working instead of propagating the
        // poison forever.
        let _ = std::panic::catch_unwind(|| {
            let _guard = profile_lock();
            panic!("poison the profile mutex");
        });
        enable_profiling();
        let _ = build(ExecMode::Sequential, 100, |i| i);
        let p = take_profile().expect("profiling recovered after poisoning");
        assert!(p.build_calls >= 1, "{p:?}");
    }

    #[test]
    fn profiling_accounts_calls_and_worker_chunks() {
        enable_profiling();
        let _ = build(ExecMode::Sequential, 100, |i| i);
        let _ = build(ExecMode::threaded(3), 10_000, |i| i as u64);
        let _ = reduce(
            ExecMode::threaded(3),
            10_000,
            0u64,
            |i| i as u64,
            |a, b| a + b,
        );
        let p = take_profile().expect("profile collected");
        // Other tests may run concurrently and add their own calls, so
        // assert lower bounds only.
        assert!(p.build_calls >= 2, "{p:?}");
        assert!(p.reduce_calls >= 1, "{p:?}");
        assert!(p.per_thread_nanos.len() >= 3, "{p:?}");
        assert!(take_profile().is_none());
    }
}
