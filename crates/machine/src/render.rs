//! ASCII rendering of switch configurations and bus clusters.
//!
//! Used by the `bus_partition` example and the experiment harness to
//! reproduce the content of Figure 1 of the paper: how the Open/Short
//! switch settings partition the two bus systems into independent
//! sub-buses. Open nodes render as `[x]`, Short nodes as `-o-` (horizontal
//! buses) or `|o|`-style glyphs, and [`render_clusters`] labels every PE
//! with the identity of the cluster it belongs to.

use crate::bus::cluster_heads;
use crate::geometry::{Dim, Direction};
use crate::plane::Plane;
use std::fmt::Write as _;

/// Renders the switch plane for one data-movement direction.
///
/// Open nodes (`true` in `open`) appear as `[x]`; Short nodes as `=o=` when
/// the direction travels horizontal buses and `|o|` when vertical. Arrows in
/// the header show the movement direction.
pub fn render_switches(dim: Dim, dir: Direction, open: &Plane<bool>) -> String {
    assert_eq!(open.dim(), dim, "mask dimension mismatch");
    let mut out = String::new();
    let arrow = match dir {
        Direction::North => "^ (data moves North, along columns)",
        Direction::South => "v (data moves South, along columns)",
        Direction::East => "-> (data moves East, along rows)",
        Direction::West => "<- (data moves West, along rows)",
    };
    let _ = writeln!(out, "direction: {dir} {arrow}");
    for row in 0..dim.rows {
        for col in 0..dim.cols {
            let glyph = if *open.at(row, col) {
                "[x]"
            } else {
                match dir.axis() {
                    crate::geometry::Axis::Row => "=o=",
                    crate::geometry::Axis::Col => "|o|",
                }
            };
            let _ = write!(out, "{glyph} ");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the cluster partition induced by `open` for direction `dir`.
///
/// Every PE is labelled with a single character identifying its cluster
/// (clusters are lettered `a`, `b`, ... in head order per line; `?` marks
/// nodes on an undriven line). Two PEs share a letter on the same line iff
/// the bus connects them in one sub-bus.
pub fn render_clusters(dim: Dim, dir: Direction, open: &Plane<bool>) -> String {
    assert_eq!(open.dim(), dim, "mask dimension mismatch");
    let heads = cluster_heads(dim, dir, open);
    let mut out = String::new();
    let _ = writeln!(out, "clusters for movement {dir}:");
    match heads {
        Err(lines) => {
            let _ = writeln!(out, "  undriven {} line(s): {lines:?}", dir.axis());
            for _row in 0..dim.rows {
                for _ in 0..dim.cols {
                    let _ = write!(out, " ? ");
                }
                let _ = writeln!(out);
            }
        }
        Ok(heads) => {
            // Assign letters per line, in order of first appearance.
            let mut letters = vec![' '; dim.len()];
            let lines = dim.lines(dir.axis());
            let len = dim.line_len(dir.axis());
            for line in 0..lines {
                let mut next = b'a';
                let mut seen: Vec<(usize, u8)> = Vec::new();
                for pos in 0..len {
                    let idx = dim.line_index(dir, line, pos);
                    let head = heads[idx];
                    let letter = match seen.iter().find(|(h, _)| *h == head) {
                        Some(&(_, l)) => l,
                        None => {
                            let l = next;
                            next = next.saturating_add(1);
                            seen.push((head, l));
                            l
                        }
                    };
                    letters[idx] = letter as char;
                }
            }
            for row in 0..dim.rows {
                for col in 0..dim.cols {
                    let idx = dim.index(crate::geometry::Coord::new(row, col));
                    let _ = write!(out, " {} ", letters[idx]);
                }
                let _ = writeln!(out);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switches_render_open_and_short() {
        let dim = Dim::square(2);
        let open = Plane::from_fn(dim, |c| c.col == 0);
        let s = render_switches(dim, Direction::East, &open);
        assert!(s.contains("[x]"), "{s}");
        assert!(s.contains("=o="), "{s}");
        assert!(s.contains("East"), "{s}");
    }

    #[test]
    fn vertical_axis_uses_vertical_glyph() {
        let dim = Dim::square(2);
        let open = Plane::filled(dim, false);
        let s = render_switches(dim, Direction::South, &open);
        assert!(s.contains("|o|"), "{s}");
    }

    #[test]
    fn clusters_letter_by_segment() {
        let dim = Dim::square(4);
        let open = Plane::from_fn(dim, |c| c.col == 0 || c.col == 2);
        let s = render_clusters(dim, Direction::East, &open);
        // Each row: cols 0-1 cluster 'a', cols 2-3 cluster 'b'.
        for line in s.lines().skip(1) {
            assert_eq!(line.trim(), "a  a  b  b");
        }
    }

    #[test]
    fn undriven_lines_render_question_marks() {
        let dim = Dim::square(2);
        let open = Plane::filled(dim, false);
        let s = render_clusters(dim, Direction::East, &open);
        assert!(s.contains('?'), "{s}");
        assert!(s.contains("undriven"), "{s}");
    }
}
