//! Machine-level error types.

use crate::geometry::{Axis, Dim};
use std::fmt;

/// Errors raised by machine primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A broadcast was issued on an axis where at least one bus line has no
    /// Open node: the sub-bus has no driver, so its value is undefined.
    /// `lines` lists the offending line indices (row indices for the
    /// horizontal buses, column indices for the vertical buses).
    BusFault {
        /// Which bus system had undriven lines.
        axis: Axis,
        /// Offending line indices (sorted ascending).
        lines: Vec<usize>,
    },
    /// Two planes participating in one instruction had different shapes.
    DimMismatch {
        /// Shape the machine expected (its own geometry).
        expected: Dim,
        /// Shape actually supplied.
        found: Dim,
    },
    /// The cooperative step budget installed with
    /// [`Machine::limit_steps`](crate::Machine::limit_steps) is spent: the
    /// machine refused to issue the next fallible instruction. Step
    /// counters are intact; the program unwound cleanly between
    /// instructions, never mid-step.
    StepBudgetExhausted {
        /// The budget that was granted (steps the program was allowed to
        /// issue past the point where the limit was installed).
        budget: u64,
    },
    /// A [`CancelToken`](crate::CancelToken) attached to the machine was
    /// raised; the machine refused to issue the next fallible
    /// instruction.
    Cancelled,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::BusFault { axis, lines } => write!(
                f,
                "bus fault: {axis} bus line(s) {lines:?} have no Open node to drive them"
            ),
            MachineError::DimMismatch { expected, found } => {
                write!(
                    f,
                    "plane dimension mismatch: machine is {expected}, plane is {found}"
                )
            }
            MachineError::StepBudgetExhausted { budget } => {
                write!(f, "step budget exhausted: {budget} steps were granted")
            }
            MachineError::Cancelled => write!(f, "run cancelled via its cancel token"),
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_lines() {
        let e = MachineError::BusFault {
            axis: Axis::Col,
            lines: vec![0, 3],
        };
        let s = e.to_string();
        assert!(s.contains("column"), "{s}");
        assert!(s.contains("[0, 3]"), "{s}");
    }

    #[test]
    fn display_mentions_dims() {
        let e = MachineError::DimMismatch {
            expected: Dim::new(4, 4),
            found: Dim::new(2, 4),
        };
        assert!(e.to_string().contains("4x4"));
        assert!(e.to_string().contains("2x4"));
    }

    #[test]
    fn display_mentions_budget() {
        let e = MachineError::StepBudgetExhausted { budget: 42 };
        assert!(e.to_string().contains("42"), "{e}");
        assert!(MachineError::Cancelled.to_string().contains("cancel"));
    }
}
