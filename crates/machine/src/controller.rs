//! The SIMD program controller: instruction classes and step accounting.
//!
//! The PPA executes one controller instruction per time step; all PEs obey
//! it simultaneously (SIMD). The paper's complexity analysis counts these
//! steps: "considering that all the statements have O(1) complexity, and
//! that a h-iteration loop must be executed, the two \[min\] algorithms have
//! O(h) complexity". The [`Controller`] is the measuring instrument that
//! turns those claims into reproducible numbers: every primitive issued on
//! a [`Machine`](crate::Machine) records exactly one step, classified by
//! [`Op`], and a [`StepReport`] snapshots the tallies.

use ppa_obs::{Event, Metrics, OccupancySampling, TraceSink};
use std::fmt;

/// Classification of controller instructions, for step breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A parallel ALU/assignment operation (elementwise compute, masked
    /// writes, immediate loads).
    Alu,
    /// A nearest-neighbour `shift` transfer.
    Shift,
    /// A reconfigurable-bus `broadcast`.
    Broadcast,
    /// A wired-OR over bus clusters.
    BusOr,
    /// The controller's global-OR ("did any PE raise its flag?") used for
    /// data-dependent loop exits such as the MCP do-while condition.
    GlobalOr,
}

impl Op {
    /// All instruction classes, in the order used by reports.
    pub const ALL: [Op; 5] = [Op::Alu, Op::Shift, Op::Broadcast, Op::BusOr, Op::GlobalOr];

    fn slot(self) -> usize {
        match self {
            Op::Alu => 0,
            Op::Shift => 1,
            Op::Broadcast => 2,
            Op::BusOr => 3,
            Op::GlobalOr => 4,
        }
    }

    /// Short lowercase label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Op::Alu => "alu",
            Op::Shift => "shift",
            Op::Broadcast => "broadcast",
            Op::BusOr => "bus-or",
            Op::GlobalOr => "global-or",
        }
    }

    /// The metrics counter name for this class (`steps.<label>`).
    pub fn metric_name(self) -> &'static str {
        match self {
            Op::Alu => "steps.alu",
            Op::Shift => "steps.shift",
            Op::Broadcast => "steps.broadcast",
            Op::BusOr => "steps.bus-or",
            Op::GlobalOr => "steps.global-or",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Step tallies of a controller, frozen at some instant.
///
/// Subtracting two reports (`later.since(&earlier)`) isolates a phase, which
/// is how the experiment harness attributes steps to initialization,
/// iteration bodies, and `min`/`selected_min` invocations separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepReport {
    counts: [u64; 5],
}

impl StepReport {
    /// Steps recorded for one instruction class.
    pub fn count(&self, op: Op) -> u64 {
        self.counts[op.slot()]
    }

    /// Total steps across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The difference `self - earlier`, attributing steps to a phase.
    ///
    /// # Panics
    /// Panics if `earlier` has more steps than `self` in any class (reports
    /// must come from the same monotonically counting controller). Use
    /// [`StepReport::checked_since`] to handle that case without panicking.
    pub fn since(&self, earlier: &StepReport) -> StepReport {
        self.checked_since(earlier)
            .expect("StepReport::since: earlier report is not a prefix of self")
    }

    /// The difference `self - earlier`, or `None` if `earlier` exceeds
    /// `self` in any class (i.e. the reports do not come from the same
    /// monotonically counting controller, typically after a reset).
    pub fn checked_since(&self, earlier: &StepReport) -> Option<StepReport> {
        let mut counts = [0u64; 5];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = self.counts[i].checked_sub(earlier.counts[i])?;
        }
        Some(StepReport { counts })
    }

    /// Adds another report's tallies to this one (for aggregating phases).
    pub fn add(&self, other: &StepReport) -> StepReport {
        let mut counts = [0u64; 5];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = self.counts[i] + other.counts[i];
        }
        StepReport { counts }
    }
}

impl fmt::Display for StepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} steps (", self.total())?;
        let mut first = true;
        for op in Op::ALL {
            let c = self.count(op);
            if c > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{}: {}", op.label(), c)?;
                first = false;
            }
        }
        write!(f, ")")
    }
}

/// One trace record: which instruction ran, with an optional label supplied
/// by the issuing primitive (e.g. `"mcp: statement 10"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Instruction class.
    pub op: Op,
    /// Sequence number (0-based step index at which it ran).
    pub step: u64,
    /// Human-readable label, if tracing with labels.
    pub label: Option<String>,
}

/// The SIMD program controller: counts every issued instruction, can
/// optionally keep a full trace, and — when observability is enabled —
/// feeds a [`TraceSink`] with hierarchical spans and a [`Metrics`]
/// registry with per-class step counters.
///
/// Observation is structured as:
/// * **named spans** ([`Controller::enter_span`]/[`Controller::exit_span`])
///   for algorithm structure (`mcp`, `iteration[3]`, ...);
/// * **phase frames** ([`Controller::set_phase`]) for paper-statement
///   labels; a phase frame always lives at the top of the span stack, so
///   setting a new phase replaces the previous one and entering a named
///   span closes any open phase frame first.
#[derive(Default)]
pub struct Controller {
    counts: [u64; 5],
    trace: Option<Vec<TraceEntry>>,
    /// Label attached to every recorded instruction while set (used by
    /// algorithms to attribute steps to their phases, e.g. `"stmt 11"`).
    phase: Option<&'static str>,
    sink: Option<Box<dyn TraceSink>>,
    metrics: Option<Metrics>,
    /// Named spans currently open in the sink (excludes the phase frame).
    span_depth: u64,
    /// Whether a phase frame is open in the sink.
    phase_open: bool,
    /// How often observed instructions compute activity statistics.
    sampling: OccupancySampling,
    /// Eligible instructions seen by the sampler so far.
    sample_tick: u64,
}

impl fmt::Debug for Controller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Controller")
            .field("counts", &self.counts)
            .field("trace", &self.trace)
            .field("phase", &self.phase)
            .field("sink", &self.sink.as_ref().map(|_| "<dyn TraceSink>"))
            .field("metrics", &self.metrics)
            .field("span_depth", &self.span_depth)
            .finish()
    }
}

impl Clone for Controller {
    /// Clones counters, trace, phase label, and metrics. The trace sink is
    /// **not** cloned — a clone starts un-observed (sinks are single-writer
    /// by design; install a fresh handle on the clone to observe it).
    fn clone(&self) -> Self {
        Controller {
            counts: self.counts,
            trace: self.trace.clone(),
            phase: self.phase,
            sink: None,
            metrics: self.metrics.clone(),
            span_depth: 0,
            phase_open: false,
            sampling: self.sampling,
            sample_tick: self.sample_tick,
        }
    }
}

impl Controller {
    /// A fresh controller with zeroed counters and tracing disabled.
    pub fn new() -> Self {
        Controller::default()
    }

    // ----- observability ---------------------------------------------------

    /// Installs a trace sink: every subsequent instruction is emitted as an
    /// event, and spans/phases are forwarded as the span hierarchy.
    /// Replaces (and drops) any previously installed sink.
    pub fn install_sink(&mut self, sink: impl TraceSink + 'static) {
        self.sink = Some(Box::new(sink));
        self.span_depth = 0;
        self.phase_open = false;
        if let Some(p) = self.phase {
            self.open_phase_frame(p);
        }
    }

    /// Removes the sink, closing any spans it still has open at the current
    /// step (so sinks like the Chrome exporter see balanced frames).
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.close_phase_frame();
        while self.span_depth > 0 {
            self.span_depth -= 1;
            let step = self.total_steps();
            if let Some(s) = &mut self.sink {
                s.exit_span(step);
            }
        }
        self.sink.take()
    }

    /// Whether a trace sink is installed.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Starts collecting metrics (per-class step counters; the machine adds
    /// bus/mask activity). No-op if already collecting.
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_none() {
            self.metrics = Some(Metrics::new());
        }
    }

    /// Stops collecting and returns the metrics gathered so far.
    pub fn take_metrics(&mut self) -> Metrics {
        self.metrics.take().unwrap_or_default()
    }

    /// The live metrics registry, if collecting (for emitters that record
    /// their own counters/histograms, e.g. bus cluster sizes).
    pub fn metrics_mut(&mut self) -> Option<&mut Metrics> {
        self.metrics.as_mut()
    }

    /// Whether any observer (sink or metrics) is attached — primitives use
    /// this to skip computing occupancy/cluster statistics on hot paths.
    pub fn observing(&self) -> bool {
        self.sink.is_some() || self.metrics.is_some()
    }

    /// Sets how often observed instructions compute activity statistics
    /// (mask occupancy and bus cluster counts). The default,
    /// [`OccupancySampling::EveryStep`], is the historical behavior; step
    /// counters are never affected by this policy.
    pub fn set_occupancy_sampling(&mut self, sampling: OccupancySampling) {
        self.sampling = sampling;
        self.sample_tick = 0;
    }

    /// The current activity-sampling policy.
    pub fn occupancy_sampling(&self) -> OccupancySampling {
        self.sampling
    }

    /// One sampling decision for the instruction about to be issued.
    /// Callers make exactly one call per eligible (observed) instruction;
    /// the decision gates *all* of that instruction's activity statistics.
    pub fn sample_activity(&mut self) -> bool {
        let tick = self.sample_tick;
        self.sample_tick += 1;
        self.sampling.samples_at(tick)
    }

    /// Opens a named span (e.g. `"iteration[3]"`) at the current step.
    /// Closes any open phase frame first, so phases never span structural
    /// boundaries.
    pub fn enter_span(&mut self, name: &str) {
        self.close_phase_frame();
        if let Some(s) = &mut self.sink {
            s.enter_span(name, self.counts.iter().sum());
            self.span_depth += 1;
        }
    }

    /// Closes the innermost named span (and any phase frame inside it).
    /// If a phase is still set, its frame reopens at the outer level, so
    /// steps issued after a nested routine under the same statement stay
    /// attributed to it.
    pub fn exit_span(&mut self) {
        self.close_phase_frame();
        if self.span_depth > 0 {
            self.span_depth -= 1;
            let step = self.total_steps();
            if let Some(s) = &mut self.sink {
                s.exit_span(step);
            }
        }
        if let Some(p) = self.phase {
            self.open_phase_frame(p);
        }
    }

    fn open_phase_frame(&mut self, name: &str) {
        if let Some(s) = &mut self.sink {
            s.enter_span(name, self.counts.iter().sum());
            self.phase_open = true;
        }
    }

    fn close_phase_frame(&mut self) {
        if self.phase_open {
            self.phase_open = false;
            let step = self.total_steps();
            if let Some(s) = &mut self.sink {
                s.exit_span(step);
            }
        }
    }

    /// Enables instruction tracing (records every step until disabled).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Disables tracing and returns the collected trace, if any.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.trace.take().unwrap_or_default()
    }

    /// Records one instruction of class `op` (labelled with the current
    /// phase, if one is set).
    #[inline]
    pub fn record(&mut self, op: Op) {
        let phase = self.phase;
        self.record_observed(op, phase, None, None);
    }

    /// Records one instruction with an explicit label (kept only if
    /// tracing or observing; overrides the current phase).
    #[inline]
    pub fn record_labeled(&mut self, op: Op, label: Option<&str>) {
        self.record_observed(op, label, None, None);
    }

    /// Records one instruction with activity statistics attached: the
    /// fraction of PEs active under the instruction's mask and/or the
    /// number of bus clusters driven. The statistics flow to the trace
    /// sink only; primitives compute them only when
    /// [`Controller::observing`].
    pub fn record_observed(
        &mut self,
        op: Op,
        label: Option<&str>,
        occupancy: Option<f64>,
        clusters: Option<u64>,
    ) {
        let step = self.total_steps();
        self.counts[op.slot()] += 1;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry {
                op,
                step,
                label: label.map(str::to_owned),
            });
        }
        if let Some(s) = &mut self.sink {
            s.event(&Event {
                class: op.label(),
                step,
                dur: 1,
                label,
                occupancy,
                clusters,
            });
        }
        if let Some(m) = &mut self.metrics {
            m.inc(op.metric_name(), 1);
            m.inc("steps.total", 1);
        }
    }

    /// Sets (or clears) the phase label attached to subsequent records.
    /// Phases cost no steps; they surface in traces and, when a sink is
    /// installed, as the innermost span frame.
    pub fn set_phase(&mut self, phase: Option<&'static str>) {
        if self.phase != phase {
            self.close_phase_frame();
            if let Some(p) = phase {
                self.open_phase_frame(p);
            }
        }
        self.phase = phase;
    }

    /// The current phase label.
    pub fn phase(&self) -> Option<&'static str> {
        self.phase
    }

    /// Total instructions issued so far.
    pub fn total_steps(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Instructions of one class issued so far.
    pub fn steps(&self, op: Op) -> u64 {
        self.counts[op.slot()]
    }

    /// Snapshot of the current tallies.
    pub fn report(&self) -> StepReport {
        StepReport {
            counts: self.counts,
        }
    }

    /// Zeroes all counters (and drops any collected trace entries).
    ///
    /// The step clock restarts at 0, so install sinks *after* resetting —
    /// an already-installed sink would see time move backwards.
    pub fn reset(&mut self) {
        self.counts = [0; 5];
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }
}

/// Aggregates a trace into `(label, steps)` pairs in order of first
/// appearance; unlabelled instructions fall into the `"(unattributed)"`
/// bucket.
pub fn phase_histogram(trace: &[TraceEntry]) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = Vec::new();
    for entry in trace {
        let label = entry
            .label
            .clone()
            .unwrap_or_else(|| "(unattributed)".to_owned());
        match out.iter_mut().find(|(l, _)| *l == label) {
            Some((_, n)) => *n += 1,
            None => out.push((label, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_increments_counts() {
        let mut c = Controller::new();
        c.record(Op::Alu);
        c.record(Op::Alu);
        c.record(Op::Broadcast);
        assert_eq!(c.steps(Op::Alu), 2);
        assert_eq!(c.steps(Op::Broadcast), 1);
        assert_eq!(c.total_steps(), 3);
    }

    #[test]
    fn report_since_isolates_phase() {
        let mut c = Controller::new();
        c.record(Op::Alu);
        let before = c.report();
        c.record(Op::Shift);
        c.record(Op::BusOr);
        let phase = c.report().since(&before);
        assert_eq!(phase.total(), 2);
        assert_eq!(phase.count(Op::Alu), 0);
        assert_eq!(phase.count(Op::Shift), 1);
        assert_eq!(phase.count(Op::BusOr), 1);
    }

    #[test]
    #[should_panic(expected = "not a prefix")]
    fn since_rejects_non_prefix() {
        let mut c = Controller::new();
        c.record(Op::Alu);
        let later = c.report();
        c.reset();
        c.record(Op::Shift);
        let other = c.report();
        let _ = other.since(&later);
    }

    #[test]
    fn add_merges_reports() {
        let mut a = Controller::new();
        a.record(Op::Alu);
        let mut b = Controller::new();
        b.record(Op::GlobalOr);
        b.record(Op::Alu);
        let sum = a.report().add(&b.report());
        assert_eq!(sum.total(), 3);
        assert_eq!(sum.count(Op::Alu), 2);
    }

    #[test]
    fn trace_captures_labels_and_order() {
        let mut c = Controller::new();
        c.enable_trace();
        c.record_labeled(Op::Broadcast, Some("stmt 10"));
        c.record(Op::Alu);
        let t = c.take_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].op, Op::Broadcast);
        assert_eq!(t[0].step, 0);
        assert_eq!(t[0].label.as_deref(), Some("stmt 10"));
        assert_eq!(t[1].step, 1);
        assert_eq!(t[1].label, None);
    }

    #[test]
    fn phases_label_records_and_histogram_aggregates() {
        let mut c = Controller::new();
        c.enable_trace();
        c.set_phase(Some("init"));
        c.record(Op::Alu);
        c.record(Op::Broadcast);
        c.set_phase(Some("loop"));
        c.record(Op::BusOr);
        c.set_phase(None);
        c.record(Op::Alu);
        assert_eq!(c.phase(), None);
        let trace = c.take_trace();
        let hist = phase_histogram(&trace);
        assert_eq!(
            hist,
            vec![
                ("init".to_owned(), 2),
                ("loop".to_owned(), 1),
                ("(unattributed)".to_owned(), 1)
            ]
        );
    }

    #[test]
    fn phases_without_tracing_cost_nothing() {
        let mut c = Controller::new();
        c.set_phase(Some("x"));
        c.record(Op::Alu);
        assert_eq!(c.total_steps(), 1);
        assert!(c.take_trace().is_empty());
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = Controller::new();
        c.record(Op::Alu);
        c.reset();
        assert_eq!(c.total_steps(), 0);
    }

    #[test]
    fn checked_since_returns_none_instead_of_panicking() {
        let mut c = Controller::new();
        c.record(Op::Alu);
        let later = c.report();
        c.reset();
        c.record(Op::Shift);
        assert_eq!(c.report().checked_since(&later), None);
        c.record(Op::Alu);
        let diff = c.report().checked_since(&later).unwrap();
        assert_eq!(diff.count(Op::Shift), 1);
        assert_eq!(diff.count(Op::Alu), 0);
    }

    #[test]
    fn sink_sees_spans_phases_and_events() {
        let sink = ppa_obs::MemorySink::new();
        let mut c = Controller::new();
        c.install_sink(sink.clone());
        c.enter_span("mcp");
        c.set_phase(Some("setup"));
        c.record(Op::Alu);
        c.record(Op::Broadcast);
        c.enter_span("iteration[0]");
        c.set_phase(Some("stmt 11"));
        c.record(Op::BusOr);
        c.exit_span();
        c.set_phase(None);
        c.exit_span();
        let _ = c.take_sink();
        assert!(sink.balanced());
        assert_eq!(sink.total_steps(), c.total_steps());
        assert_eq!(
            sink.span_totals(),
            vec![
                ("mcp > setup".to_owned(), 2),
                ("mcp > iteration[0] > stmt 11".to_owned(), 1),
            ]
        );
    }

    #[test]
    fn take_sink_closes_open_frames() {
        let sink = ppa_obs::MemorySink::new();
        let mut c = Controller::new();
        c.install_sink(sink.clone());
        c.enter_span("left");
        c.set_phase(Some("open"));
        c.record(Op::Alu);
        assert!(!sink.balanced());
        let _ = c.take_sink();
        assert!(sink.balanced());
        assert!(!c.has_sink());
    }

    #[test]
    fn metrics_count_steps_by_class() {
        let mut c = Controller::new();
        c.enable_metrics();
        c.record(Op::Alu);
        c.record(Op::Alu);
        c.record(Op::GlobalOr);
        let m = c.take_metrics();
        assert_eq!(m.counter("steps.alu"), 2);
        assert_eq!(m.counter("steps.global-or"), 1);
        assert_eq!(m.counter("steps.total"), 3);
        for op in Op::ALL {
            assert_eq!(m.counter(op.metric_name()), c.report().count(op));
        }
    }

    #[test]
    fn clone_drops_sink_but_keeps_counters() {
        let sink = ppa_obs::MemorySink::new();
        let mut c = Controller::new();
        c.install_sink(sink);
        c.record(Op::Alu);
        let clone = c.clone();
        assert!(!clone.has_sink());
        assert_eq!(clone.total_steps(), 1);
    }

    #[test]
    fn repeated_set_phase_replaces_frame() {
        let sink = ppa_obs::MemorySink::new();
        let mut c = Controller::new();
        c.install_sink(sink.clone());
        c.set_phase(Some("a"));
        c.record(Op::Alu);
        c.set_phase(Some("b"));
        c.record(Op::Shift);
        c.set_phase(None);
        let _ = c.take_sink();
        assert!(sink.balanced());
        assert_eq!(
            sink.span_totals(),
            vec![("a".to_owned(), 1), ("b".to_owned(), 1)]
        );
    }

    #[test]
    fn display_lists_nonzero_classes() {
        let mut c = Controller::new();
        c.record(Op::Alu);
        c.record(Op::BusOr);
        let s = c.report().to_string();
        assert!(s.contains("alu: 1"), "{s}");
        assert!(s.contains("bus-or: 1"), "{s}");
        assert!(!s.contains("shift"), "{s}");
    }
}
