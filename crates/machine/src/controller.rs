//! The SIMD program controller: instruction classes and step accounting.
//!
//! The PPA executes one controller instruction per time step; all PEs obey
//! it simultaneously (SIMD). The paper's complexity analysis counts these
//! steps: "considering that all the statements have O(1) complexity, and
//! that a h-iteration loop must be executed, the two \[min\] algorithms have
//! O(h) complexity". The [`Controller`] is the measuring instrument that
//! turns those claims into reproducible numbers: every primitive issued on
//! a [`Machine`](crate::Machine) records exactly one step, classified by
//! [`Op`], and a [`StepReport`] snapshots the tallies.

use std::fmt;

/// Classification of controller instructions, for step breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A parallel ALU/assignment operation (elementwise compute, masked
    /// writes, immediate loads).
    Alu,
    /// A nearest-neighbour `shift` transfer.
    Shift,
    /// A reconfigurable-bus `broadcast`.
    Broadcast,
    /// A wired-OR over bus clusters.
    BusOr,
    /// The controller's global-OR ("did any PE raise its flag?") used for
    /// data-dependent loop exits such as the MCP do-while condition.
    GlobalOr,
}

impl Op {
    /// All instruction classes, in the order used by reports.
    pub const ALL: [Op; 5] = [Op::Alu, Op::Shift, Op::Broadcast, Op::BusOr, Op::GlobalOr];

    fn slot(self) -> usize {
        match self {
            Op::Alu => 0,
            Op::Shift => 1,
            Op::Broadcast => 2,
            Op::BusOr => 3,
            Op::GlobalOr => 4,
        }
    }

    /// Short lowercase label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Op::Alu => "alu",
            Op::Shift => "shift",
            Op::Broadcast => "broadcast",
            Op::BusOr => "bus-or",
            Op::GlobalOr => "global-or",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Step tallies of a controller, frozen at some instant.
///
/// Subtracting two reports (`later.since(&earlier)`) isolates a phase, which
/// is how the experiment harness attributes steps to initialization,
/// iteration bodies, and `min`/`selected_min` invocations separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepReport {
    counts: [u64; 5],
}

impl StepReport {
    /// Steps recorded for one instruction class.
    pub fn count(&self, op: Op) -> u64 {
        self.counts[op.slot()]
    }

    /// Total steps across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The difference `self - earlier`, attributing steps to a phase.
    ///
    /// # Panics
    /// Panics if `earlier` has more steps than `self` in any class (reports
    /// must come from the same monotonically counting controller).
    pub fn since(&self, earlier: &StepReport) -> StepReport {
        let mut counts = [0u64; 5];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = self.counts[i]
                .checked_sub(earlier.counts[i])
                .expect("StepReport::since: earlier report is not a prefix of self");
        }
        StepReport { counts }
    }

    /// Adds another report's tallies to this one (for aggregating phases).
    pub fn add(&self, other: &StepReport) -> StepReport {
        let mut counts = [0u64; 5];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = self.counts[i] + other.counts[i];
        }
        StepReport { counts }
    }
}

impl fmt::Display for StepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} steps (", self.total())?;
        let mut first = true;
        for op in Op::ALL {
            let c = self.count(op);
            if c > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{}: {}", op.label(), c)?;
                first = false;
            }
        }
        write!(f, ")")
    }
}

/// One trace record: which instruction ran, with an optional label supplied
/// by the issuing primitive (e.g. `"mcp: statement 10"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Instruction class.
    pub op: Op,
    /// Sequence number (0-based step index at which it ran).
    pub step: u64,
    /// Human-readable label, if tracing with labels.
    pub label: Option<String>,
}

/// The SIMD program controller: counts every issued instruction and can
/// optionally keep a full trace.
#[derive(Debug, Clone, Default)]
pub struct Controller {
    counts: [u64; 5],
    trace: Option<Vec<TraceEntry>>,
    /// Label attached to every recorded instruction while set (used by
    /// algorithms to attribute steps to their phases, e.g. `"stmt 11"`).
    phase: Option<&'static str>,
}

impl Controller {
    /// A fresh controller with zeroed counters and tracing disabled.
    pub fn new() -> Self {
        Controller::default()
    }

    /// Enables instruction tracing (records every step until disabled).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Disables tracing and returns the collected trace, if any.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.trace.take().unwrap_or_default()
    }

    /// Records one instruction of class `op` (labelled with the current
    /// phase, if one is set).
    #[inline]
    pub fn record(&mut self, op: Op) {
        let phase = self.phase;
        self.record_labeled(op, phase);
    }

    /// Records one instruction with an explicit label (kept only if
    /// tracing; overrides the current phase).
    #[inline]
    pub fn record_labeled(&mut self, op: Op, label: Option<&str>) {
        let step = self.total_steps();
        self.counts[op.slot()] += 1;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry {
                op,
                step,
                label: label.map(str::to_owned),
            });
        }
    }

    /// Sets (or clears) the phase label attached to subsequent records.
    /// Phases cost nothing and only surface in traces.
    pub fn set_phase(&mut self, phase: Option<&'static str>) {
        self.phase = phase;
    }

    /// The current phase label.
    pub fn phase(&self) -> Option<&'static str> {
        self.phase
    }

    /// Total instructions issued so far.
    pub fn total_steps(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Instructions of one class issued so far.
    pub fn steps(&self, op: Op) -> u64 {
        self.counts[op.slot()]
    }

    /// Snapshot of the current tallies.
    pub fn report(&self) -> StepReport {
        StepReport { counts: self.counts }
    }

    /// Zeroes all counters (and drops any collected trace entries).
    pub fn reset(&mut self) {
        self.counts = [0; 5];
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }
}

/// Aggregates a trace into `(label, steps)` pairs in order of first
/// appearance; unlabelled instructions fall into the `"(unattributed)"`
/// bucket.
pub fn phase_histogram(trace: &[TraceEntry]) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = Vec::new();
    for entry in trace {
        let label = entry
            .label
            .clone()
            .unwrap_or_else(|| "(unattributed)".to_owned());
        match out.iter_mut().find(|(l, _)| *l == label) {
            Some((_, n)) => *n += 1,
            None => out.push((label, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_increments_counts() {
        let mut c = Controller::new();
        c.record(Op::Alu);
        c.record(Op::Alu);
        c.record(Op::Broadcast);
        assert_eq!(c.steps(Op::Alu), 2);
        assert_eq!(c.steps(Op::Broadcast), 1);
        assert_eq!(c.total_steps(), 3);
    }

    #[test]
    fn report_since_isolates_phase() {
        let mut c = Controller::new();
        c.record(Op::Alu);
        let before = c.report();
        c.record(Op::Shift);
        c.record(Op::BusOr);
        let phase = c.report().since(&before);
        assert_eq!(phase.total(), 2);
        assert_eq!(phase.count(Op::Alu), 0);
        assert_eq!(phase.count(Op::Shift), 1);
        assert_eq!(phase.count(Op::BusOr), 1);
    }

    #[test]
    #[should_panic(expected = "not a prefix")]
    fn since_rejects_non_prefix() {
        let mut c = Controller::new();
        c.record(Op::Alu);
        let later = c.report();
        c.reset();
        c.record(Op::Shift);
        let other = c.report();
        let _ = other.since(&later);
    }

    #[test]
    fn add_merges_reports() {
        let mut a = Controller::new();
        a.record(Op::Alu);
        let mut b = Controller::new();
        b.record(Op::GlobalOr);
        b.record(Op::Alu);
        let sum = a.report().add(&b.report());
        assert_eq!(sum.total(), 3);
        assert_eq!(sum.count(Op::Alu), 2);
    }

    #[test]
    fn trace_captures_labels_and_order() {
        let mut c = Controller::new();
        c.enable_trace();
        c.record_labeled(Op::Broadcast, Some("stmt 10"));
        c.record(Op::Alu);
        let t = c.take_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].op, Op::Broadcast);
        assert_eq!(t[0].step, 0);
        assert_eq!(t[0].label.as_deref(), Some("stmt 10"));
        assert_eq!(t[1].step, 1);
        assert_eq!(t[1].label, None);
    }

    #[test]
    fn phases_label_records_and_histogram_aggregates() {
        let mut c = Controller::new();
        c.enable_trace();
        c.set_phase(Some("init"));
        c.record(Op::Alu);
        c.record(Op::Broadcast);
        c.set_phase(Some("loop"));
        c.record(Op::BusOr);
        c.set_phase(None);
        c.record(Op::Alu);
        assert_eq!(c.phase(), None);
        let trace = c.take_trace();
        let hist = phase_histogram(&trace);
        assert_eq!(
            hist,
            vec![
                ("init".to_owned(), 2),
                ("loop".to_owned(), 1),
                ("(unattributed)".to_owned(), 1)
            ]
        );
    }

    #[test]
    fn phases_without_tracing_cost_nothing() {
        let mut c = Controller::new();
        c.set_phase(Some("x"));
        c.record(Op::Alu);
        assert_eq!(c.total_steps(), 1);
        assert!(c.take_trace().is_empty());
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = Controller::new();
        c.record(Op::Alu);
        c.reset();
        assert_eq!(c.total_steps(), 0);
    }

    #[test]
    fn display_lists_nonzero_classes() {
        let mut c = Controller::new();
        c.record(Op::Alu);
        c.record(Op::BusOr);
        let s = c.report().to_string();
        assert!(s.contains("alu: 1"), "{s}");
        assert!(s.contains("bus-or: 1"), "{s}");
        assert!(!s.contains("shift"), "{s}");
    }
}
