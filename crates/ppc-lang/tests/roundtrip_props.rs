//! Generative round-trip property tests: arbitrary ASTs survive
//! `print -> lex -> parse` structurally intact.
//!
//! This drives the printer and parser against each other over the whole
//! grammar (not just the hand-written corpus): any tree the printer can
//! emit must re-parse to the same tree, which pins operator precedence,
//! statement nesting (including the dangling-`elsewhere` rule), literal
//! forms and call syntax all at once. Semantic checking is bypassed —
//! these trees reference undeclared names freely; only syntax is under
//! test.

use ppc_lang::ast::*;
use ppc_lang::error::Span;
use ppc_lang::printer::{print_program, strip_spans};
use ppc_lang::{lexer, parser};
use proptest::prelude::*;

fn z() -> Span {
    Span::default()
}

fn ident() -> impl Strategy<Value = String> {
    // Avoid keywords and builtin constants.
    "[a-z][a-z0-9_]{0,6}".prop_filter("keyword", |s| {
        ![
            "parallel",
            "int",
            "logical",
            "where",
            "elsewhere",
            "do",
            "while",
            "for",
            "if",
            "else",
            "true",
            "false",
        ]
        .contains(&s.as_str())
    })
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Rem),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|v| Expr::Int(v, z())),
        any::<bool>().prop_map(|b| Expr::Bool(b, z())),
        ident().prop_map(|n| Expr::Ident(n, z())),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
                span: z(),
            }),
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner.clone()).prop_map(|(op, e)| {
                Expr::Unary {
                    op,
                    operand: Box::new(e),
                    span: z(),
                }
            }),
            (ident(), proptest::collection::vec(inner, 0..3)).prop_map(|(name, args)| {
                Expr::Call {
                    name,
                    args,
                    span: z(),
                }
            }),
        ]
    })
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        Just(Stmt::Empty),
        (ident(), expr()).prop_map(|(name, value)| Stmt::Assign {
            name,
            value,
            span: z(),
        }),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone().prop_map(Item::Stmt), 0..3)
                .prop_map(Stmt::Block),
            // NOTE: a `where` with an else-branch whose then-branch is
            // itself a where would re-associate under the dangling-
            // elsewhere rule, so then-branches are wrapped in blocks.
            (expr(), inner.clone(), proptest::option::of(inner.clone())).prop_map(
                |(cond, t, e)| Stmt::Where {
                    cond,
                    then_branch: Box::new(Stmt::Block(vec![Item::Stmt(t)])),
                    else_branch: e.map(Box::new),
                    span: z(),
                }
            ),
            (expr(), inner.clone(), proptest::option::of(inner.clone())).prop_map(
                |(cond, t, e)| Stmt::If {
                    cond,
                    then_branch: Box::new(Stmt::Block(vec![Item::Stmt(t)])),
                    else_branch: e.map(Box::new),
                    span: z(),
                }
            ),
            (expr(), inner.clone()).prop_map(|(cond, body)| Stmt::While {
                cond,
                body: Box::new(body),
                span: z(),
            }),
            (inner.clone(), expr()).prop_map(|(body, cond)| Stmt::DoWhile {
                body: Box::new(body),
                cond,
                span: z(),
            }),
            (
                proptest::option::of((ident(), expr())),
                proptest::option::of(expr()),
                proptest::option::of((ident(), expr())),
                inner,
            )
                .prop_map(|(init, cond, step, body)| Stmt::For {
                    init,
                    cond,
                    step,
                    body: Box::new(body),
                    span: z(),
                }),
        ]
    })
}

fn program() -> impl Strategy<Value = Program> {
    let decl = (
        any::<bool>(),
        any::<bool>(),
        ident(),
        proptest::option::of(expr()),
    )
        .prop_map(|(parallel, is_int, name, init)| {
            Item::Decl(Decl {
                parallel,
                ty: if is_int {
                    BaseType::Int
                } else {
                    BaseType::Logical
                },
                name,
                init,
                span: z(),
            })
        });
    proptest::collection::vec(prop_oneof![decl, stmt().prop_map(Item::Stmt)], 0..6)
        .prop_map(|items| Program { items })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_then_parse_is_identity(p in program()) {
        let printed = print_program(&p);
        let tokens = lexer::lex(&printed)
            .unwrap_or_else(|e| panic!("lex failed: {e}\n--- printed ---\n{printed}"));
        let reparsed = parser::parse_tokens(&tokens)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n--- printed ---\n{printed}"));
        prop_assert_eq!(
            strip_spans(&p),
            strip_spans(&reparsed),
            "round trip changed the AST\n--- printed ---\n{}",
            printed
        );
        // And the printer is a fixpoint.
        prop_assert_eq!(printed, print_program(&reparsed));
    }
}
