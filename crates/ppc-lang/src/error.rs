//! Diagnostics with source positions.

use std::fmt;

/// A position in PPC source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Which phase produced the diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic checking.
    Sema,
    /// Execution.
    Runtime,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "type",
            Phase::Runtime => "runtime",
        })
    }
}

/// A PPC front-end or runtime diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Phase that raised it.
    pub phase: Phase,
    /// Source position (best effort for runtime errors).
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

impl LangError {
    /// Creates a diagnostic.
    pub fn new(phase: Phase, span: Span, message: impl Into<String>) -> Self {
        LangError {
            phase,
            span,
            message: message.into(),
        }
    }

    /// Lexer diagnostic.
    pub fn lex(span: Span, message: impl Into<String>) -> Self {
        LangError::new(Phase::Lex, span, message)
    }

    /// Parser diagnostic.
    pub fn parse(span: Span, message: impl Into<String>) -> Self {
        LangError::new(Phase::Parse, span, message)
    }

    /// Type-checker diagnostic.
    pub fn sema(span: Span, message: impl Into<String>) -> Self {
        LangError::new(Phase::Sema, span, message)
    }

    /// Runtime diagnostic.
    pub fn runtime(span: Span, message: impl Into<String>) -> Self {
        LangError::new(Phase::Runtime, span, message)
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_span() {
        let e = LangError::sema(Span::new(3, 14), "mismatched types");
        assert_eq!(e.to_string(), "type error at 3:14: mismatched types");
    }

    #[test]
    fn constructors_tag_phases() {
        assert_eq!(LangError::lex(Span::default(), "x").phase, Phase::Lex);
        assert_eq!(LangError::parse(Span::default(), "x").phase, Phase::Parse);
        assert_eq!(
            LangError::runtime(Span::default(), "x").phase,
            Phase::Runtime
        );
    }
}
