//! Pretty-printer for PPC programs.
//!
//! Produces canonical source from an AST. Guarantees the round-trip law
//! `parse(print(p)) == parse(print(parse(print(p))))` — printing is
//! injective up to re-parsing — which the tests check on the embedded
//! paper programs and a corpus of constructs. Useful for diagnostics
//! (echoing the checker's view of a program) and for testing the parser
//! itself.

use crate::ast::*;

/// Pretty-prints a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for item in &p.items {
        print_item(item, 0, &mut out);
    }
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_item(item: &Item, level: usize, out: &mut String) {
    match item {
        Item::Decl(d) => {
            indent(level, out);
            if d.parallel {
                out.push_str("parallel ");
            }
            out.push_str(match d.ty {
                BaseType::Int => "int",
                BaseType::Logical => "logical",
            });
            out.push(' ');
            out.push_str(&d.name);
            if let Some(init) = &d.init {
                out.push_str(" = ");
                out.push_str(&print_expr(init));
            }
            out.push_str(";\n");
        }
        Item::Stmt(s) => print_stmt(s, level, out),
    }
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    match stmt {
        Stmt::Empty => {
            indent(level, out);
            out.push_str(";\n");
        }
        Stmt::Block(items) => {
            indent(level, out);
            out.push_str("{\n");
            for item in items {
                print_item(item, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Assign { name, value, .. } => {
            indent(level, out);
            out.push_str(name);
            out.push_str(" = ");
            out.push_str(&print_expr(value));
            out.push_str(";\n");
        }
        Stmt::Where {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            indent(level, out);
            out.push_str("where (");
            out.push_str(&print_expr(cond));
            out.push_str(")\n");
            print_stmt(then_branch, level + 1, out);
            if let Some(e) = else_branch {
                indent(level, out);
                out.push_str("elsewhere\n");
                print_stmt(e, level + 1, out);
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            indent(level, out);
            out.push_str("if (");
            out.push_str(&print_expr(cond));
            out.push_str(")\n");
            print_stmt(then_branch, level + 1, out);
            if let Some(e) = else_branch {
                indent(level, out);
                out.push_str("else\n");
                print_stmt(e, level + 1, out);
            }
        }
        Stmt::While { cond, body, .. } => {
            indent(level, out);
            out.push_str("while (");
            out.push_str(&print_expr(cond));
            out.push_str(")\n");
            print_stmt(body, level + 1, out);
        }
        Stmt::DoWhile { body, cond, .. } => {
            indent(level, out);
            out.push_str("do\n");
            print_stmt(body, level + 1, out);
            indent(level, out);
            out.push_str("while (");
            out.push_str(&print_expr(cond));
            out.push_str(");\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            indent(level, out);
            out.push_str("for (");
            if let Some((n, e)) = init {
                out.push_str(n);
                out.push_str(" = ");
                out.push_str(&print_expr(e));
            }
            out.push_str("; ");
            if let Some(c) = cond {
                out.push_str(&print_expr(c));
            }
            out.push_str("; ");
            if let Some((n, e)) = step {
                out.push_str(n);
                out.push_str(" = ");
                out.push_str(&print_expr(e));
            }
            out.push_str(")\n");
            print_stmt(body, level + 1, out);
        }
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Pretty-prints one expression (fully parenthesized below the top
/// level, so precedence never needs to be reconstructed).
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Int(v, _) => v.to_string(),
        Expr::Bool(b, _) => b.to_string(),
        Expr::Ident(n, _) => n.clone(),
        Expr::Call { name, args, .. } => {
            let inner: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", inner.join(", "))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            format!(
                "({} {} {})",
                print_expr(lhs),
                binop_str(*op),
                print_expr(rhs)
            )
        }
        Expr::Unary { op, operand, .. } => {
            let o = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{o}({})", print_expr(operand))
        }
    }
}

/// Strips spans so ASTs can be compared structurally after a
/// print/re-parse round trip.
pub fn strip_spans(p: &Program) -> Program {
    fn expr(e: &Expr) -> Expr {
        let z = crate::error::Span::default();
        match e {
            Expr::Int(v, _) => Expr::Int(*v, z),
            Expr::Bool(b, _) => Expr::Bool(*b, z),
            Expr::Ident(n, _) => Expr::Ident(n.clone(), z),
            Expr::Call { name, args, .. } => Expr::Call {
                name: name.clone(),
                args: args.iter().map(expr).collect(),
                span: z,
            },
            Expr::Binary { op, lhs, rhs, .. } => Expr::Binary {
                op: *op,
                lhs: Box::new(expr(lhs)),
                rhs: Box::new(expr(rhs)),
                span: z,
            },
            Expr::Unary { op, operand, .. } => Expr::Unary {
                op: *op,
                operand: Box::new(expr(operand)),
                span: z,
            },
        }
    }
    fn stmt(s: &Stmt) -> Stmt {
        let z = crate::error::Span::default();
        match s {
            Stmt::Empty => Stmt::Empty,
            Stmt::Block(items) => Stmt::Block(items.iter().map(item).collect()),
            Stmt::Assign { name, value, .. } => Stmt::Assign {
                name: name.clone(),
                value: expr(value),
                span: z,
            },
            Stmt::Where {
                cond,
                then_branch,
                else_branch,
                ..
            } => Stmt::Where {
                cond: expr(cond),
                then_branch: Box::new(stmt(then_branch)),
                else_branch: else_branch.as_ref().map(|e| Box::new(stmt(e))),
                span: z,
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => Stmt::If {
                cond: expr(cond),
                then_branch: Box::new(stmt(then_branch)),
                else_branch: else_branch.as_ref().map(|e| Box::new(stmt(e))),
                span: z,
            },
            Stmt::While { cond, body, .. } => Stmt::While {
                cond: expr(cond),
                body: Box::new(stmt(body)),
                span: z,
            },
            Stmt::DoWhile { body, cond, .. } => Stmt::DoWhile {
                body: Box::new(stmt(body)),
                cond: expr(cond),
                span: z,
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => Stmt::For {
                init: init.as_ref().map(|(n, e)| (n.clone(), expr(e))),
                cond: cond.as_ref().map(expr),
                step: step.as_ref().map(|(n, e)| (n.clone(), expr(e))),
                body: Box::new(stmt(body)),
                span: z,
            },
        }
    }
    fn item(i: &Item) -> Item {
        match i {
            Item::Decl(d) => Item::Decl(Decl {
                parallel: d.parallel,
                ty: d.ty,
                name: d.name.clone(),
                init: d.init.as_ref().map(expr),
                span: crate::error::Span::default(),
            }),
            Item::Stmt(s) => Item::Stmt(stmt(s)),
        }
    }
    Program {
        items: p.items.iter().map(item).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn round_trips(src: &str) {
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(
            strip_spans(&p1),
            strip_spans(&p2),
            "round trip changed the AST:\n{printed}"
        );
        // Printing is a fixpoint after one round.
        assert_eq!(printed, print_program(&p2));
    }

    #[test]
    fn paper_programs_round_trip() {
        round_trips(crate::programs::MINIMUM_COST_PATH);
        round_trips(crate::programs::MIN_ROUTINE);
        round_trips(crate::programs::WIDEST_PATH);
    }

    #[test]
    fn construct_corpus_round_trips() {
        round_trips("parallel int x; x = 1 + 2 * 3 - 4;");
        round_trips("parallel logical l; l = !(ROW == COL) && (COL < N);");
        round_trips("int j; for (j = 0; j < 10; j = j + 1) ;");
        round_trips("parallel int x; where (ROW == 0) x = 1; elsewhere { x = 2; x = x + 1; }");
        round_trips("logical g; do { g = any(ROW == 0); } while (g);");
        round_trips("int s; if (s == 0) s = 1; else s = 2;");
        round_trips("parallel int x; x = broadcast(x, opposite(WEST), COL == N - 1);");
        round_trips("parallel int x; x = -(-3); x = --3;");
        round_trips("while (false) { ; }");
        round_trips("parallel int x; x = selected_min(COL, WEST, COL == N - 1, x == 0);");
    }

    #[test]
    fn printer_parenthesizes_unambiguously() {
        // (a - b) - c vs a - (b - c) must print differently.
        let left = parse("int a; a = a - a - a;").unwrap(); // left assoc
        let printed = print_program(&left);
        assert!(printed.contains("((a - a) - a)"), "{printed}");
    }

    #[test]
    fn strip_spans_ignores_positions_only() {
        let a = parse("int x;\nx = 1;").unwrap();
        let b = parse("int x; x = 1;").unwrap();
        assert_ne!(a, b, "spans differ before stripping");
        assert_eq!(strip_spans(&a), strip_spans(&b));
    }
}
