//! Abstract syntax of the PPC subset.

use crate::error::Span;

/// A full PPC program: top-level items executed in order.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level declarations and statements.
    pub items: Vec<Item>,
}

/// A top-level or block-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Variable declaration.
    Decl(Decl),
    /// Statement.
    Stmt(Stmt),
}

/// Base types of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseType {
    /// `int` — `h`-bit unsigned integers on PEs, `i64` in the controller.
    Int,
    /// `logical` — booleans.
    Logical,
}

/// A variable declaration, e.g. `parallel int SOW;` or
/// `logical go = true;`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// `true` for the `parallel` memorization class.
    pub parallel: bool,
    /// Base type.
    pub ty: BaseType,
    /// Variable name.
    pub name: String,
    /// Optional initializer expression.
    pub init: Option<Expr>,
    /// Position of the declaration.
    pub span: Span,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `{ ... }` with its own lexical scope.
    Block(Vec<Item>),
    /// `name = expr;`
    Assign {
        /// Target variable.
        name: String,
        /// Right-hand side.
        value: Expr,
        /// Position of the target.
        span: Span,
    },
    /// `where (cond) then [elsewhere other]` — SIMD activity masking.
    Where {
        /// Parallel logical condition.
        cond: Expr,
        /// Active-set statement.
        then_branch: Box<Stmt>,
        /// Complement-set statement.
        else_branch: Option<Box<Stmt>>,
        /// Position of the `where`.
        span: Span,
    },
    /// `if (cond) then [else other]` — controller-side branch.
    If {
        /// Scalar logical condition.
        cond: Expr,
        /// Taken branch.
        then_branch: Box<Stmt>,
        /// Otherwise branch.
        else_branch: Option<Box<Stmt>>,
        /// Position of the `if`.
        span: Span,
    },
    /// `while (cond) body` — controller-side loop.
    While {
        /// Scalar logical condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
        /// Position of the `while`.
        span: Span,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body (runs at least once).
        body: Box<Stmt>,
        /// Scalar logical condition.
        cond: Expr,
        /// Position of the `do`.
        span: Span,
    },
    /// `for (init; cond; step) body` — controller-side counted loop.
    For {
        /// Optional `name = expr` initializer.
        init: Option<(String, Expr)>,
        /// Optional scalar condition (absent = infinite).
        cond: Option<Expr>,
        /// Optional `name = expr` step.
        step: Option<(String, Expr)>,
        /// Loop body.
        body: Box<Stmt>,
        /// Position of the `for`.
        span: Span,
    },
    /// Lone `;`.
    Empty,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (saturating at `MAXINT` on parallel operands).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `%`.
    Rem,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    And,
    /// `||`.
    Or,
}

impl BinOp {
    /// Whether this operator takes integer operands.
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Rem)
    }

    /// Whether this operator compares integers (result logical).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether this operator combines logicals.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`.
    Neg,
    /// `!`.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// `true`/`false` literal.
    Bool(bool, Span),
    /// Variable or builtin-constant reference (`ROW`, `COL`, `N`, `H`,
    /// `MAXINT`, direction names, or a declared variable).
    Ident(String, Span),
    /// Builtin call, e.g. `broadcast(SOW, SOUTH, ROW == d)`.
    Call {
        /// Builtin name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Position of the callee.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Position of the operator.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Position of the operator.
        span: Span,
    },
}

impl Expr {
    /// Source position of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Bool(_, s)
            | Expr::Ident(_, s)
            | Expr::Call { span: s, .. }
            | Expr::Binary { span: s, .. }
            | Expr::Unary { span: s, .. } => *s,
        }
    }
}
