//! Token definitions.

use crate::error::Span;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals & identifiers
    /// Integer literal.
    Int(i64),
    /// Identifier (also carries keyword-like builtin names).
    Ident(String),

    // Keywords
    /// `parallel` storage class.
    Parallel,
    /// `int` type.
    KwInt,
    /// `logical` type.
    KwLogical,
    /// `where`.
    Where,
    /// `elsewhere`.
    Elsewhere,
    /// `do`.
    Do,
    /// `while`.
    While,
    /// `for`.
    For,
    /// `if`.
    If,
    /// `else`.
    Else,
    /// `true`.
    True,
    /// `false`.
    False,

    // Punctuation & operators
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `=`.
    Assign,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `%`.
    Percent,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Bang,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Parallel => write!(f, "parallel"),
            TokenKind::KwInt => write!(f, "int"),
            TokenKind::KwLogical => write!(f, "logical"),
            TokenKind::Where => write!(f, "where"),
            TokenKind::Elsewhere => write!(f, "elsewhere"),
            TokenKind::Do => write!(f, "do"),
            TokenKind::While => write!(f, "while"),
            TokenKind::For => write!(f, "for"),
            TokenKind::If => write!(f, "if"),
            TokenKind::Else => write!(f, "else"),
            TokenKind::True => write!(f, "true"),
            TokenKind::False => write!(f, "false"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Assign => write!(f, "="),
            TokenKind::Eq => write!(f, "=="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Bang => write!(f, "!"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind (and payload for literals/identifiers).
    pub kind: TokenKind,
    /// Position of the first character.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}
