//! The PPC tree-walking interpreter.
//!
//! Executes a checked [`crate::ast::Program`] against a live
//! [`Ppa`] runtime. Faithful SIMD semantics:
//!
//! * every *parallel* operation issues costed machine instructions, so an
//!   interpreted program and its hand-written Rust equivalent report the
//!   same order of controller steps;
//! * controller-resident (scalar) arithmetic and branching is free — the
//!   paper's complexity model counts array instructions, not controller
//!   bookkeeping;
//! * `where` masks gate parallel *assignments* only; expressions evaluate
//!   on all PEs (communication included), exactly like the hardware.
//!
//! Host integration: [`Interpreter::bind`] presets a variable before the
//! run; a later declaration of that name *without* initializer adopts the
//! preset value (this is how `W`, `d`, ... enter a program), and outputs
//! are read back with the `get_*` accessors after [`Interpreter::run`].

use crate::ast::*;
use crate::error::{LangError, Span};
use ppa_machine::Direction;
use ppa_ppc::{Parallel, Ppa, PpcError};
use std::collections::HashMap;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Controller integer.
    Int(i64),
    /// Controller logical.
    Bool(bool),
    /// Direction constant.
    Dir(Direction),
    /// Parallel integer plane.
    PInt(Parallel<i64>),
    /// Parallel logical plane.
    PBool(Parallel<bool>),
}

impl Value {
    fn describe(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "logical",
            Value::Dir(_) => "direction",
            Value::PInt(_) => "parallel int",
            Value::PBool(_) => "parallel logical",
        }
    }
}

/// The interpreter: a PPA runtime plus scopes and the activity-mask stack.
pub struct Interpreter<'a> {
    ppa: &'a mut Ppa,
    scopes: Vec<HashMap<String, Value>>,
    masks: Vec<Parallel<bool>>,
    preset: HashMap<String, Value>,
}

type IResult<T> = Result<T, LangError>;

fn rt(span: Span, e: PpcError) -> LangError {
    LangError::runtime(span, e.to_string())
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter over a runtime.
    pub fn new(ppa: &'a mut Ppa) -> Self {
        Interpreter {
            ppa,
            scopes: vec![HashMap::new()],
            masks: Vec::new(),
            preset: HashMap::new(),
        }
    }

    /// Presets `name`; adopted by a later initializer-less declaration.
    pub fn bind(&mut self, name: impl Into<String>, value: Value) {
        self.preset.insert(name.into(), value);
    }

    /// Borrow the underlying runtime (e.g. for step reports).
    pub fn ppa(&self) -> &Ppa {
        self.ppa
    }

    /// Runs a program to completion. Global declarations stay readable
    /// through the accessors afterwards.
    pub fn run(&mut self, program: &Program) -> IResult<()> {
        for item in &program.items {
            self.item(item)?;
        }
        Ok(())
    }

    // ----- result accessors --------------------------------------------------

    fn get(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    /// Reads a global `parallel int` after the run.
    pub fn get_parallel_int(&self, name: &str) -> Option<&Parallel<i64>> {
        match self.get(name) {
            Some(Value::PInt(p)) => Some(p),
            _ => None,
        }
    }

    /// Reads a global `parallel logical` after the run.
    pub fn get_parallel_bool(&self, name: &str) -> Option<&Parallel<bool>> {
        match self.get(name) {
            Some(Value::PBool(p)) => Some(p),
            _ => None,
        }
    }

    /// Reads a global scalar `int` after the run.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        match self.get(name) {
            Some(Value::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads a global scalar `logical` after the run.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        match self.get(name) {
            Some(Value::Bool(v)) => Some(*v),
            _ => None,
        }
    }

    // ----- execution -----------------------------------------------------------

    fn item(&mut self, item: &Item) -> IResult<()> {
        match item {
            Item::Decl(d) => self.decl(d),
            Item::Stmt(s) => self.stmt(s),
        }
    }

    fn decl(&mut self, d: &Decl) -> IResult<()> {
        let value = if let Some(init) = &d.init {
            let v = self.eval(init)?;
            self.coerce_for_target(d.parallel, d.ty, v, init.span())?
        } else if let Some(pre) = self.preset.get(&d.name).cloned() {
            // Host-supplied input; must match the declared type.
            let matches = matches!(
                (&pre, d.parallel, d.ty),
                (Value::PInt(_), true, BaseType::Int)
                    | (Value::PBool(_), true, BaseType::Logical)
                    | (Value::Int(_), false, BaseType::Int)
                    | (Value::Bool(_), false, BaseType::Logical)
            );
            if !matches {
                return Err(LangError::runtime(
                    d.span,
                    format!(
                        "host binding for `{}` is {}, declaration wants {}{:?}",
                        d.name,
                        pre.describe(),
                        if d.parallel { "parallel " } else { "" },
                        d.ty
                    ),
                ));
            }
            pre
        } else {
            // PPC leaves these uninitialized; the simulator zero-fills.
            match (d.parallel, d.ty) {
                (true, BaseType::Int) => Value::PInt(self.ppa.constant(0i64)),
                (true, BaseType::Logical) => Value::PBool(self.ppa.constant(false)),
                (false, BaseType::Int) => Value::Int(0),
                (false, BaseType::Logical) => Value::Bool(false),
            }
        };
        // The scope stack is structurally non-empty (the global scope is
        // pushed at construction and every pop pairs a push), but a
        // serving worker must never die on a malformed program: report
        // the impossible state as a runtime diagnostic instead.
        let Some(scope) = self.scopes.last_mut() else {
            return Err(LangError::runtime(
                d.span,
                format!("declaration of `{}` outside any scope", d.name),
            ));
        };
        scope.insert(d.name.clone(), value);
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> IResult<()> {
        match stmt {
            Stmt::Block(items) => {
                self.scopes.push(HashMap::new());
                let r = items.iter().try_for_each(|it| self.item(it));
                self.scopes.pop();
                r
            }
            Stmt::Empty => Ok(()),
            Stmt::Assign { name, value, span } => {
                let v = self.eval(value)?;
                self.assign(name, v, *span)
            }
            Stmt::Where {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                let c = match self.eval(cond)? {
                    Value::PBool(p) => p,
                    other => {
                        return Err(LangError::runtime(
                            cond.span(),
                            format!(
                                "`where` condition must be parallel logical, got {}",
                                other.describe()
                            ),
                        ))
                    }
                };
                self.push_mask(&c, *span)?;
                let r = self.stmt(then_branch);
                self.masks.pop();
                r?;
                if let Some(else_b) = else_branch {
                    let nc = self.ppa.not(&c).map_err(|e| rt(*span, e))?;
                    self.push_mask(&nc, *span)?;
                    let r = self.stmt(else_b);
                    self.masks.pop();
                    r?;
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                if self.scalar_bool(cond)? {
                    self.stmt(then_branch)
                } else if let Some(e) = else_branch {
                    self.stmt(e)
                } else {
                    Ok(())
                }
            }
            Stmt::While { cond, body, .. } => {
                while self.scalar_bool(cond)? {
                    self.stmt(body)?;
                }
                Ok(())
            }
            Stmt::DoWhile { body, cond, .. } => loop {
                self.stmt(body)?;
                if !self.scalar_bool(cond)? {
                    return Ok(());
                }
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                if let Some((name, value)) = init {
                    let v = self.eval(value)?;
                    self.assign(name, v, *span)?;
                }
                loop {
                    if let Some(c) = cond {
                        if !self.scalar_bool(c)? {
                            return Ok(());
                        }
                    }
                    self.stmt(body)?;
                    if let Some((name, value)) = step {
                        let v = self.eval(value)?;
                        self.assign(name, v, *span)?;
                    }
                }
            }
        }
    }

    fn scalar_bool(&mut self, cond: &Expr) -> IResult<bool> {
        match self.eval(cond)? {
            Value::Bool(b) => Ok(b),
            other => Err(LangError::runtime(
                cond.span(),
                format!(
                    "controller condition must be scalar logical, got {}",
                    other.describe()
                ),
            )),
        }
    }

    /// Pushes an activity mask, pre-ANDed with the current one (one ALU
    /// step, the activity-bit write — same cost model as `Ppa::where_`).
    fn push_mask(&mut self, cond: &Parallel<bool>, span: Span) -> IResult<()> {
        let effective = match self.masks.last() {
            None => {
                self.ppa
                    .machine_mut()
                    .controller_mut()
                    .record(ppa_machine::Op::Alu);
                cond.clone()
            }
            Some(parent) => self
                .ppa
                .machine_mut()
                .zip(parent, cond, |&a, &b| a && b)
                .map_err(|e| rt(span, PpcError::from(e)))?,
        };
        self.masks.push(effective);
        Ok(())
    }

    fn assign(&mut self, name: &str, value: Value, span: Span) -> IResult<()> {
        // Find the owning scope first (can't hold the borrow across eval).
        let idx = self
            .scopes
            .iter()
            .rposition(|s| s.contains_key(name))
            .ok_or_else(|| LangError::runtime(span, format!("undeclared variable `{name}`")))?;
        let current = self.scopes[idx].get(name).expect("just found").clone();
        let mask = self.masks.last().cloned();
        let new_value = match current {
            Value::PInt(mut plane) => {
                let src = match self.promote_int(value, span)? {
                    Value::PInt(p) => p,
                    _ => unreachable!("promote_int returns PInt"),
                };
                match &mask {
                    Some(m) => {
                        self.ppa
                            .machine_mut()
                            .assign_masked(&mut plane, &src, m)
                            .map_err(|e| rt(span, PpcError::from(e)))?;
                        Value::PInt(plane)
                    }
                    None => {
                        // Unmasked write still costs one ALU step.
                        self.ppa
                            .machine_mut()
                            .controller_mut()
                            .record(ppa_machine::Op::Alu);
                        Value::PInt(src)
                    }
                }
            }
            Value::PBool(mut plane) => {
                let src = match self.promote_bool(value, span)? {
                    Value::PBool(p) => p,
                    _ => unreachable!("promote_bool returns PBool"),
                };
                match &mask {
                    Some(m) => {
                        self.ppa
                            .machine_mut()
                            .assign_masked(&mut plane, &src, m)
                            .map_err(|e| rt(span, PpcError::from(e)))?;
                        Value::PBool(plane)
                    }
                    None => {
                        self.ppa
                            .machine_mut()
                            .controller_mut()
                            .record(ppa_machine::Op::Alu);
                        Value::PBool(src)
                    }
                }
            }
            Value::Int(_) => match value {
                Value::Int(v) => Value::Int(v),
                other => {
                    return Err(LangError::runtime(
                        span,
                        format!("cannot assign {} to scalar int `{name}`", other.describe()),
                    ))
                }
            },
            Value::Bool(_) => match value {
                Value::Bool(v) => Value::Bool(v),
                other => {
                    return Err(LangError::runtime(
                        span,
                        format!(
                            "cannot assign {} to scalar logical `{name}`",
                            other.describe()
                        ),
                    ))
                }
            },
            Value::Dir(_) => return Err(LangError::runtime(span, "directions are read-only")),
        };
        self.scopes[idx].insert(name.to_owned(), new_value);
        Ok(())
    }

    fn coerce_for_target(
        &mut self,
        parallel: bool,
        ty: BaseType,
        v: Value,
        span: Span,
    ) -> IResult<Value> {
        match (parallel, ty) {
            (true, BaseType::Int) => self.promote_int(v, span),
            (true, BaseType::Logical) => self.promote_bool(v, span),
            (false, BaseType::Int) => match v {
                Value::Int(_) => Ok(v),
                other => Err(LangError::runtime(
                    span,
                    format!("initializer must be scalar int, got {}", other.describe()),
                )),
            },
            (false, BaseType::Logical) => match v {
                Value::Bool(_) => Ok(v),
                other => Err(LangError::runtime(
                    span,
                    format!(
                        "initializer must be scalar logical, got {}",
                        other.describe()
                    ),
                )),
            },
        }
    }

    fn promote_int(&mut self, v: Value, span: Span) -> IResult<Value> {
        match v {
            Value::PInt(_) => Ok(v),
            Value::Int(s) => Ok(Value::PInt(self.ppa.constant(s))),
            other => Err(LangError::runtime(
                span,
                format!("expected (parallel) int, got {}", other.describe()),
            )),
        }
    }

    fn promote_bool(&mut self, v: Value, span: Span) -> IResult<Value> {
        match v {
            Value::PBool(_) => Ok(v),
            Value::Bool(s) => Ok(Value::PBool(self.ppa.constant(s))),
            other => Err(LangError::runtime(
                span,
                format!("expected (parallel) logical, got {}", other.describe()),
            )),
        }
    }

    // ----- expression evaluation ----------------------------------------------

    fn eval(&mut self, expr: &Expr) -> IResult<Value> {
        match expr {
            Expr::Int(v, _) => Ok(Value::Int(*v)),
            Expr::Bool(b, _) => Ok(Value::Bool(*b)),
            Expr::Ident(name, span) => self.ident(name, *span),
            Expr::Unary { op, operand, span } => {
                let v = self.eval(operand)?;
                match (op, v) {
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnOp::Not, Value::PBool(p)) => {
                        Ok(Value::PBool(self.ppa.not(&p).map_err(|e| rt(*span, e))?))
                    }
                    (UnOp::Neg, Value::Int(v)) => Ok(Value::Int(-v)),
                    (UnOp::Neg, Value::PInt(p)) => Ok(Value::PInt(
                        self.ppa
                            .machine_mut()
                            .map(&p, |&x| -x)
                            .map_err(|e| rt(*span, PpcError::from(e)))?,
                    )),
                    (_, other) => Err(LangError::runtime(
                        *span,
                        format!("operator cannot apply to {}", other.describe()),
                    )),
                }
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                self.binary(*op, l, r, *span)
            }
            Expr::Call { name, args, span } => self.call(name, args, *span),
        }
    }

    fn ident(&mut self, name: &str, span: Span) -> IResult<Value> {
        match name {
            "ROW" => return Ok(Value::PInt(self.ppa.row_index())),
            "COL" => return Ok(Value::PInt(self.ppa.col_index())),
            "N" => {
                let n = self.ppa.n().map_err(|e| rt(span, e))?;
                return Ok(Value::Int(n as i64));
            }
            "H" => return Ok(Value::Int(i64::from(self.ppa.word_bits()))),
            "MAXINT" => return Ok(Value::Int(self.ppa.maxint())),
            "NORTH" => return Ok(Value::Dir(Direction::North)),
            "EAST" => return Ok(Value::Dir(Direction::East)),
            "SOUTH" => return Ok(Value::Dir(Direction::South)),
            "WEST" => return Ok(Value::Dir(Direction::West)),
            _ => {}
        }
        self.get(name)
            .cloned()
            .ok_or_else(|| LangError::runtime(span, format!("undeclared variable `{name}`")))
    }

    fn binary(&mut self, op: BinOp, l: Value, r: Value, span: Span) -> IResult<Value> {
        use Value::*;
        // Scalar-scalar fast path: controller arithmetic, zero SIMD steps.
        match (&l, &r) {
            (Int(a), Int(b)) => {
                let a = *a;
                let b = *b;
                return Ok(match op {
                    BinOp::Add => Int(a + b),
                    BinOp::Sub => Int(a - b),
                    BinOp::Mul => Int(a * b),
                    BinOp::Rem => {
                        if b == 0 {
                            return Err(LangError::runtime(span, "remainder by zero"));
                        }
                        Int(a % b)
                    }
                    BinOp::Eq => Bool(a == b),
                    BinOp::Ne => Bool(a != b),
                    BinOp::Lt => Bool(a < b),
                    BinOp::Le => Bool(a <= b),
                    BinOp::Gt => Bool(a > b),
                    BinOp::Ge => Bool(a >= b),
                    BinOp::And | BinOp::Or => {
                        return Err(LangError::runtime(span, "logical op on ints"))
                    }
                });
            }
            (Bool(a), Bool(b)) => {
                let a = *a;
                let b = *b;
                return Ok(match op {
                    BinOp::And => Bool(a && b),
                    BinOp::Or => Bool(a || b),
                    BinOp::Eq => Bool(a == b),
                    BinOp::Ne => Bool(a != b),
                    _ => return Err(LangError::runtime(span, "arithmetic on scalar logicals")),
                });
            }
            _ => {}
        }
        // Parallel path: promote the scalar side, then one ALU instruction.
        if op.is_logical() || matches!((&l, &r), (PBool(_) | Bool(_), PBool(_) | Bool(_))) {
            let a = match self.promote_bool(l, span)? {
                PBool(p) => p,
                _ => unreachable!(),
            };
            let b = match self.promote_bool(r, span)? {
                PBool(p) => p,
                _ => unreachable!(),
            };
            let out = match op {
                BinOp::And => self.ppa.and(&a, &b),
                BinOp::Or => self.ppa.or(&a, &b),
                BinOp::Eq => self.ppa.eq(&a, &b),
                BinOp::Ne => self.ppa.ne(&a, &b),
                _ => return Err(LangError::runtime(span, "arithmetic on parallel logicals")),
            }
            .map_err(|e| rt(span, e))?;
            return Ok(PBool(out));
        }
        let a = match self.promote_int(l, span)? {
            PInt(p) => p,
            _ => unreachable!(),
        };
        let b = match self.promote_int(r, span)? {
            PInt(p) => p,
            _ => unreachable!(),
        };
        Ok(match op {
            BinOp::Add => PInt(self.ppa.sat_add(&a, &b).map_err(|e| rt(span, e))?),
            BinOp::Sub => PInt(self.ppa.sub(&a, &b).map_err(|e| rt(span, e))?),
            BinOp::Mul => PInt(
                self.ppa
                    .machine_mut()
                    .zip(&a, &b, |x, y| x * y)
                    .map_err(|e| rt(span, PpcError::from(e)))?,
            ),
            BinOp::Rem => PInt(
                self.ppa
                    .machine_mut()
                    .zip(&a, &b, |x, y| if *y == 0 { 0 } else { x % y })
                    .map_err(|e| rt(span, PpcError::from(e)))?,
            ),
            BinOp::Eq => PBool(self.ppa.eq(&a, &b).map_err(|e| rt(span, e))?),
            BinOp::Ne => PBool(self.ppa.ne(&a, &b).map_err(|e| rt(span, e))?),
            BinOp::Lt => PBool(self.ppa.lt(&a, &b).map_err(|e| rt(span, e))?),
            BinOp::Le => PBool(self.ppa.le(&a, &b).map_err(|e| rt(span, e))?),
            BinOp::Gt => PBool(self.ppa.lt(&b, &a).map_err(|e| rt(span, e))?),
            BinOp::Ge => PBool(self.ppa.le(&b, &a).map_err(|e| rt(span, e))?),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        })
    }

    fn call(&mut self, name: &str, args: &[Expr], span: Span) -> IResult<Value> {
        let vals: Vec<Value> = args
            .iter()
            .map(|a| self.eval(a))
            .collect::<Result<_, _>>()?;
        let dir = |v: &Value, i: usize| -> IResult<Direction> {
            match v {
                Value::Dir(d) => Ok(*d),
                other => Err(LangError::runtime(
                    args[i].span(),
                    format!(
                        "argument {} must be a direction, got {}",
                        i + 1,
                        other.describe()
                    ),
                )),
            }
        };
        match (name, vals.as_slice()) {
            ("broadcast", [src, d, l]) => {
                let d = dir(d, 1)?;
                let l = match self.promote_bool(l.clone(), span)? {
                    Value::PBool(p) => p,
                    _ => unreachable!(),
                };
                match self.promote_any(src.clone(), span)? {
                    Value::PInt(p) => Ok(Value::PInt(
                        self.ppa.broadcast(&p, d, &l).map_err(|e| rt(span, e))?,
                    )),
                    Value::PBool(p) => Ok(Value::PBool(
                        self.ppa.broadcast(&p, d, &l).map_err(|e| rt(span, e))?,
                    )),
                    _ => unreachable!(),
                }
            }
            ("shift", [src, d]) => {
                let d = dir(d, 1)?;
                match self.promote_any(src.clone(), span)? {
                    Value::PInt(p) => Ok(Value::PInt(
                        self.ppa.shift(&p, d, 0).map_err(|e| rt(span, e))?,
                    )),
                    Value::PBool(p) => Ok(Value::PBool(
                        self.ppa.shift(&p, d, false).map_err(|e| rt(span, e))?,
                    )),
                    _ => unreachable!(),
                }
            }
            ("min" | "max", [src, d, l]) => {
                let d = dir(d, 1)?;
                let src = self.as_pint(src.clone(), span)?;
                let l = self.as_pbool(l.clone(), span)?;
                let out = if name == "min" {
                    self.ppa.min(&src, d, &l)
                } else {
                    self.ppa.max(&src, d, &l)
                }
                .map_err(|e| rt(span, e))?;
                Ok(Value::PInt(out))
            }
            ("selected_min" | "selected_max", [src, d, l, sel]) => {
                let d = dir(d, 1)?;
                let src = self.as_pint(src.clone(), span)?;
                let l = self.as_pbool(l.clone(), span)?;
                let sel = self.as_pbool(sel.clone(), span)?;
                let out = if name == "selected_min" {
                    self.ppa.selected_min(&src, d, &l, &sel)
                } else {
                    self.ppa.selected_max(&src, d, &l, &sel)
                }
                .map_err(|e| rt(span, e))?;
                Ok(Value::PInt(out))
            }
            ("or", [x, d, l]) => {
                let d = dir(d, 1)?;
                let x = self.as_pbool(x.clone(), span)?;
                let l = self.as_pbool(l.clone(), span)?;
                Ok(Value::PBool(
                    self.ppa.bus_or(&x, d, &l).map_err(|e| rt(span, e))?,
                ))
            }
            ("bit", [x, j]) => {
                let x = self.as_pint(x.clone(), span)?;
                let j = match j {
                    Value::Int(v) if (0..63).contains(v) => *v as u32,
                    Value::Int(v) => {
                        return Err(LangError::runtime(
                            span,
                            format!("bit position {v} out of range"),
                        ))
                    }
                    other => {
                        return Err(LangError::runtime(
                            span,
                            format!("bit position must be scalar int, got {}", other.describe()),
                        ))
                    }
                };
                Ok(Value::PBool(self.ppa.bit(&x, j).map_err(|e| rt(span, e))?))
            }
            ("any", [x]) => {
                let x = self.as_pbool(x.clone(), span)?;
                Ok(Value::Bool(self.ppa.any(&x).map_err(|e| rt(span, e))?))
            }
            ("opposite", [d]) => Ok(Value::Dir(dir(d, 0)?.opposite())),
            _ => Err(LangError::runtime(
                span,
                format!("unknown builtin `{name}` or wrong arity ({})", args.len()),
            )),
        }
    }

    fn promote_any(&mut self, v: Value, span: Span) -> IResult<Value> {
        match v {
            Value::PInt(_) | Value::PBool(_) => Ok(v),
            Value::Int(s) => Ok(Value::PInt(self.ppa.constant(s))),
            Value::Bool(s) => Ok(Value::PBool(self.ppa.constant(s))),
            Value::Dir(_) => Err(LangError::runtime(span, "directions are not data")),
        }
    }

    fn as_pint(&mut self, v: Value, span: Span) -> IResult<Parallel<i64>> {
        match self.promote_int(v, span)? {
            Value::PInt(p) => Ok(p),
            _ => unreachable!(),
        }
    }

    fn as_pbool(&mut self, v: Value, span: Span) -> IResult<Parallel<bool>> {
        match self.promote_bool(v, span)? {
            Value::PBool(p) => Ok(p),
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn run(n: usize, src: &str) -> (Ppa, Vec<(String, Value)>) {
        let program = parse(src).unwrap();
        let mut ppa = Ppa::square(n).with_word_bits(10);
        let mut interp = Interpreter::new(&mut ppa);
        interp.run(&program).unwrap();
        let globals: Vec<(String, Value)> = interp.scopes[0]
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        (ppa, globals)
    }

    fn pint(globals: &[(String, Value)], name: &str) -> Parallel<i64> {
        globals
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| match v {
                Value::PInt(p) => p.clone(),
                other => panic!("{name} is {}", other.describe()),
            })
            .unwrap_or_else(|| panic!("{name} missing"))
    }

    #[test]
    fn assignments_and_arithmetic() {
        let (_, g) = run(3, "parallel int x; x = ROW * 3 + COL;");
        let x = pint(&g, "x");
        assert_eq!(*x.at(2, 1), 7);
    }

    #[test]
    fn where_masks_writes() {
        let (_, g) = run(
            3,
            "parallel int x; where (ROW == 1) x = 5; elsewhere x = 9;",
        );
        let x = pint(&g, "x");
        assert_eq!(x.row(0), &[9, 9, 9]);
        assert_eq!(x.row(1), &[5, 5, 5]);
    }

    #[test]
    fn nested_where_intersects() {
        let (_, g) = run(
            3,
            "parallel int x; where (ROW == 1) where (COL == 2) x = 7;",
        );
        let x = pint(&g, "x");
        assert_eq!(*x.at(1, 2), 7);
        assert_eq!(*x.at(1, 1), 0);
        assert_eq!(*x.at(0, 2), 0);
    }

    #[test]
    fn broadcast_builtin() {
        let (_, g) = run(
            4,
            "parallel int x; x = ROW * 4 + COL; x = broadcast(x, SOUTH, ROW == 2);",
        );
        let x = pint(&g, "x");
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(*x.at(r, c), (2 * 4 + c) as i64);
            }
        }
    }

    #[test]
    fn min_builtin_matches_rowwise_reference() {
        let (_, g) = run(
            4,
            "parallel int x; x = (ROW * 7 + COL * 5) % 13; x = min(x, WEST, COL == N - 1);",
        );
        let x = pint(&g, "x");
        for r in 0..4i64 {
            let expect = (0..4i64).map(|c| (r * 7 + c * 5) % 13).min().unwrap();
            assert!(x.row(r as usize).iter().all(|&v| v == expect));
        }
    }

    #[test]
    fn scalar_loops_run_on_controller() {
        let (ppa, g) = run(
            2,
            r#"
            int acc;
            int j;
            for (j = 0; j < 5; j = j + 1) acc = acc + j;
            "#,
        );
        assert!(g
            .iter()
            .any(|(k, v)| k == "acc" && matches!(v, Value::Int(10))));
        // Controller arithmetic is free: no SIMD steps at all.
        assert_eq!(ppa.steps().total(), 0);
    }

    #[test]
    fn do_while_with_any() {
        let (_, g) = run(
            4,
            r#"
            parallel int x;
            logical go;
            do {
                where (x < 3) x = x + 1;
                go = any(x < 3);
            } while (go);
            "#,
        );
        let x = pint(&g, "x");
        assert!(x.iter().all(|&v| v == 3));
    }

    #[test]
    fn parallel_add_saturates_at_maxint() {
        let (ppa, g) = run(2, "parallel int x; x = MAXINT; x = x + 5;");
        let x = pint(&g, "x");
        assert!(x.iter().all(|&v| v == ppa.maxint()));
    }

    #[test]
    fn host_bindings_flow_through_declarations() {
        let program = parse("parallel int W; parallel int y; y = W + 1;").unwrap();
        let mut ppa = Ppa::square(2).with_word_bits(8);
        let w = Parallel::from_fn(ppa.dim(), |c| (c.row * 2 + c.col) as i64);
        let mut interp = Interpreter::new(&mut ppa);
        interp.bind("W", Value::PInt(w));
        interp.run(&program).unwrap();
        let y = interp.get_parallel_int("y").unwrap();
        assert_eq!(*y.at(1, 1), 4);
    }

    #[test]
    fn binding_type_mismatch_rejected() {
        let program = parse("parallel int W;").unwrap();
        let mut ppa = Ppa::square(2);
        let mut interp = Interpreter::new(&mut ppa);
        interp.bind("W", Value::Int(3));
        let err = interp.run(&program).unwrap_err();
        assert!(err.message.contains("host binding"), "{err}");
    }

    #[test]
    fn runtime_error_carries_ppc_failure() {
        // min with values exceeding the word width.
        let program =
            parse("parallel int x; x = MAXINT + 0; x = min(x * 2, WEST, COL == N - 1);").unwrap();
        let mut ppa = Ppa::square(2).with_word_bits(4);
        let mut interp = Interpreter::new(&mut ppa);
        let err = interp.run(&program).unwrap_err();
        assert!(err.message.contains("does not fit"), "{err}");
    }

    #[test]
    fn interpreted_steps_match_native_shape() {
        // The same row-min written natively and interpreted should cost
        // the same number of SIMD steps for the min itself.
        let program = parse("parallel int x; x = min(x, WEST, COL == N - 1);").unwrap();
        let mut ppa = Ppa::square(4).with_word_bits(8);
        let mut interp = Interpreter::new(&mut ppa);
        interp.run(&program).unwrap();
        let interpreted = interp.ppa().steps().total();

        let mut native = Ppa::square(4).with_word_bits(8);
        let x = native.constant(0i64);
        let col = native.col_index();
        let nm1 = native.constant(3i64);
        let l = native.eq(&col, &nm1).unwrap();
        let m = native.min(&x, Direction::West, &l).unwrap();
        let mut dst = x.clone();
        native.assign(&mut dst, &m).unwrap();
        let native_steps = native.steps().total();
        assert_eq!(interpreted, native_steps);
    }

    #[test]
    fn block_scoped_shadowing() {
        let (_, g) = run(
            2,
            r#"
            int x;
            x = 1;
            {
                int x;
                x = 99;
            }
            // The inner x died with its block; outer x is untouched.
            x = x + 1;
            "#,
        );
        assert!(g
            .iter()
            .any(|(k, v)| k == "x" && matches!(v, Value::Int(2))));
    }

    #[test]
    fn elsewhere_uses_complement_within_parent_mask() {
        let (_, g) = run(
            3,
            r#"
            parallel int x;
            where (ROW == 0)
                where (COL == 0) x = 1;
                elsewhere x = 2;
            "#,
        );
        let x = pint(&g, "x");
        // elsewhere = (ROW == 0) && !(COL == 0): rows 1-2 stay zero.
        assert_eq!(x.row(0), &[1, 2, 2]);
        assert_eq!(x.row(1), &[0, 0, 0]);
    }

    #[test]
    fn shift_builtin_moves_data() {
        let (_, g) = run(3, "parallel int x; x = COL; x = shift(x, EAST);");
        let x = pint(&g, "x");
        // Upstream edge receives the interpreter's fill (0).
        assert_eq!(x.row(0), &[0, 0, 1]);
    }

    #[test]
    fn while_loop_with_scalar_counter_drives_parallel_work() {
        let (ppa, g) = run(
            4,
            r#"
            parallel int acc;
            int k;
            k = 3;
            while (k > 0) {
                acc = acc + ROW;
                k = k - 1;
            }
            "#,
        );
        let acc = pint(&g, "acc");
        for r in 0..4 {
            assert!(acc.row(r).iter().all(|&v| v == 3 * r as i64));
        }
        // 3 iterations x (ROW read + add + write) = 9 ALU... plus decl.
        assert!(ppa.steps().total() >= 9);
    }

    #[test]
    fn division_free_modulo_by_zero_is_guarded() {
        let program = parse("int a; a = 1 % 0;").unwrap();
        let mut ppa = Ppa::square(2);
        let mut interp = Interpreter::new(&mut ppa);
        let err = interp.run(&program).unwrap_err();
        assert!(err.message.contains("remainder by zero"), "{err}");
    }

    #[test]
    fn opposite_builtin() {
        let (_, g) = run(
            3,
            r#"
            parallel int x;
            x = COL;
            // West clusters headed at col 2; reading against the direction.
            x = broadcast(x, opposite(EAST), COL == 2);
            "#,
        );
        let x = pint(&g, "x");
        assert!(x.row(0).iter().all(|&v| v == 2));
    }
}
