//! Recursive-descent parser for the PPC subset.

use crate::ast::*;
use crate::error::{LangError, Span};
use crate::token::{Token, TokenKind};

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(tokens: &'a [Token]) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, LangError> {
        if self.peek_kind() == kind {
            Ok(self.bump())
        } else {
            Err(LangError::parse(
                self.span(),
                format!("expected `{kind}`, found `{}`", self.peek_kind()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), LangError> {
        let span = self.span();
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            other => Err(LangError::parse(
                span,
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    // ----- items ------------------------------------------------------------

    fn program(&mut self) -> Result<Program, LangError> {
        let mut items = Vec::new();
        while self.peek_kind() != &TokenKind::Eof {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item, LangError> {
        match self.peek_kind() {
            TokenKind::Parallel | TokenKind::KwInt | TokenKind::KwLogical => {
                Ok(Item::Decl(self.decl()?))
            }
            _ => Ok(Item::Stmt(self.stmt()?)),
        }
    }

    fn decl(&mut self) -> Result<Decl, LangError> {
        let span = self.span();
        let parallel = self.eat(&TokenKind::Parallel);
        let ty = match self.peek_kind() {
            TokenKind::KwInt => {
                self.bump();
                BaseType::Int
            }
            TokenKind::KwLogical => {
                self.bump();
                BaseType::Logical
            }
            other => {
                return Err(LangError::parse(
                    self.span(),
                    format!("expected `int` or `logical` after storage class, found `{other}`"),
                ))
            }
        };
        let (name, _) = self.expect_ident()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi)?;
        Ok(Decl {
            parallel,
            ty,
            name,
            init,
            span,
        })
    }

    // ----- statements --------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        match self.peek_kind() {
            TokenKind::LBrace => {
                self.bump();
                let mut items = Vec::new();
                while self.peek_kind() != &TokenKind::RBrace {
                    if self.peek_kind() == &TokenKind::Eof {
                        return Err(LangError::parse(self.span(), "unterminated block"));
                    }
                    items.push(self.item()?);
                }
                self.bump();
                Ok(Stmt::Block(items))
            }
            TokenKind::Where => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch = if self.eat(&TokenKind::Elsewhere) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::Where {
                    cond,
                    then_branch,
                    else_branch,
                    span,
                })
            }
            TokenKind::If => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch = if self.eat(&TokenKind::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    span,
                })
            }
            TokenKind::While => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::Do => {
                self.bump();
                let body = Box::new(self.stmt()?);
                self.expect(&TokenKind::While)?;
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::DoWhile { body, cond, span })
            }
            TokenKind::For => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let init = if self.peek_kind() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.simple_assign()?)
                };
                self.expect(&TokenKind::Semi)?;
                let cond = if self.peek_kind() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                let step = if self.peek_kind() == &TokenKind::RParen {
                    None
                } else {
                    Some(self.simple_assign()?)
                };
                self.expect(&TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span,
                })
            }
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            _ => {
                let (name, value) = self.simple_assign()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Assign { name, value, span })
            }
        }
    }

    fn simple_assign(&mut self) -> Result<(String, Expr), LangError> {
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::Assign)?;
        let value = self.expr()?;
        Ok((name, value))
    }

    // ----- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.peek_kind() == &TokenKind::OrOr {
            let span = self.span();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek_kind() == &TokenKind::AndAnd {
            let span = self.span();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::Ne => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            let span = self.span();
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            })
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.peek_kind() {
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    operand: Box::new(self.unary_expr()?),
                    span,
                })
            }
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(self.unary_expr()?),
                    span,
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, span))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool(true, span))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool(false, span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek_kind() == &TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek_kind() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call { name, args, span })
                } else {
                    Ok(Expr::Ident(name, span))
                }
            }
            other => Err(LangError::parse(
                span,
                format!("expected expression, found `{other}`"),
            )),
        }
    }
}

/// Parses a token stream into a program (no semantic checks).
pub fn parse_tokens(tokens: &[Token]) -> Result<Program, LangError> {
    assert!(
        !tokens.is_empty(),
        "token stream must end with an Eof token"
    );
    Parser::new(tokens).program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Result<Program, LangError> {
        parse_tokens(&lex(src).unwrap())
    }

    #[test]
    fn parses_declarations() {
        let p = parse("parallel int SOW; logical go = true;").unwrap();
        assert_eq!(p.items.len(), 2);
        match &p.items[0] {
            Item::Decl(d) => {
                assert!(d.parallel);
                assert_eq!(d.ty, BaseType::Int);
                assert_eq!(d.name, "SOW");
                assert!(d.init.is_none());
            }
            other => panic!("{other:?}"),
        }
        match &p.items[1] {
            Item::Decl(d) => {
                assert!(!d.parallel);
                assert_eq!(d.ty, BaseType::Logical);
                assert!(d.init.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_where_elsewhere() {
        let p = parse("where (ROW == d) x = 1; elsewhere x = 2;").unwrap();
        match &p.items[0] {
            Item::Stmt(Stmt::Where {
                else_branch: Some(_),
                ..
            }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_do_while() {
        let p = parse("do { x = x + 1; } while (go);").unwrap();
        assert!(matches!(p.items[0], Item::Stmt(Stmt::DoWhile { .. })));
    }

    #[test]
    fn parses_for_with_all_clauses() {
        let p = parse("for (j = 7; j >= 0; j = j - 1) x = j;").unwrap();
        match &p.items[0] {
            Item::Stmt(Stmt::For {
                init: Some(_),
                cond: Some(_),
                step: Some(_),
                ..
            }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_calls_with_args() {
        let p = parse("x = broadcast(SOW, SOUTH, ROW == d);").unwrap();
        match &p.items[0] {
            Item::Stmt(Stmt::Assign { value, .. }) => match value {
                Expr::Call { name, args, .. } => {
                    assert_eq!(name, "broadcast");
                    assert_eq!(args.len(), 3);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_is_c_like() {
        // a + b * c == d && e  parses as  ((a + (b*c)) == d) && e
        let p = parse("x = a + b * c == d && e;").unwrap();
        let Item::Stmt(Stmt::Assign { value, .. }) = &p.items[0] else {
            panic!()
        };
        let Expr::Binary {
            op: BinOp::And,
            lhs,
            ..
        } = value
        else {
            panic!("top must be &&: {value:?}")
        };
        let Expr::Binary {
            op: BinOp::Eq,
            lhs: add,
            ..
        } = lhs.as_ref()
        else {
            panic!("lhs must be ==")
        };
        assert!(matches!(add.as_ref(), Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn unary_operators_nest() {
        let p = parse("x = !!a; y = --3;").unwrap();
        assert_eq!(p.items.len(), 2);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("x = ;").unwrap_err();
        assert!(err.message.contains("expected expression"), "{err}");
        assert_eq!(err.span.col, 5);
    }

    #[test]
    fn missing_semicolon_reported() {
        let err = parse("x = 1").unwrap_err();
        assert!(err.message.contains("`;`"), "{err}");
    }

    #[test]
    fn unterminated_block_reported() {
        let err = parse("{ x = 1;").unwrap_err();
        assert!(err.message.contains("unterminated block"), "{err}");
    }

    #[test]
    fn empty_statement_allowed() {
        let p = parse(";;").unwrap();
        assert_eq!(p.items.len(), 2);
    }

    #[test]
    fn nested_where_single_statement_bodies() {
        let p = parse("where (a) where (b) x = 1;").unwrap();
        let Item::Stmt(Stmt::Where { then_branch, .. }) = &p.items[0] else {
            panic!()
        };
        assert!(matches!(then_branch.as_ref(), Stmt::Where { .. }));
    }
}
