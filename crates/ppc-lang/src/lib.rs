//! # ppc-lang — the Polymorphic Parallel C language front end
//!
//! The paper states that its algorithm "has been implemented using the
//! Polymorphic Parallel C language and has been validated through
//! simulation". This crate recreates that tool chain: a lexer, parser,
//! semantic checker and tree-walking interpreter for the PPC subset the
//! paper uses, executing on the [`ppa_ppc`] runtime so every interpreted
//! statement issues the same costed SIMD instructions as native code.
//!
//! ## Language subset
//!
//! * **Storage classes** — `parallel int x;` / `parallel logical l;`
//!   allocate one value per PE; plain `int` / `logical` live in the
//!   controller. Declarations may carry initializers; uninitialized
//!   variables default to `0` / `false`.
//! * **Control** — `where (e) s [elsewhere s]` (SIMD activity masking,
//!   nests by intersection), `do s while (e);`, `while (e) s`,
//!   `for (x = e; e; x = e) s`, `if (e) s [else s]` (scalar condition),
//!   blocks with lexical scoping.
//! * **Expressions** — integer/logical arithmetic and comparisons with
//!   scalar-to-parallel promotion; parallel `+` saturates at `MAXINT`
//!   (the runtime's `h`-bit unsigned model, see `ppa-ppc`).
//! * **Builtins** — the communication/combination primitives of Section 2
//!   and 3 of the paper: `broadcast(src, dir, L)`, `shift(src, dir)`,
//!   `min`/`max(src, dir, L)`, `selected_min`/`selected_max(src, dir, L,
//!   sel)`, the wired `or(x, dir, L)`, `bit(x, j)`, `opposite(dir)`, the
//!   controller reduction `any(x)`, the hardwired registers `ROW`/`COL`,
//!   the direction constants `NORTH`/`EAST`/`SOUTH`/`WEST`, and the
//!   machine parameters `N` (array side), `H` (word bits), `MAXINT`.
//!
//! User-defined functions are not in the subset: the paper itself treats
//! `min`/`selected_min` as library routines, and its `minimum_cost_path`
//! is a single top-level body (driven here through [`programs`]).
//!
//! ## Example
//!
//! ```
//! use ppa_ppc::Ppa;
//! use ppc_lang::interp::Interpreter;
//! use ppc_lang::Value;
//!
//! let src = r#"
//!     parallel int x;
//!     x = ROW * 10 + COL;
//!     where (ROW == COL) x = 0;
//! "#;
//! let program = ppc_lang::parse(src).unwrap();
//! let mut ppa = Ppa::square(4);
//! let mut interp = Interpreter::new(&mut ppa);
//! interp.run(&program).unwrap();
//! let x = interp.get_parallel_int("x").unwrap();
//! assert_eq!(*x.at(1, 1), 0);
//! assert_eq!(*x.at(1, 2), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod programs;
pub mod sema;
pub mod token;

pub use error::LangError;
pub use interp::{Interpreter, Value};

/// Parses and semantically checks a PPC source string.
pub fn parse(src: &str) -> Result<ast::Program, LangError> {
    let tokens = lexer::lex(src)?;
    let program = parser::parse_tokens(&tokens)?;
    sema::check(&program)?;
    Ok(program)
}
