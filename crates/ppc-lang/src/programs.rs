//! The paper's programs, as PPC source, with host drivers.
//!
//! [`MINIMUM_COST_PATH`] is the `minimum_cost_path()` of Section 3
//! transcribed into the interpreted subset (the fidelity repairs of the
//! `ppa-mcp` crate applied in source form, each marked with a comment).
//! [`MIN_ROUTINE`] is the paper's bit-serial `min()` routine written out
//! with `for`/`bit`/`or`/`broadcast` — the code the paper prints in
//! Section 3 — used to cross-check the builtin `min` against a
//! from-source implementation.

use crate::error::LangError;
use crate::interp::{Interpreter, Value};
use ppa_graph::{Weight, WeightMatrix, INF};
use ppa_ppc::{Parallel, Ppa};

/// Section 3's `minimum_cost_path()`, in interpretable PPC.
pub const MINIMUM_COST_PATH: &str = r#"
// Inputs, preloaded by the host:
//   W — weight plane, w_ij at PE (i,j); MAXINT marks a missing edge and
//       the diagonal is 0 (the DP convention, fidelity note 2);
//   d — the destination vertex.
parallel int W;
int d;

// Outputs: row d of SOW and PTN.
parallel int SOW;
parallel int PTN;
parallel int MIN_SOW;
parallel int OLD_SOW;      // statement 3
logical go;

// --- Step 1: statements 4-7 (intended form, fidelity note 3) ---------
// SOW[d][i] must become w_id: W's d-th *column*, folded into row d via
// the diagonal with two bus steps.
parallel int INW;
SOW = MAXINT;
MIN_SOW = MAXINT;
INW = broadcast(W, EAST, COL == d);
INW = broadcast(INW, SOUTH, ROW == COL);
where (ROW == d) {
    SOW = INW;             // statement 5 (intended)
    PTN = d;               // statement 6
    MIN_SOW = INW;         // pins MIN_SOW[d][d] = 0 (fidelity note 2)
}

// --- Step 2: statements 8-20 ------------------------------------------
do {
    where (ROW != d) {
        SOW = broadcast(SOW, SOUTH, ROW == d) + W;                   // 10
        MIN_SOW = min(SOW, WEST, COL == N - 1);                      // 11
        // 12, with the row-d selection repair (fidelity note 1):
        PTN = selected_min(COL, WEST, COL == N - 1,
                           MIN_SOW == SOW || ROW == d);
    }
    where (ROW == d) {
        OLD_SOW = SOW;                                               // 15
        SOW = broadcast(MIN_SOW, SOUTH, ROW == COL);                 // 16
        where (SOW != OLD_SOW)                                       // 17
            PTN = broadcast(PTN, SOUTH, ROW == COL);                 // 18
    }
    go = any(SOW != OLD_SOW && ROW == d);                            // 20
} while (go);
"#;

/// Section 3's `min()` routine, written from its printed source: the
/// most-significant-bit-first elimination over `enable`, the forwarding
/// of the survivors to the cluster heads (statements 11-12), and the
/// final cluster broadcast (statement 13). Inputs: `src` (values) and
/// the implied orientation WEST with clusters headed at `COL == N - 1`.
/// Output: `RESULT`.
pub const MIN_ROUTINE: &str = r#"
parallel int src;          // input
parallel int RESULT;       // output
parallel logical L;
parallel logical enable;
int j;

L = COL == N - 1;
enable = true;                                               // statement 7
for (j = H - 1; j >= 0; j = j - 1)                           // statement 8
    where (broadcast(or(!bit(src, j) && enable, WEST, L), WEST, L)
           && bit(src, j))                                   // statement 9
        enable = false;                                      // statement 10
where (L)                                                    // statement 11
    src = broadcast(src, opposite(WEST), enable);            // statement 12
RESULT = broadcast(src, WEST, L);                            // statement 13
"#;

/// The widest-path (maximum bottleneck capacity) variant, demonstrating
/// the semiring swap in PPC source: `(min, +)` becomes `(max, min)`.
/// Inputs: `C` (capacity plane: 0 = no link, diagonal = MAXINT) and `d`.
/// Output: row `d` of `CAP`.
pub const WIDEST_PATH: &str = r#"
parallel int C;
int d;
parallel int CAP;
parallel int MAX_CAP;
parallel int OLD_CAP;
logical go;

parallel int INC;
INC = broadcast(C, EAST, COL == d);
INC = broadcast(INC, SOUTH, ROW == COL);
CAP = 0;
MAX_CAP = 0;
where (ROW == d) {
    CAP = INC;
    MAX_CAP = INC;
}

do {
    where (ROW != d) {
        // Candidate bottleneck via j: min(capacity(i->j), CAP_jd).
        CAP = broadcast(CAP, SOUTH, ROW == d);
        where (C < CAP) CAP = C;          // per-PE min(C, CAP)
        MAX_CAP = max(CAP, WEST, COL == N - 1);
    }
    where (ROW == d) {
        OLD_CAP = CAP;
        CAP = broadcast(MAX_CAP, SOUTH, ROW == COL);
    }
    go = any(CAP != OLD_CAP && ROW == d);
} while (go);
"#;

/// Result of running [`MINIMUM_COST_PATH`] through the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpretedMcp {
    /// Destination vertex.
    pub dest: usize,
    /// Costs, destination-row read-out (same conventions as `ppa-mcp`).
    pub sow: Vec<Weight>,
    /// Successor pointers.
    pub ptn: Vec<usize>,
    /// SIMD steps the interpreted program issued.
    pub steps: u64,
}

/// Runs the interpreted `minimum_cost_path` on `ppa` for graph `w` and
/// destination `d`.
pub fn run_minimum_cost_path(
    ppa: &mut Ppa,
    w: &WeightMatrix,
    d: usize,
) -> Result<InterpretedMcp, LangError> {
    let n = w.n();
    assert!(d < n, "destination {d} out of range");
    let program = crate::parse(MINIMUM_COST_PATH)?;
    let maxint = ppa.maxint();
    let mut w_vec = w.to_saturated_vec(maxint);
    for i in 0..n {
        w_vec[i * n + i] = 0; // the diagonal DP convention
    }
    let w_plane: Parallel<i64> = Parallel::from_vec(ppa.dim(), w_vec);
    let before = ppa.steps().total();
    let mut interp = Interpreter::new(ppa);
    interp.bind("W", Value::PInt(w_plane));
    interp.bind("d", Value::Int(d as i64));
    interp.run(&program)?;
    let sow_plane = interp
        .get_parallel_int("SOW")
        .expect("program declares SOW")
        .clone();
    let ptn_plane = interp
        .get_parallel_int("PTN")
        .expect("program declares PTN")
        .clone();
    let steps = interp.ppa().steps().total() - before;
    let mut sow = Vec::with_capacity(n);
    let mut ptn = Vec::with_capacity(n);
    for i in 0..n {
        let cost = *sow_plane.at(d, i);
        if i == d {
            sow.push(0);
            ptn.push(d);
        } else if cost >= maxint {
            sow.push(INF);
            ptn.push(i);
        } else {
            sow.push(cost);
            ptn.push(*ptn_plane.at(d, i) as usize);
        }
    }
    Ok(InterpretedMcp {
        dest: d,
        sow,
        ptn,
        steps,
    })
}

/// Runs the interpreted [`WIDEST_PATH`] program; returns the bottleneck
/// capacity from every vertex to `d` (`0` = unreachable, machine
/// `MAXINT` at `d` itself).
pub fn run_widest_path(
    ppa: &mut Ppa,
    w: &WeightMatrix,
    d: usize,
) -> Result<Vec<Weight>, LangError> {
    let n = w.n();
    assert!(d < n, "destination {d} out of range");
    let program = crate::parse(WIDEST_PATH)?;
    let maxint = ppa.maxint();
    let cap_plane: Parallel<i64> = Parallel::from_fn(ppa.dim(), |c| {
        if c.row == c.col {
            maxint
        } else {
            let e = w.get(c.row, c.col);
            if e == INF {
                0
            } else {
                e
            }
        }
    });
    let mut interp = Interpreter::new(ppa);
    interp.bind("C", Value::PInt(cap_plane));
    interp.bind("d", Value::Int(d as i64));
    interp.run(&program)?;
    let cap = interp
        .get_parallel_int("CAP")
        .expect("program declares CAP")
        .clone();
    Ok((0..n)
        .map(|i| if i == d { maxint } else { *cap.at(d, i) })
        .collect())
}

/// Runs the from-source [`MIN_ROUTINE`] over `values` (row-wise, clusters
/// spanning whole rows) and returns the per-PE results.
pub fn run_min_routine(ppa: &mut Ppa, values: &Parallel<i64>) -> Result<Parallel<i64>, LangError> {
    let program = crate::parse(MIN_ROUTINE)?;
    let mut interp = Interpreter::new(ppa);
    interp.bind("src", Value::PInt(values.clone()));
    interp.run(&program)?;
    Ok(interp
        .get_parallel_int("RESULT")
        .expect("program declares RESULT")
        .clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;
    use ppa_graph::validate::is_valid_solution;
    use ppa_mcp::mcp;

    fn machine_for(w: &WeightMatrix) -> Ppa {
        Ppa::square(w.n()).with_word_bits(w.required_word_bits().clamp(2, 62))
    }

    #[test]
    fn interpreted_mcp_matches_oracle() {
        for seed in 0..6 {
            let w = gen::random_digraph(8, 0.3, 9, seed);
            let d = (seed as usize) % 8;
            let mut ppa = machine_for(&w);
            let out = run_minimum_cost_path(&mut ppa, &w, d).unwrap();
            assert!(is_valid_solution(&w, d, &out.sow, &out.ptn), "seed {seed}");
        }
    }

    #[test]
    fn interpreted_mcp_equals_native_mcp() {
        for f in [gen::Family::Ring, gen::Family::Sparse, gen::Family::Grid] {
            let w = f.build(7, 8, 21);
            let mut ippa = machine_for(&w);
            let interp = run_minimum_cost_path(&mut ippa, &w, 3).unwrap();
            let mut nppa = machine_for(&w);
            let native = mcp::minimum_cost_path(&mut nppa, &w, 3).unwrap();
            assert_eq!(interp.sow, native.sow, "{}", f.label());
            // Pointers may differ among ties, so validate rather than
            // compare; costs must be identical.
            assert!(is_valid_solution(&w, 3, &interp.sow, &interp.ptn));
        }
    }

    #[test]
    fn interpreted_steps_are_same_order_as_native() {
        let w = gen::ring(6);
        let mut ippa = machine_for(&w);
        let interp = run_minimum_cost_path(&mut ippa, &w, 0).unwrap();
        let mut nppa = machine_for(&w);
        let native = mcp::minimum_cost_path(&mut nppa, &w, 0).unwrap();
        let ratio = interp.steps as f64 / native.stats.total.total() as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "interpreted {} vs native {}",
            interp.steps,
            native.stats.total.total()
        );
    }

    #[test]
    fn min_routine_source_matches_builtin() {
        let mut ppa = Ppa::square(5).with_word_bits(8);
        let values = Parallel::from_fn(ppa.dim(), |c| ((c.row * 37 + c.col * 11) % 200) as i64);
        let from_source = run_min_routine(&mut ppa, &values).unwrap();
        for r in 0..5 {
            let expect = *values.row(r).iter().min().unwrap();
            assert!(
                from_source.row(r).iter().all(|&v| v == expect),
                "row {r}: {:?}",
                from_source.row(r)
            );
        }
    }

    #[test]
    fn min_routine_handles_ties() {
        let mut ppa = Ppa::square(4).with_word_bits(6);
        let values = Parallel::filled(ppa.dim(), 9i64);
        let out = run_min_routine(&mut ppa, &values).unwrap();
        assert!(out.iter().all(|&v| v == 9));
    }

    #[test]
    fn sources_parse_and_check() {
        crate::parse(MINIMUM_COST_PATH).unwrap();
        crate::parse(MIN_ROUTINE).unwrap();
        crate::parse(WIDEST_PATH).unwrap();
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn interpreted_widest_matches_oracle_and_native() {
        use ppa_mcp::widest::{widest_path, widest_path_oracle};
        for seed in 0..6u64 {
            let w = gen::random_digraph(8, 0.3, 20, seed);
            let d = seed as usize % 8;
            let mut ippa = machine_for(&w);
            let interp = run_widest_path(&mut ippa, &w, d).unwrap();
            let oracle = widest_path_oracle(&w, d);
            for i in 0..8 {
                if i != d {
                    assert_eq!(interp[i], oracle[i], "seed {seed} vertex {i}");
                }
            }
            let mut nppa = machine_for(&w);
            let native = widest_path(&mut nppa, &w, d).unwrap();
            for i in 0..8 {
                if i != d {
                    assert_eq!(interp[i], native.cap[i], "seed {seed} vertex {i} (native)");
                }
            }
        }
    }
}
