//! The PPC lexer.
//!
//! Hand-rolled scanner producing a flat token vector. Supports `//` line
//! comments and `/* ... */` block comments (non-nesting), decimal integer
//! literals, and the operator set of the grammar.

use crate::error::{LangError, Span};
use crate::token::{Token, TokenKind};

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let open = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => return Err(LangError::lex(open, "unterminated block comment")),
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident_or_keyword(&mut self) -> Token {
        let span = self.span();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        let kind = match text {
            "parallel" => TokenKind::Parallel,
            "int" => TokenKind::KwInt,
            "logical" => TokenKind::KwLogical,
            "where" => TokenKind::Where,
            "elsewhere" => TokenKind::Elsewhere,
            "do" => TokenKind::Do,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            _ => TokenKind::Ident(text.to_owned()),
        };
        Token::new(kind, span)
    }

    fn number(&mut self) -> Result<Token, LangError> {
        let span = self.span();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        let value: i64 = text
            .parse()
            .map_err(|_| LangError::lex(span, format!("integer literal `{text}` overflows")))?;
        Ok(Token::new(TokenKind::Int(value), span))
    }

    fn next_token(&mut self) -> Result<Token, LangError> {
        self.skip_trivia()?;
        let span = self.span();
        let Some(c) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, span));
        };
        if c.is_ascii_alphabetic() || c == b'_' {
            return Ok(self.ident_or_keyword());
        }
        if c.is_ascii_digit() {
            return self.number();
        }
        self.bump();
        let two = |l: &mut Self, second: u8, yes: TokenKind, no: TokenKind| {
            if l.peek() == Some(second) {
                l.bump();
                yes
            } else {
                no
            }
        };
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'%' => TokenKind::Percent,
            b'=' => two(self, b'=', TokenKind::Eq, TokenKind::Assign),
            b'!' => two(self, b'=', TokenKind::Ne, TokenKind::Bang),
            b'<' => two(self, b'=', TokenKind::Le, TokenKind::Lt),
            b'>' => two(self, b'=', TokenKind::Ge, TokenKind::Gt),
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(LangError::lex(span, "expected `&&`"));
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(LangError::lex(span, "expected `||`"));
                }
            }
            other => {
                return Err(LangError::lex(
                    span,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        Ok(Token::new(kind, span))
    }
}

/// Tokenizes PPC source text.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let mut lexer = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        let tok = lexer.next_token()?;
        let done = tok.kind == TokenKind::Eof;
        out.push(tok);
        if done {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("parallel int SOW;"),
            vec![
                TokenKind::Parallel,
                TokenKind::KwInt,
                TokenKind::Ident("SOW".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("== != <= >= && || ! = < > + - * %"),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Assign,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Percent,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // line\n /* block\n over lines */ b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("x\n  y").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
    }

    #[test]
    fn number_overflow_reported() {
        let err = lex("99999999999999999999").unwrap_err();
        assert!(err.message.contains("overflow"));
    }

    #[test]
    fn unterminated_comment_reported() {
        let err = lex("/* oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn stray_character_reported() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn single_ampersand_rejected() {
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(kinds("wherever")[0], TokenKind::Ident("wherever".into()));
        assert_eq!(kinds("where")[0], TokenKind::Where);
        assert_eq!(kinds("elsewhere")[0], TokenKind::Elsewhere);
    }
}
