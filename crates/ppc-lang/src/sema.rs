//! Semantic checking: name resolution, storage classes, and types.
//!
//! PPC's key static rules, enforced here before execution:
//!
//! * `where` conditions must be *parallel logical*; `if`/`while`/`do`/`for`
//!   conditions must be *scalar logical* (the controller branches on them);
//! * scalars silently promote to parallel values (each PE receives the
//!   broadcast constant), but a parallel value never demotes to a scalar —
//!   reducing requires an explicit `any(...)`-style primitive;
//! * builtins have fixed signatures (directions are a distinct type, so
//!   `broadcast(SOW, ROW == d, SOUTH)` is caught statically).

use crate::ast::*;
use crate::error::{LangError, Span};
use std::collections::HashMap;

/// Static type of an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// Controller-resident value.
    Scalar(BaseType),
    /// One value per PE.
    Par(BaseType),
    /// A data-movement direction constant.
    Dir,
}

impl Type {
    fn describe(self) -> String {
        match self {
            Type::Scalar(BaseType::Int) => "int".into(),
            Type::Scalar(BaseType::Logical) => "logical".into(),
            Type::Par(BaseType::Int) => "parallel int".into(),
            Type::Par(BaseType::Logical) => "parallel logical".into(),
            Type::Dir => "direction".into(),
        }
    }

    fn base(self) -> Option<BaseType> {
        match self {
            Type::Scalar(b) | Type::Par(b) => Some(b),
            Type::Dir => None,
        }
    }

    fn is_parallel(self) -> bool {
        matches!(self, Type::Par(_))
    }
}

/// The builtin environment shared by the checker and the interpreter.
pub fn builtin_constants() -> HashMap<&'static str, Type> {
    HashMap::from([
        ("ROW", Type::Par(BaseType::Int)),
        ("COL", Type::Par(BaseType::Int)),
        ("N", Type::Scalar(BaseType::Int)),
        ("H", Type::Scalar(BaseType::Int)),
        ("MAXINT", Type::Scalar(BaseType::Int)),
        ("NORTH", Type::Dir),
        ("EAST", Type::Dir),
        ("SOUTH", Type::Dir),
        ("WEST", Type::Dir),
    ])
}

struct Checker {
    scopes: Vec<HashMap<String, Type>>,
}

impl Checker {
    fn new() -> Self {
        let globals = builtin_constants()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect();
        Checker {
            scopes: vec![globals],
        }
    }

    fn lookup(&self, name: &str) -> Option<Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, decl: &Decl) -> Result<(), LangError> {
        if builtin_constants().contains_key(decl.name.as_str()) {
            return Err(LangError::sema(
                decl.span,
                format!("`{}` is a builtin and cannot be redeclared", decl.name),
            ));
        }
        let ty = if decl.parallel {
            Type::Par(decl.ty)
        } else {
            Type::Scalar(decl.ty)
        };
        if let Some(init) = &decl.init {
            let it = self.expr(init)?;
            self.check_assignable(ty, it, init.span())?;
        }
        // Structurally the stack is never empty (the globals scope is
        // pushed at construction), but a malformed program must surface
        // as a diagnostic, never a panic in a serving worker.
        let Some(scope) = self.scopes.last_mut() else {
            return Err(LangError::sema(
                decl.span,
                format!("declaration of `{}` outside any scope", decl.name),
            ));
        };
        scope.insert(decl.name.clone(), ty);
        Ok(())
    }

    /// `target = value` legality: equal base types; scalar promotes to
    /// parallel; parallel never demotes.
    fn check_assignable(&self, target: Type, value: Type, span: Span) -> Result<(), LangError> {
        let ok = match (target, value) {
            (Type::Dir, _) | (_, Type::Dir) => false,
            (t, v) => t.base() == v.base() && (t.is_parallel() || !v.is_parallel()),
        };
        if ok {
            Ok(())
        } else {
            Err(LangError::sema(
                span,
                format!(
                    "cannot assign `{}` to `{}`",
                    value.describe(),
                    target.describe()
                ),
            ))
        }
    }

    fn item(&mut self, item: &Item) -> Result<(), LangError> {
        match item {
            Item::Decl(d) => self.declare(d),
            Item::Stmt(s) => self.stmt(s),
        }
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::Block(items) => {
                self.scopes.push(HashMap::new());
                for it in items {
                    self.item(it)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Assign { name, value, span } => {
                let target = self.lookup(name).ok_or_else(|| {
                    LangError::sema(*span, format!("undeclared variable `{name}`"))
                })?;
                if builtin_constants().contains_key(name.as_str()) {
                    return Err(LangError::sema(
                        *span,
                        format!("builtin `{name}` is read-only"),
                    ));
                }
                let vt = self.expr(value)?;
                self.check_assignable(target, vt, value.span())
            }
            Stmt::Where {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let ct = self.expr(cond)?;
                if ct != Type::Par(BaseType::Logical) {
                    return Err(LangError::sema(
                        cond.span(),
                        format!(
                            "`where` needs a parallel logical condition, found `{}`",
                            ct.describe()
                        ),
                    ));
                }
                self.stmt(then_branch)?;
                if let Some(e) = else_branch {
                    self.stmt(e)?;
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.scalar_logical(cond, "if")?;
                self.stmt(then_branch)?;
                if let Some(e) = else_branch {
                    self.stmt(e)?;
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                self.scalar_logical(cond, "while")?;
                self.stmt(body)
            }
            Stmt::DoWhile { body, cond, .. } => {
                self.stmt(body)?;
                self.scalar_logical(cond, "do-while")
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                for (name, value) in init.iter().chain(step.iter()) {
                    let target = self.lookup(name).ok_or_else(|| {
                        LangError::sema(*span, format!("undeclared loop variable `{name}`"))
                    })?;
                    let vt = self.expr(value)?;
                    self.check_assignable(target, vt, value.span())?;
                }
                if let Some(c) = cond {
                    self.scalar_logical(c, "for")?;
                }
                self.stmt(body)
            }
            Stmt::Empty => Ok(()),
        }
    }

    fn scalar_logical(&mut self, cond: &Expr, what: &str) -> Result<(), LangError> {
        let t = self.expr(cond)?;
        if t != Type::Scalar(BaseType::Logical) {
            return Err(LangError::sema(
                cond.span(),
                format!(
                    "`{what}` needs a scalar logical condition (the controller branches on it), found `{}`",
                    t.describe()
                ),
            ));
        }
        Ok(())
    }

    fn expr(&mut self, expr: &Expr) -> Result<Type, LangError> {
        match expr {
            Expr::Int(_, _) => Ok(Type::Scalar(BaseType::Int)),
            Expr::Bool(_, _) => Ok(Type::Scalar(BaseType::Logical)),
            Expr::Ident(name, span) => self
                .lookup(name)
                .ok_or_else(|| LangError::sema(*span, format!("undeclared variable `{name}`"))),
            Expr::Unary { op, operand, span } => {
                let t = self.expr(operand)?;
                match (op, t.base()) {
                    (UnOp::Not, Some(BaseType::Logical)) => Ok(t),
                    (UnOp::Neg, Some(BaseType::Int)) => Ok(t),
                    _ => Err(LangError::sema(
                        *span,
                        format!("operator cannot apply to `{}`", t.describe()),
                    )),
                }
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let lt = self.expr(lhs)?;
                let rt = self.expr(rhs)?;
                let (Some(lb), Some(rb)) = (lt.base(), rt.base()) else {
                    return Err(LangError::sema(
                        *span,
                        "directions cannot be combined with operators",
                    ));
                };
                let par = lt.is_parallel() || rt.is_parallel();
                let need = if op.is_logical() {
                    BaseType::Logical
                } else {
                    BaseType::Int
                };
                if lb != need || rb != need {
                    return Err(LangError::sema(
                        *span,
                        format!(
                            "operator needs {} operands, found `{}` and `{}`",
                            Type::Scalar(need).describe(),
                            lt.describe(),
                            rt.describe()
                        ),
                    ));
                }
                let out_base = if op.is_arithmetic() {
                    BaseType::Int
                } else {
                    BaseType::Logical
                };
                Ok(if par {
                    Type::Par(out_base)
                } else {
                    Type::Scalar(out_base)
                })
            }
            Expr::Call { name, args, span } => self.call(name, args, *span),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr], span: Span) -> Result<Type, LangError> {
        use BaseType::*;
        let arg_types: Vec<Type> = args
            .iter()
            .map(|a| self.expr(a))
            .collect::<Result<_, _>>()?;
        let arity = |want: usize| -> Result<(), LangError> {
            if args.len() == want {
                Ok(())
            } else {
                Err(LangError::sema(
                    span,
                    format!("`{name}` takes {want} argument(s), found {}", args.len()),
                ))
            }
        };
        // Accept scalars where parallel values are expected (promotion).
        let want_par = |t: Type, b: BaseType, i: usize| -> Result<(), LangError> {
            if t.base() == Some(b) {
                Ok(())
            } else {
                Err(LangError::sema(
                    args[i].span(),
                    format!(
                        "`{name}` argument {} must be parallel {}, found `{}`",
                        i + 1,
                        Type::Scalar(b).describe(),
                        t.describe()
                    ),
                ))
            }
        };
        let want_dir = |t: Type, i: usize| -> Result<(), LangError> {
            if t == Type::Dir {
                Ok(())
            } else {
                Err(LangError::sema(
                    args[i].span(),
                    format!("`{name}` argument {} must be a direction", i + 1),
                ))
            }
        };
        match name {
            "broadcast" => {
                arity(3)?;
                let b = arg_types[0].base().ok_or_else(|| {
                    LangError::sema(args[0].span(), "cannot broadcast a direction")
                })?;
                want_dir(arg_types[1], 1)?;
                want_par(arg_types[2], Logical, 2)?;
                Ok(Type::Par(b))
            }
            "shift" => {
                arity(2)?;
                let b = arg_types[0]
                    .base()
                    .ok_or_else(|| LangError::sema(args[0].span(), "cannot shift a direction"))?;
                want_dir(arg_types[1], 1)?;
                Ok(Type::Par(b))
            }
            "min" | "max" => {
                arity(3)?;
                want_par(arg_types[0], Int, 0)?;
                want_dir(arg_types[1], 1)?;
                want_par(arg_types[2], Logical, 2)?;
                Ok(Type::Par(Int))
            }
            "selected_min" | "selected_max" => {
                arity(4)?;
                want_par(arg_types[0], Int, 0)?;
                want_dir(arg_types[1], 1)?;
                want_par(arg_types[2], Logical, 2)?;
                want_par(arg_types[3], Logical, 3)?;
                Ok(Type::Par(Int))
            }
            "or" => {
                arity(3)?;
                want_par(arg_types[0], Logical, 0)?;
                want_dir(arg_types[1], 1)?;
                want_par(arg_types[2], Logical, 2)?;
                Ok(Type::Par(Logical))
            }
            "bit" => {
                arity(2)?;
                want_par(arg_types[0], Int, 0)?;
                if arg_types[1] != Type::Scalar(Int) {
                    return Err(LangError::sema(
                        args[1].span(),
                        "`bit` position must be a scalar int",
                    ));
                }
                Ok(Type::Par(Logical))
            }
            "any" => {
                arity(1)?;
                want_par(arg_types[0], Logical, 0)?;
                Ok(Type::Scalar(Logical))
            }
            "opposite" => {
                arity(1)?;
                want_dir(arg_types[0], 0)?;
                Ok(Type::Dir)
            }
            _ => Err(LangError::sema(span, format!("unknown builtin `{name}`"))),
        }
    }
}

/// Checks a parsed program; returns the first error found.
pub fn check(program: &Program) -> Result<(), LangError> {
    let mut checker = Checker::new();
    for item in &program.items {
        checker.item(item)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_tokens;

    fn check_src(src: &str) -> Result<(), LangError> {
        check(&parse_tokens(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn accepts_well_typed_program() {
        check_src(
            r#"
            parallel int x;
            int d;
            x = ROW * 10 + COL;
            where (ROW == d) x = 0;
            "#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_undeclared_variable() {
        let e = check_src("x = 1;").unwrap_err();
        assert!(e.message.contains("undeclared"), "{e}");
    }

    #[test]
    fn rejects_parallel_to_scalar_assignment() {
        let e = check_src("int s; s = ROW;").unwrap_err();
        assert!(e.message.contains("cannot assign"), "{e}");
    }

    #[test]
    fn allows_scalar_to_parallel_promotion() {
        check_src("parallel int x; int k; k = 3; x = k;").unwrap();
    }

    #[test]
    fn where_requires_parallel_condition() {
        let e = check_src("logical g; g = true; where (g) ;").unwrap_err();
        assert!(e.message.contains("parallel logical"), "{e}");
    }

    #[test]
    fn if_requires_scalar_condition() {
        let e = check_src("if (ROW == 0) ;").unwrap_err();
        assert!(e.message.contains("scalar logical"), "{e}");
    }

    #[test]
    fn builtin_signatures_enforced() {
        let e = check_src("parallel int x; x = broadcast(x, ROW == 0, SOUTH);").unwrap_err();
        assert!(e.message.contains("direction"), "{e}");
        let e = check_src("parallel int x; x = min(x, WEST);").unwrap_err();
        assert!(e.message.contains("3 argument"), "{e}");
        let e = check_src("parallel int x; x = frobnicate(x);").unwrap_err();
        assert!(e.message.contains("unknown builtin"), "{e}");
    }

    #[test]
    fn builtins_are_read_only() {
        let e = check_src("ROW = 3;").unwrap_err();
        assert!(e.message.contains("read-only"), "{e}");
        let e = check_src("parallel int ROW;").unwrap_err();
        assert!(e.message.contains("redeclared"), "{e}");
    }

    #[test]
    fn logical_ops_need_logicals() {
        let e = check_src("parallel int x; x = x && x;").unwrap_err();
        assert!(e.message.contains("logical operands"), "{e}");
    }

    #[test]
    fn arithmetic_needs_ints() {
        let e = check_src("parallel logical l; l = l + l;").unwrap_err();
        assert!(e.message.contains("int operands"), "{e}");
    }

    #[test]
    fn directions_are_not_values() {
        let e = check_src("parallel int x; x = NORTH;").unwrap_err();
        assert!(e.message.contains("cannot assign"), "{e}");
        let e = check_src("int s; s = NORTH + 1;").unwrap_err();
        assert!(e.message.contains("direction"), "{e}");
    }

    #[test]
    fn block_scoping_hides_inner_declarations() {
        let e = check_src("{ int inner; inner = 1; } inner = 2;").unwrap_err();
        assert!(e.message.contains("undeclared"), "{e}");
    }

    #[test]
    fn any_reduces_to_scalar() {
        check_src(
            r#"
            logical go;
            go = any(ROW == 0);
            while (go) { go = false; }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn for_loop_over_scalar_int() {
        check_src(
            r#"
            int j;
            parallel logical e;
            parallel int src;
            for (j = H - 1; j >= 0; j = j - 1)
                where (or(!bit(src, j) && e, WEST, COL == N - 1) && bit(src, j))
                    e = false;
            "#,
        )
        .unwrap();
    }
}
