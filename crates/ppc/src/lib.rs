//! # ppa-ppc — the Polymorphic Parallel C runtime
//!
//! The paper programs the PPA in *Polymorphic Parallel C* (PPC), a C
//! dialect with three extensions (Section 2):
//!
//! 1. a **`parallel` memorization class** — variables allocated in every
//!    PE's local memory instead of the controller's memory. Here a parallel
//!    variable is a [`Parallel<T>`] (one value per PE); scalar variables are
//!    ordinary Rust values living "in the controller".
//! 2. a **`where`/`elsewhere` control structure** — partitions the PEs into
//!    the set satisfying a parallel condition and its complement; each set
//!    executes its own instruction group. [`Ppa::where_`] /
//!    [`Ppa::where_else`] reproduce this as masked-write scopes (SIMD
//!    semantics: every PE sees every instruction, the mask gates register
//!    writes), including correct nesting.
//! 3. **communication primitives** — `shift(src, dir)` and
//!    `broadcast(src, dir, L)` ([`Ppa::shift`], [`Ppa::broadcast`]), plus
//!    the bus *combination* routines built from them: the bit-serial
//!    [`Ppa::min`] and [`Ppa::selected_min`] of Section 3 (cost `O(h)`
//!    controller steps for `h`-bit integers), [`Ppa::max`], and the wired
//!    OR [`Ppa::bus_or`].
//!
//! The runtime wraps a [`ppa_machine::Machine`]; every PPC operation issues
//! the corresponding costed machine instructions, so the controller's
//! [`StepReport`](ppa_machine::StepReport) measures exactly the time steps
//! the paper's complexity analysis counts.
//!
//! ## Example: row-wise minimum in `O(h)` steps
//!
//! ```
//! use ppa_ppc::prelude::*;
//!
//! let mut ppa = Ppa::square(4).with_word_bits(8);
//! let v = Parallel::from_fn(ppa.dim(), |c| ((c.row * 4 + c.col) % 7) as i64);
//! // One cluster per row, headed at the last column, data moving West —
//! // exactly the configuration of statement 11 of the MCP algorithm.
//! let col = ppa.col_index();
//! let nm1 = ppa.constant(3);
//! let heads = ppa.eq(&col, &nm1).unwrap();
//! let m = ppa.min(&v, Direction::West, &heads).unwrap();
//! for r in 0..4 {
//!     let expect = (0..4).map(|c| ((r * 4 + c) % 7) as i64).min().unwrap();
//!     assert!(m.row(r).iter().all(|&x| x == expect));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collective;
pub mod combine;
pub mod error;
pub mod ops;
pub mod ppa;
pub mod prelude;

pub use error::PpcError;
pub use ppa::{Parallel, Ppa};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PpcError>;
