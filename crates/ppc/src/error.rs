//! PPC runtime errors.

use ppa_machine::MachineError;
use std::fmt;

/// Errors raised by PPC runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PpcError {
    /// An underlying machine primitive failed (bus fault, shape mismatch).
    Machine(MachineError),
    /// A `selected_min` was issued with a bus cluster containing no selected
    /// node: the result on that cluster would be an arbitrary value leaked
    /// from a neighbouring cluster, so the simulator rejects the call. The
    /// paper's usage (statement 12 of `minimum_cost_path`) always selects at
    /// least the argmin node of each cluster.
    EmptySelection,
    /// A value does not fit the machine's `h`-bit unsigned word: the
    /// bit-serial `min`/`max` routines scan exactly `h` bit planes and
    /// require `0 <= v < 2^h`. Carries the offending value.
    ValueOutOfRange(i64),
    /// An operation that requires a square array (e.g. the `ROW == COL`
    /// diagonal masks) was issued on a rectangular machine.
    NotSquare {
        /// Rows of the offending machine.
        rows: usize,
        /// Columns of the offending machine.
        cols: usize,
    },
}

impl fmt::Display for PpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpcError::Machine(e) => write!(f, "machine error: {e}"),
            PpcError::EmptySelection => {
                write!(f, "selected_min: a bus cluster has no selected node")
            }
            PpcError::ValueOutOfRange(v) => {
                write!(f, "value {v} does not fit the machine's h-bit word")
            }
            PpcError::NotSquare { rows, cols } => {
                write!(
                    f,
                    "operation requires a square array, machine is {rows}x{cols}"
                )
            }
        }
    }
}

impl std::error::Error for PpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PpcError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for PpcError {
    fn from(e: MachineError) -> Self {
        PpcError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_machine::{Axis, Dim};

    #[test]
    fn machine_errors_convert() {
        let e: PpcError = MachineError::DimMismatch {
            expected: Dim::new(2, 2),
            found: Dim::new(3, 3),
        }
        .into();
        assert!(matches!(e, PpcError::Machine(_)));
        assert!(e.to_string().contains("machine error"));
    }

    #[test]
    fn displays_are_informative() {
        assert!(PpcError::EmptySelection
            .to_string()
            .contains("no selected node"));
        assert!(PpcError::ValueOutOfRange(300).to_string().contains("300"));
        assert!(PpcError::NotSquare { rows: 2, cols: 5 }
            .to_string()
            .contains("2x5"));
        let bus = PpcError::Machine(MachineError::BusFault {
            axis: Axis::Row,
            lines: vec![1],
        });
        assert!(bus.to_string().contains("bus fault"));
    }
}
