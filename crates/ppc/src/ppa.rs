//! The PPC virtual machine: parallel variables, activity masks and the
//! `where`/`elsewhere` control structure.

use crate::error::PpcError;
use crate::Result;
use ppa_machine::{
    Dim, Direction, ExecMode, ExecStats, Executor, Machine, OccupancySampling, PackedBackend,
    Plane, ScalarBackend, StepReport, ThreadedBackend, Word,
};

/// A PPC `parallel` variable: one value per PE.
///
/// This is exactly a machine register [`Plane`]; the alias documents the
/// PPC memorization class (`parallel int X;` becomes
/// `let mut x: Parallel<i64> = ...`). Scalar PPC variables are ordinary
/// Rust values held "in the controller".
pub type Parallel<T> = Plane<T>;

/// The PPC runtime: a PPA machine plus the SIMD activity-mask stack that
/// implements `where`/`elsewhere`.
///
/// All computation methods (in [`ops`](crate::ops)) execute on **all** PEs —
/// SIMD hardware cannot skip an instruction per PE — while the *assignment*
/// methods ([`Ppa::assign`], [`Ppa::assign_imm`]) write only to the PEs
/// active under the current mask, matching the semantics of the paper's
/// `where (expression) <group1>; elsewhere <group2>;` construct.
#[derive(Debug, Clone)]
pub struct Ppa<E: Executor = ScalarBackend> {
    machine: Machine<E>,
    /// Stack of effective (pre-ANDed) activity masks; empty = all active.
    masks: Vec<Plane<bool>>,
    word_bits: u32,
}

/// Default integer width `h`: wide enough for every workload in the
/// experiment suite while keeping the bit-serial routines honest.
pub const DEFAULT_WORD_BITS: u32 = 16;

impl Ppa<ScalarBackend> {
    /// Creates a square `n x n` PPC runtime with the default word width.
    pub fn square(n: usize) -> Self {
        Ppa::from_machine(Machine::square(n))
    }

    /// Creates a square runtime with a host execution mode.
    pub fn square_with_mode(n: usize, mode: ExecMode) -> Self {
        Ppa::from_machine(Machine::with_mode(Dim::square(n), mode))
    }
}

impl Ppa<PackedBackend> {
    /// Creates a square `n x n` runtime on the packed bit-plane backend.
    pub fn packed(n: usize) -> Self {
        Ppa::from_machine(Machine::packed_square(n))
    }

    /// Creates a packed-backend runtime with a host execution mode.
    pub fn packed_with_mode(n: usize, mode: ExecMode) -> Self {
        Ppa::from_machine(Machine::with_backend(
            Dim::square(n),
            mode,
            PackedBackend::new(),
        ))
    }
}

impl Ppa<ThreadedBackend> {
    /// Creates a square `n x n` runtime on the threaded bit-plane backend
    /// with a `threads`-shard worker pool.
    pub fn threaded(n: usize, threads: usize) -> Self {
        Ppa::from_machine(Machine::threaded_square(n, threads))
    }
}

impl<W: Word> Ppa<PackedBackend<W>> {
    /// Creates a square `n x n` runtime on the packed backend with an
    /// explicit machine word `W` (e.g. `Ppa::<PackedBackend<W256>>`).
    pub fn packed_wide(n: usize) -> Self {
        Ppa::from_machine(Machine::packed_square_wide(n))
    }
}

impl<W: Word> Ppa<ThreadedBackend<W>> {
    /// Creates a square `n x n` runtime on the threaded backend with an
    /// explicit machine word `W`.
    pub fn threaded_wide(n: usize, threads: usize) -> Self {
        Ppa::from_machine(Machine::threaded_square_wide(n, threads))
    }
}

impl<E: Executor> Ppa<E> {
    /// Creates a runtime on an explicit machine.
    pub fn from_machine(machine: Machine<E>) -> Self {
        Ppa {
            machine,
            masks: Vec::new(),
            word_bits: DEFAULT_WORD_BITS,
        }
    }

    /// Sets the machine integer width `h` (bits scanned by `min`).
    ///
    /// # Panics
    /// Panics unless `1 <= h <= 62` (values must stay representable as
    /// non-negative `i64`).
    pub fn with_word_bits(mut self, h: u32) -> Self {
        assert!((1..=62).contains(&h), "word width must be in 1..=62");
        self.word_bits = h;
        self
    }

    /// The machine integer width `h`.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// The largest representable value, `2^h - 1`. The paper uses this as
    /// `MAXINT`, the "infinite" weight marking absent edges; the saturating
    /// adder ([`Ppa::sat_add`](crate::ops)) keeps it absorbing.
    pub fn maxint(&self) -> i64 {
        (1i64 << self.word_bits) - 1
    }

    /// Array dimensions.
    pub fn dim(&self) -> Dim {
        self.machine.dim()
    }

    /// Side length, for square machines.
    ///
    /// # Errors
    /// [`PpcError::NotSquare`] on rectangular machines.
    pub fn n(&self) -> Result<usize> {
        let d = self.dim();
        if d.is_square() {
            Ok(d.rows)
        } else {
            Err(PpcError::NotSquare {
                rows: d.rows,
                cols: d.cols,
            })
        }
    }

    /// Borrow the underlying machine.
    pub fn machine(&self) -> &Machine<E> {
        &self.machine
    }

    /// Mutably borrow the underlying machine (advanced use: tracing,
    /// issuing raw instructions).
    pub fn machine_mut(&mut self) -> &mut Machine<E> {
        &mut self.machine
    }

    /// The execution backend's resource counters (plan-cache hits, arena
    /// recycling; all zero on the scalar backend).
    pub fn exec_stats(&self) -> ExecStats {
        self.machine.exec_stats()
    }

    /// Sets how often observed instructions compute activity statistics
    /// (mask occupancy / bus clusters). Step counters are unaffected.
    pub fn set_occupancy_sampling(&mut self, sampling: OccupancySampling) {
        self.machine
            .controller_mut()
            .set_occupancy_sampling(sampling);
    }

    /// Snapshot of the controller's step tallies.
    pub fn steps(&self) -> StepReport {
        self.machine.controller().report()
    }

    /// Zeroes the step counters.
    pub fn reset_steps(&mut self) {
        self.machine.reset_steps();
    }

    /// Grants the program a cooperative step budget (see
    /// [`Machine::limit_steps`]): once spent, machine primitives fail with
    /// [`MachineError::StepBudgetExhausted`](ppa_machine::MachineError::StepBudgetExhausted)
    /// instead of issuing, and the error surfaces through
    /// [`PpcError::Machine`](crate::PpcError::Machine).
    pub fn limit_steps(&mut self, budget: u64) {
        self.machine.limit_steps(budget);
    }

    /// Removes the step limit installed by [`Ppa::limit_steps`].
    pub fn clear_step_limit(&mut self) {
        self.machine.clear_step_limit();
    }

    /// Steps left before the budget brake engages (`None` when unlimited).
    pub fn steps_remaining(&self) -> Option<u64> {
        self.machine.steps_remaining()
    }

    /// Attaches a cooperative cancellation token (see
    /// [`Machine::attach_cancel`]).
    pub fn attach_cancel(&mut self, token: ppa_machine::CancelToken) {
        self.machine.attach_cancel(token);
    }

    /// Detaches the cancellation token, returning it if one was attached.
    pub fn take_cancel(&mut self) -> Option<ppa_machine::CancelToken> {
        self.machine.take_cancel()
    }

    /// Enables instruction tracing on the controller.
    pub fn enable_trace(&mut self) {
        self.machine.controller_mut().enable_trace();
    }

    /// Stops tracing and returns the collected trace.
    pub fn take_trace(&mut self) -> Vec<ppa_machine::controller::TraceEntry> {
        self.machine.controller_mut().take_trace()
    }

    /// Labels subsequent instructions with `phase` (trace-only, free).
    pub fn set_phase(&mut self, phase: Option<&'static str>) {
        self.machine.controller_mut().set_phase(phase);
    }

    // ----- observability ----------------------------------------------------

    /// Installs a trace sink on the controller: spans, phase labels and
    /// per-instruction events (with occupancy/cluster statistics) flow to
    /// it, timestamped in controller steps.
    pub fn install_sink(&mut self, sink: impl ppa_obs::TraceSink + 'static) {
        self.machine.controller_mut().install_sink(sink);
    }

    /// Removes the sink, closing any spans still open.
    pub fn take_sink(&mut self) -> Option<Box<dyn ppa_obs::TraceSink>> {
        self.machine.controller_mut().take_sink()
    }

    /// Starts collecting metrics (per-class step counters, bus and mask
    /// activity).
    pub fn enable_metrics(&mut self) {
        self.machine.controller_mut().enable_metrics();
    }

    /// Stops collecting and returns the metrics gathered so far.
    pub fn take_metrics(&mut self) -> ppa_obs::Metrics {
        self.machine.controller_mut().take_metrics()
    }

    /// The live metrics registry, if collecting (algorithms use this to
    /// record their own histograms, e.g. steps per iteration).
    pub fn metrics_mut(&mut self) -> Option<&mut ppa_obs::Metrics> {
        self.machine.controller_mut().metrics_mut()
    }

    /// Starts attributing host wall-clock to instruction classes (see
    /// `Machine::enable_micro_profile`): every costed primitive buckets
    /// its execution time under its step class, keyed by backend name.
    pub fn enable_micro_profile(&mut self) {
        self.machine.enable_micro_profile();
    }

    /// Stops micro-op profiling and returns the profile; when metrics
    /// are also collecting, the tallies are folded into the registry as
    /// `exec.<backend>.<class>.ns` / `.count` counters first.
    pub fn take_micro_profile(&mut self) -> ppa_obs::MicroProfile {
        self.machine.take_micro_profile()
    }

    /// Opens a named span (`"mcp"`, `"iteration[3]"`, ...) at the current
    /// step. Free when no sink is installed.
    pub fn enter_span(&mut self, name: &str) {
        self.machine.controller_mut().enter_span(name);
    }

    /// Closes the innermost named span.
    pub fn exit_span(&mut self) {
        self.machine.controller_mut().exit_span();
    }

    /// Whether any observer (sink or metrics) is attached. Routines use
    /// this to skip building span names on unobserved hot paths.
    pub fn observing(&self) -> bool {
        self.machine.controller().observing()
    }

    // ----- activity masks ---------------------------------------------------

    /// The effective activity mask (`None` when all PEs are active).
    pub fn current_mask(&self) -> Option<&Plane<bool>> {
        self.masks.last()
    }

    /// Executes `body` with the PEs satisfying `cond` active — the PPC
    /// `where (cond) { body }` construct. Nested `where`s intersect.
    /// Entering the scope costs one controller step (the activity-bit
    /// write); leaving is free (the previous mask is restored from the
    /// controller's stack).
    pub fn where_<R>(
        &mut self,
        cond: &Parallel<bool>,
        body: impl FnOnce(&mut Ppa<E>) -> R,
    ) -> Result<R> {
        self.push_mask(cond)?;
        let r = body(self);
        self.masks.pop();
        Ok(r)
    }

    /// The full `where (cond) { then } elsewhere { other }` construct:
    /// `then` runs with the satisfying PEs active, `other` with the
    /// complementary set (still intersected with any enclosing mask).
    pub fn where_else<R, S>(
        &mut self,
        cond: &Parallel<bool>,
        then_body: impl FnOnce(&mut Ppa<E>) -> R,
        else_body: impl FnOnce(&mut Ppa<E>) -> S,
    ) -> Result<(R, S)> {
        self.push_mask(cond)?;
        let r = then_body(self);
        self.masks.pop();
        let ncond = self.machine.map(cond, |&b| !b)?;
        self.push_mask(&ncond)?;
        let s = else_body(self);
        self.masks.pop();
        Ok((r, s))
    }

    fn push_mask(&mut self, cond: &Parallel<bool>) -> Result<()> {
        let effective = match self.masks.last() {
            None => {
                self.machine.record_step(ppa_machine::Op::Alu);
                cond.clone()
            }
            Some(parent) => self.machine.zip(parent, cond, |&a, &b| a && b)?,
        };
        self.masks.push(effective);
        Ok(())
    }

    // ----- masked assignment -----------------------------------------------

    /// Masked assignment `dst = src` under the current activity mask:
    /// one controller step. Inactive PEs keep their previous value.
    pub fn assign<T: Copy + Send + Sync>(
        &mut self,
        dst: &mut Parallel<T>,
        src: &Parallel<T>,
    ) -> Result<()> {
        match self.masks.last() {
            None => {
                // All active: plain register copy.
                let all = Plane::filled(self.dim(), true);
                self.machine.assign_masked(dst, src, &all)?;
            }
            Some(mask) => {
                let mask = mask.clone();
                self.machine.assign_masked(dst, src, &mask)?;
            }
        }
        Ok(())
    }

    /// Masked assignment of an immediate (`dst = k`): one controller step
    /// for the immediate load plus one for the masked write.
    pub fn assign_imm<T: Copy + Send + Sync>(
        &mut self,
        dst: &mut Parallel<T>,
        value: T,
    ) -> Result<()> {
        let imm = self.machine.imm(value);
        self.assign(dst, &imm)
    }

    // ----- hardwired registers & immediates ---------------------------------

    /// The `ROW` register as a parallel value (one step).
    pub fn row_index(&mut self) -> Parallel<i64> {
        self.machine.row_index()
    }

    /// The `COL` register as a parallel value (one step).
    pub fn col_index(&mut self) -> Parallel<i64> {
        self.machine.col_index()
    }

    /// Broadcast of a controller scalar into every PE (one step).
    pub fn constant<T: Clone + Send + Sync>(&mut self, value: T) -> Parallel<T> {
        self.machine.imm(value)
    }

    /// Per-lane scalar broadcast: lane `l` (columns `l*lane_cols ..
    /// (l+1)*lane_cols`) receives `values[l]` (one step — each lane's
    /// sub-controller issues its immediate in lockstep).
    pub fn lane_constant<T: Clone + Send + Sync>(
        &mut self,
        values: &[T],
        lane_cols: usize,
    ) -> Parallel<T> {
        self.machine.lane_imm(values, lane_cols)
    }

    /// The per-lane `COL` register, `col % lane_cols` (one step).
    pub fn lane_col_index(&mut self, lane_cols: usize) -> Parallel<i64> {
        self.machine.lane_col_index(lane_cols)
    }

    // ----- communication ----------------------------------------------------

    /// The PPC `shift(src, dir)` primitive (one step). Upstream-edge PEs
    /// receive `fill` (PPC leaves them implementation-defined; the
    /// algorithms in this suite never read them).
    pub fn shift<T: Copy + Send + Sync + 'static>(
        &mut self,
        src: &Parallel<T>,
        dir: Direction,
        fill: T,
    ) -> Result<Parallel<T>> {
        Ok(self.machine.shift(src, dir, fill)?)
    }

    /// The PPC `broadcast(src, dir, L)` primitive (one step): `L` is the
    /// parallel logical variable whose `true` elements configure their
    /// switch boxes Open; every PE receives the value injected by the Open
    /// head of its bus cluster.
    pub fn broadcast<T: Copy + Send + Sync + 'static>(
        &mut self,
        src: &Parallel<T>,
        dir: Direction,
        open: &Parallel<bool>,
    ) -> Result<Parallel<T>> {
        Ok(self.machine.broadcast(src, dir, open)?)
    }

    /// Cluster-wide wired-OR (one step): the `or(x, dir, L)` routine used
    /// inside the paper's `min` (statement 9 of the routine).
    pub fn bus_or(
        &mut self,
        values: &Parallel<bool>,
        dir: Direction,
        open: &Parallel<bool>,
    ) -> Result<Parallel<bool>> {
        Ok(self.machine.bus_or(values, dir, open)?)
    }

    /// Controller-side global OR (one step): `true` iff any PE raises
    /// `flags`. Used for data-dependent loop exits (MCP statement 20:
    /// "while at least one SOW in row d has changed").
    pub fn any(&mut self, flags: &Parallel<bool>) -> Result<bool> {
        Ok(self.machine.global_or(flags)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn where_masks_assignment() {
        let mut ppa = Ppa::square(3);
        let mut x = Parallel::filled(ppa.dim(), 0i64);
        let row = ppa.row_index();
        let one = ppa.constant(1i64);
        let cond = ppa.machine_mut().zip(&row, &one, |a, b| a == b).unwrap();
        ppa.where_(&cond, |p| {
            let nine = p.constant(9i64);
            p.assign(&mut x, &nine).unwrap();
        })
        .unwrap();
        assert_eq!(x.row(0), &[0, 0, 0]);
        assert_eq!(x.row(1), &[9, 9, 9]);
        assert_eq!(x.row(2), &[0, 0, 0]);
    }

    #[test]
    fn where_else_partitions() {
        let mut ppa = Ppa::square(2);
        let mut x = Parallel::filled(ppa.dim(), 0i64);
        let cond = Parallel::from_fn(ppa.dim(), |c| c.col == 0);
        // The two branches run sequentially; Rust's borrow rules want
        // disjoint captures, so branches that assign the *same* variable
        // stage into fresh planes and the caller merges afterwards (the
        // MCP implementation instead uses two successive `where_` scopes).
        let (a, b) = ppa
            .where_else(
                &cond,
                |p| {
                    let mut y = Parallel::filled(p.dim(), 0i64);
                    p.assign_imm(&mut y, 1).unwrap();
                    y
                },
                |p| {
                    let mut y = Parallel::filled(p.dim(), 0i64);
                    p.assign_imm(&mut y, 2).unwrap();
                    y
                },
            )
            .unwrap();
        let merged = ppa.add(&a, &b).unwrap();
        ppa.assign(&mut x, &merged).unwrap();
        assert_eq!(x.row(0), &[1, 2]);
        assert_eq!(x.row(1), &[1, 2]);
    }

    #[test]
    fn nested_where_intersects() {
        let mut ppa = Ppa::square(3);
        let mut x = Parallel::filled(ppa.dim(), 0i64);
        let rows = Parallel::from_fn(ppa.dim(), |c| c.row >= 1);
        let cols = Parallel::from_fn(ppa.dim(), |c| c.col >= 1);
        ppa.where_(&rows, |p| {
            p.where_(&cols, |q| q.assign_imm(&mut x, 5).unwrap())
                .unwrap();
        })
        .unwrap();
        let lit: usize = x.iter().filter(|&&v| v == 5).count();
        assert_eq!(lit, 4); // the 2x2 bottom-right block
        assert_eq!(*x.at(0, 0), 0);
        assert_eq!(*x.at(1, 0), 0);
        assert_eq!(*x.at(1, 1), 5);
    }

    #[test]
    fn mask_restored_after_scope() {
        let mut ppa = Ppa::square(2);
        let cond = Parallel::filled(ppa.dim(), false);
        ppa.where_(&cond, |_| {}).unwrap();
        assert!(ppa.current_mask().is_none());
        let mut x = Parallel::filled(ppa.dim(), 0i64);
        ppa.assign_imm(&mut x, 7).unwrap();
        assert!(x.iter().all(|&v| v == 7));
    }

    #[test]
    fn maxint_tracks_word_bits() {
        let ppa = Ppa::square(2).with_word_bits(8);
        assert_eq!(ppa.maxint(), 255);
        let ppa = Ppa::square(2).with_word_bits(16);
        assert_eq!(ppa.maxint(), 65_535);
    }

    #[test]
    #[should_panic(expected = "word width")]
    fn word_bits_bounds_enforced() {
        let _ = Ppa::square(2).with_word_bits(63);
    }

    #[test]
    fn n_requires_square() {
        let ppa = Ppa::from_machine(Machine::new(2, 3));
        assert!(matches!(ppa.n(), Err(PpcError::NotSquare { .. })));
        assert_eq!(Ppa::square(5).n().unwrap(), 5);
    }

    #[test]
    fn steps_accumulate_across_operations() {
        let mut ppa = Ppa::square(2);
        let before = ppa.steps().total();
        let x = ppa.constant(1i64);
        let open = ppa.constant(true);
        ppa.broadcast(&x, Direction::East, &open).unwrap();
        assert_eq!(ppa.steps().total(), before + 3);
    }
}
