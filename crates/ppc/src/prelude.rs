//! Convenience re-exports for PPC programs.
//!
//! ```
//! use ppa_ppc::prelude::*;
//! let mut ppa = Ppa::square(4);
//! let x: Parallel<i64> = ppa.constant(0);
//! assert_eq!(x.dim(), ppa.dim());
//! let _ = Direction::South;
//! ```

pub use crate::error::PpcError;
pub use crate::ppa::{Parallel, Ppa, DEFAULT_WORD_BITS};
pub use crate::Result;
pub use ppa_machine::{Coord, Dim, Direction, ExecMode, Op, StepReport};
