//! Parallel ALU operations.
//!
//! Each method issues exactly one SIMD controller step (one `alu`
//! instruction) and computes elementwise across all PEs — the activity mask
//! only gates *assignments* ([`Ppa::assign`]), never computation, faithful
//! to SIMD hardware.
//!
//! Arithmetic is the paper's: weights and path costs are `h`-bit unsigned
//! integers with `MAXINT = 2^h - 1` playing "infinity"; [`Ppa::sat_add`]
//! keeps `MAXINT` absorbing so a missing edge never becomes a finite cost
//! by overflow.

use crate::ppa::{Parallel, Ppa};
use crate::Result;
use ppa_machine::Executor;

impl<E: Executor> Ppa<E> {
    /// Elementwise wrapping addition (one step). Prefer [`Ppa::sat_add`]
    /// for path costs.
    pub fn add(&mut self, a: &Parallel<i64>, b: &Parallel<i64>) -> Result<Parallel<i64>> {
        Ok(self.machine_mut().zip(a, b, |x, y| x + y)?)
    }

    /// Elementwise saturating addition over the `h`-bit word: any sum that
    /// reaches or exceeds `MAXINT` — in particular any sum involving
    /// `MAXINT` itself — yields `MAXINT` (one step).
    pub fn sat_add(&mut self, a: &Parallel<i64>, b: &Parallel<i64>) -> Result<Parallel<i64>> {
        let max = self.maxint();
        Ok(self
            .machine_mut()
            .zip(a, b, move |&x, &y| (x + y).min(max))?)
    }

    /// Elementwise subtraction (one step).
    pub fn sub(&mut self, a: &Parallel<i64>, b: &Parallel<i64>) -> Result<Parallel<i64>> {
        Ok(self.machine_mut().zip(a, b, |x, y| x - y)?)
    }

    /// Elementwise two-input minimum (one step). This is the PE-local
    /// word minimum; the *bus* minimum across a cluster is [`Ppa::min`].
    pub fn min2(&mut self, a: &Parallel<i64>, b: &Parallel<i64>) -> Result<Parallel<i64>> {
        Ok(self.machine_mut().zip(a, b, |&x, &y| x.min(y))?)
    }

    /// Elementwise two-input maximum (one step).
    pub fn max2(&mut self, a: &Parallel<i64>, b: &Parallel<i64>) -> Result<Parallel<i64>> {
        Ok(self.machine_mut().zip(a, b, |&x, &y| x.max(y))?)
    }

    /// Elementwise equality (one step).
    pub fn eq<T: PartialEq + Sync>(
        &mut self,
        a: &Parallel<T>,
        b: &Parallel<T>,
    ) -> Result<Parallel<bool>> {
        Ok(self.machine_mut().zip(a, b, |x, y| x == y)?)
    }

    /// Elementwise inequality (one step).
    pub fn ne<T: PartialEq + Sync>(
        &mut self,
        a: &Parallel<T>,
        b: &Parallel<T>,
    ) -> Result<Parallel<bool>> {
        Ok(self.machine_mut().zip(a, b, |x, y| x != y)?)
    }

    /// Elementwise `<` (one step).
    pub fn lt(&mut self, a: &Parallel<i64>, b: &Parallel<i64>) -> Result<Parallel<bool>> {
        Ok(self.machine_mut().zip(a, b, |x, y| x < y)?)
    }

    /// Elementwise `<=` (one step).
    pub fn le(&mut self, a: &Parallel<i64>, b: &Parallel<i64>) -> Result<Parallel<bool>> {
        Ok(self.machine_mut().zip(a, b, |x, y| x <= y)?)
    }

    /// Elementwise logical AND (one step).
    pub fn and(&mut self, a: &Parallel<bool>, b: &Parallel<bool>) -> Result<Parallel<bool>> {
        Ok(self.machine_mut().zip(a, b, |&x, &y| x && y)?)
    }

    /// Elementwise logical OR (one step).
    pub fn or(&mut self, a: &Parallel<bool>, b: &Parallel<bool>) -> Result<Parallel<bool>> {
        Ok(self.machine_mut().zip(a, b, |&x, &y| x || y)?)
    }

    /// Elementwise logical NOT (one step).
    pub fn not(&mut self, a: &Parallel<bool>) -> Result<Parallel<bool>> {
        Ok(self.machine_mut().map(a, |&x| !x)?)
    }

    /// The paper's `bit(x, i)` parallel function: the `i`-th bit plane of a
    /// parallel integer (one step). Values must be non-negative.
    pub fn bit(&mut self, a: &Parallel<i64>, i: u32) -> Result<Parallel<bool>> {
        debug_assert!(i < 63);
        Ok(self.machine_mut().map(a, move |&x| {
            debug_assert!(x >= 0, "bit() requires non-negative values");
            (x >> i) & 1 == 1
        })?)
    }

    /// Elementwise select `if m { a } else { b }` (one step).
    pub fn select<T: Copy + Send + Sync>(
        &mut self,
        m: &Parallel<bool>,
        a: &Parallel<T>,
        b: &Parallel<T>,
    ) -> Result<Parallel<T>> {
        Ok(self
            .machine_mut()
            .zip3(m, a, b, |&k, &x, &y| if k { x } else { y })?)
    }

    /// Elementwise conversion from logical to integer (one step).
    pub fn to_int(&mut self, a: &Parallel<bool>) -> Result<Parallel<i64>> {
        Ok(self.machine_mut().map(a, |&b| i64::from(b))?)
    }

    /// Checks (without issuing controller steps — this is a simulator
    /// guardrail, not a machine instruction) that every element of `a` fits
    /// the `h`-bit unsigned word scanned by the bit-serial routines.
    pub fn check_representable(&self, a: &Parallel<i64>) -> Result<()> {
        let max = self.maxint();
        for &v in a.iter() {
            if v < 0 || v > max {
                return Err(crate::PpcError::ValueOutOfRange(v));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PpcError;

    fn fixture() -> (Ppa, Parallel<i64>, Parallel<i64>) {
        let ppa = Ppa::square(3).with_word_bits(8);
        let a = Parallel::from_fn(ppa.dim(), |c| (c.row * 3 + c.col) as i64);
        let b = Parallel::from_fn(ppa.dim(), |c| (c.col * 2) as i64);
        (ppa, a, b)
    }

    #[test]
    fn arithmetic_elementwise() {
        let (mut ppa, a, b) = fixture();
        let s = ppa.add(&a, &b).unwrap();
        assert_eq!(*s.at(2, 2), 8 + 4);
        let d = ppa.sub(&a, &b).unwrap();
        assert_eq!(*d.at(0, 2), 2 - 4);
        let m = ppa.min2(&a, &b).unwrap();
        assert_eq!(*m.at(0, 2), 2);
        let x = ppa.max2(&a, &b).unwrap();
        assert_eq!(*x.at(0, 2), 4);
    }

    #[test]
    fn sat_add_keeps_maxint_absorbing() {
        let (mut ppa, _, _) = fixture();
        let max = ppa.maxint();
        let inf = ppa.constant(max);
        let one = ppa.constant(1i64);
        let s = ppa.sat_add(&inf, &one).unwrap();
        assert!(s.iter().all(|&v| v == max));
        // Near-saturation also clamps.
        let big = ppa.constant(max - 1);
        let three = ppa.constant(3i64);
        let s = ppa.sat_add(&big, &three).unwrap();
        assert!(s.iter().all(|&v| v == max));
    }

    #[test]
    fn comparisons() {
        let (mut ppa, a, b) = fixture();
        let lt = ppa.lt(&a, &b).unwrap();
        assert!(*lt.at(0, 1)); // 1 < 2
        assert!(!*lt.at(1, 0)); // 3 < 0 is false
        let eq = ppa.eq(&a, &b).unwrap();
        assert!(*eq.at(0, 0)); // 0 == 0
        let ne = ppa.ne(&a, &b).unwrap();
        assert!(!*ne.at(0, 0));
        let le = ppa.le(&a, &b).unwrap();
        assert!(*le.at(0, 0));
    }

    #[test]
    fn boolean_algebra() {
        let mut ppa = Ppa::square(2);
        let t = ppa.constant(true);
        let f = ppa.constant(false);
        assert!(ppa.and(&t, &f).unwrap().iter().all(|&b| !b));
        assert!(ppa.or(&t, &f).unwrap().iter().all(|&b| b));
        assert!(ppa.not(&f).unwrap().iter().all(|&b| b));
    }

    #[test]
    fn bit_planes_decompose_values() {
        let mut ppa = Ppa::square(2).with_word_bits(4);
        let v = Parallel::from_fn(ppa.dim(), |c| (c.row * 2 + c.col) as i64 + 5); // 5,6,7,8
        for i in 0..4 {
            let plane = ppa.bit(&v, i).unwrap();
            for (c, &bit) in plane.enumerate() {
                let x = (c.row * 2 + c.col) as i64 + 5;
                assert_eq!(bit, (x >> i) & 1 == 1);
            }
        }
    }

    #[test]
    fn select_merges() {
        let (mut ppa, a, b) = fixture();
        let m = Parallel::from_fn(ppa.dim(), |c| c.row == 0);
        let s = ppa.select(&m, &a, &b).unwrap();
        assert_eq!(*s.at(0, 1), *a.at(0, 1));
        assert_eq!(*s.at(1, 1), *b.at(1, 1));
    }

    #[test]
    fn representability_guardrail() {
        let ppa = Ppa::square(2).with_word_bits(4);
        let ok = Parallel::filled(ppa.dim(), 15i64);
        assert!(ppa.check_representable(&ok).is_ok());
        let bad = Parallel::filled(ppa.dim(), 16i64);
        assert!(matches!(
            ppa.check_representable(&bad),
            Err(PpcError::ValueOutOfRange(16))
        ));
        let neg = Parallel::filled(ppa.dim(), -1i64);
        assert!(ppa.check_representable(&neg).is_err());
    }

    #[test]
    fn each_op_costs_one_step() {
        let (mut ppa, a, b) = fixture();
        let before = ppa.steps().total();
        let _ = ppa.add(&a, &b).unwrap();
        let _ = ppa.lt(&a, &b).unwrap();
        let _ = ppa.bit(&a, 0).unwrap();
        assert_eq!(ppa.steps().total(), before + 3);
    }

    #[test]
    fn to_int_converts() {
        let mut ppa = Ppa::square(2);
        let m = Parallel::from_fn(ppa.dim(), |c| c.col == 1);
        let v = ppa.to_int(&m).unwrap();
        assert_eq!(v.row(0), &[0, 1]);
    }
}
