//! Additional collective operations on rows and columns.
//!
//! The paper's algorithm needs only `broadcast`, the wired OR and the
//! bit-serial extrema — but a usable PPA library wants the rest of the
//! collective toolbox. Everything here is built from the costed machine
//! primitives, and the *honest* cost of each routine is part of its
//! contract:
//!
//! * [`Ppa::leader`] — first selected node per cluster: `O(h)` (a
//!   `selected_min` over the hardwired index register);
//! * [`Ppa::prefix_min`] / [`Ppa::prefix_sum`] — running minimum/sum
//!   along the movement direction: `O(n)` steps. The row/column-only PPA
//!   has no shortcut here — unlike the fully reconfigurable meshes of
//!   the paper's reference \[1\], its buses cannot split per bit plane to
//!   do logarithmic prefix; this is exactly the "less powerful but
//!   hardware-implementable" trade-off Section 4 concedes;
//! * [`Ppa::sum_line`] — line-wide sum (`O(n)`: prefix + one broadcast);
//! * [`Ppa::count_line`] — per-line population count of a flag plane
//!   (`O(n)`).

use crate::ppa::{Parallel, Ppa};
use crate::Result;
use ppa_machine::{Axis, Direction, Executor};

impl<E: Executor> Ppa<E> {
    /// Per-cluster leader election: every node receives the index (along
    /// the movement axis) of the *first* selected node of its cluster in
    /// ascending index order.
    ///
    /// Cost: `O(h)` — one `selected_min` over the `ROW`/`COL` register.
    ///
    /// # Errors
    /// [`crate::PpcError::EmptySelection`] if a cluster selects no node.
    pub fn leader(
        &mut self,
        sel: &Parallel<bool>,
        dir: Direction,
        l: &Parallel<bool>,
    ) -> Result<Parallel<i64>> {
        let idx = match dir.axis() {
            Axis::Row => self.col_index(),
            Axis::Col => self.row_index(),
        };
        self.selected_min(&idx, dir, l, sel)
    }

    /// Running minimum along `dir`: each PE receives the minimum of `src`
    /// over itself and every PE upstream of it on its line (no wrap;
    /// upstream fill is `MAXINT`).
    ///
    /// Cost: `2(n - 1)` steps (`n - 1` shifts, `n - 1` ALU) — `O(n)`.
    pub fn prefix_min(&mut self, src: &Parallel<i64>, dir: Direction) -> Result<Parallel<i64>> {
        let fill = self.maxint();
        let len = self.dim().line_len(dir.axis());
        let mut acc = src.clone();
        let mut carrier = src.clone();
        for _ in 1..len {
            carrier = self.shift(&carrier, dir, fill)?;
            acc = self.min2(&acc, &carrier)?;
        }
        Ok(acc)
    }

    /// Running maximum along `dir` (no wrap). Unlike [`Ppa::prefix_min`],
    /// the upstream identity is caller-supplied: the natural identity for
    /// `max` over raw values is `0`, but callers scanning *marker* planes
    /// (e.g. "`col` where a feature sits, else sentinel") need their
    /// sentinel injected at the boundary instead. `O(n)`.
    pub fn prefix_max(
        &mut self,
        src: &Parallel<i64>,
        dir: Direction,
        fill: i64,
    ) -> Result<Parallel<i64>> {
        let len = self.dim().line_len(dir.axis());
        let mut acc = src.clone();
        let mut carrier = src.clone();
        for _ in 1..len {
            carrier = self.shift(&carrier, dir, fill)?;
            acc = self.max2(&acc, &carrier)?;
        }
        Ok(acc)
    }

    /// Running (inclusive) sum along `dir` (no wrap; upstream fill is 0).
    /// Sums saturate at `MAXINT` like all parallel integer addition.
    ///
    /// Cost: `2(n - 1)` steps — `O(n)`.
    pub fn prefix_sum(&mut self, src: &Parallel<i64>, dir: Direction) -> Result<Parallel<i64>> {
        let len = self.dim().line_len(dir.axis());
        let mut acc = src.clone();
        let mut carrier = src.clone();
        for _ in 1..len {
            carrier = self.shift(&carrier, dir, 0)?;
            acc = self.sat_add(&acc, &carrier)?;
        }
        Ok(acc)
    }

    /// Line-wide sum: every PE receives the (saturating) sum of `src`
    /// over its whole row (East/West) or column (North/South).
    ///
    /// Cost: `O(n)` (a prefix sum, then one bus broadcast from the last
    /// node in movement order).
    pub fn sum_line(&mut self, src: &Parallel<i64>, dir: Direction) -> Result<Parallel<i64>> {
        let prefix = self.prefix_sum(src, dir)?;
        // The last node in movement order holds the full sum.
        let len = self.dim().line_len(dir.axis()) as i64;
        let idx = match dir.axis() {
            Axis::Row => self.col_index(),
            Axis::Col => self.row_index(),
        };
        let target = if dir.is_increasing() { len - 1 } else { 0 };
        let t = self.constant(target);
        let last = self.eq(&idx, &t)?;
        self.broadcast(&prefix, dir, &last)
    }

    /// Per-line population count: every PE receives how many `true`
    /// elements its line holds. `O(n)`.
    pub fn count_line(&mut self, flags: &Parallel<bool>, dir: Direction) -> Result<Parallel<i64>> {
        let ints = self.to_int(flags)?;
        self.sum_line(&ints, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_finds_first_selected_per_cluster() {
        let mut ppa = Ppa::square(4).with_word_bits(8);
        // Whole-row clusters (heads at col 3, movement West).
        let col = ppa.col_index();
        let nm1 = ppa.constant(3i64);
        let l = ppa.eq(&col, &nm1).unwrap();
        let sel = Parallel::from_fn(ppa.dim(), |c| c.col >= c.row.min(2));
        let lead = ppa.leader(&sel, Direction::West, &l).unwrap();
        // Row r's first selected column is min(r, 2).
        for r in 0..4 {
            let expect = r.min(2) as i64;
            assert!(lead.row(r).iter().all(|&v| v == expect), "row {r}");
        }
    }

    #[test]
    fn prefix_min_matches_scan() {
        let mut ppa = Ppa::square(5).with_word_bits(8);
        let v = Parallel::from_fn(ppa.dim(), |c| ((c.row * 7 + 11 * c.col) % 40) as i64);
        let p = ppa.prefix_min(&v, Direction::East).unwrap();
        for r in 0..5 {
            let mut running = i64::MAX;
            for c in 0..5 {
                running = running.min(*v.at(r, c));
                assert_eq!(*p.at(r, c), running, "({r},{c})");
            }
        }
    }

    #[test]
    fn prefix_min_against_direction_scans_backwards() {
        let mut ppa = Ppa::square(4).with_word_bits(8);
        let v = Parallel::from_fn(ppa.dim(), |c| c.col as i64);
        let p = ppa.prefix_min(&v, Direction::West).unwrap();
        // Moving West: node c sees columns >= c.
        for c in 0..4 {
            assert_eq!(*p.at(0, c), c as i64);
        }
    }

    #[test]
    fn prefix_max_with_sentinel_fill() {
        let mut ppa = Ppa::square(4).with_word_bits(8);
        // Marker plane: col where row == col, else -1.
        let v = Parallel::from_fn(
            ppa.dim(),
            |c| if c.row == c.col { c.col as i64 } else { -1 },
        );
        let p = ppa.prefix_max(&v, Direction::East, -1).unwrap();
        // Row r: positions before col r stay -1, from col r on it's r.
        for r in 0..4 {
            for c in 0..4 {
                let expect = if c >= r { r as i64 } else { -1 };
                assert_eq!(*p.at(r, c), expect, "({r},{c})");
            }
        }
    }

    #[test]
    fn prefix_sum_matches_scan() {
        let mut ppa = Ppa::square(4).with_word_bits(10);
        let v = Parallel::from_fn(ppa.dim(), |c| (c.col + 1) as i64);
        let p = ppa.prefix_sum(&v, Direction::East).unwrap();
        assert_eq!(p.row(2), &[1, 3, 6, 10]);
        // Column version.
        let v = Parallel::from_fn(ppa.dim(), |c| (c.row + 1) as i64);
        let p = ppa.prefix_sum(&v, Direction::South).unwrap();
        assert_eq!(p.col(1), vec![1, 3, 6, 10]);
    }

    #[test]
    fn prefix_sum_saturates() {
        let mut ppa = Ppa::square(3).with_word_bits(4); // MAXINT = 15
        let v = Parallel::filled(ppa.dim(), 9i64);
        let p = ppa.prefix_sum(&v, Direction::East).unwrap();
        assert_eq!(p.row(0), &[9, 15, 15]);
    }

    #[test]
    fn sum_line_broadcasts_the_total() {
        let mut ppa = Ppa::square(4).with_word_bits(10);
        let v = Parallel::from_fn(ppa.dim(), |c| (c.row + c.col) as i64);
        let s = ppa.sum_line(&v, Direction::East).unwrap();
        for r in 0..4 {
            let expect: i64 = (0..4).map(|c| (r + c) as i64).sum();
            assert!(s.row(r).iter().all(|&x| x == expect), "row {r}");
        }
        // Decreasing direction too.
        let s = ppa.sum_line(&v, Direction::North).unwrap();
        for c in 0..4 {
            let expect: i64 = (0..4).map(|r| (r + c) as i64).sum();
            assert!(s.col(c).into_iter().all(|x| x == expect), "col {c}");
        }
    }

    #[test]
    fn count_line_counts_flags() {
        let mut ppa = Ppa::square(4).with_word_bits(8);
        let flags = Parallel::from_fn(ppa.dim(), |c| c.col <= c.row);
        let counts = ppa.count_line(&flags, Direction::East).unwrap();
        for r in 0..4 {
            assert!(counts.row(r).iter().all(|&v| v == r as i64 + 1), "row {r}");
        }
    }

    #[test]
    fn prefix_cost_is_linear_in_line_length() {
        let mut small = Ppa::square(4).with_word_bits(8);
        let v4 = Parallel::filled(small.dim(), 1i64);
        small.reset_steps();
        let _ = small.prefix_sum(&v4, Direction::East).unwrap();
        let s4 = small.steps().total();

        let mut big = Ppa::square(8).with_word_bits(8);
        let v8 = Parallel::filled(big.dim(), 1i64);
        big.reset_steps();
        let _ = big.prefix_sum(&v8, Direction::East).unwrap();
        let s8 = big.steps().total();
        assert_eq!(s4, 6); // 2 * (4 - 1)
        assert_eq!(s8, 14); // 2 * (8 - 1)
    }
}
