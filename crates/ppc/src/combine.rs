//! Bus combination routines: the paper's bit-serial `min`/`selected_min`.
//!
//! Section 3 of the paper gives the `min()` routine verbatim: the values of
//! a parallel `h`-bit integer are compared *simultaneously, bit by bit,
//! starting from the most significant position*; at each bit position, if
//! at least one still-enabled candidate has a `0` there (detected with a
//! cluster-wide wired-OR), every candidate showing a `1` is knocked out.
//! After the scan the surviving candidates hold the cluster minimum; the
//! value is forwarded to the cluster head (a broadcast *against* the
//! orientation with the survivors driving) and finally broadcast to the
//! whole cluster. Each of the `h` loop iterations issues a constant number
//! of controller steps, so the routine is `O(h)` — the term that makes the
//! whole MCP algorithm `O(p * h)`.
//!
//! `selected_min()` is identical except that the initial candidate set is
//! given by a fourth parallel-logical argument instead of being all nodes
//! (the paper presents only `min()` and notes the other "is similar").
//! [`Ppa::max`]/[`Ppa::selected_max`] are the order duals. A word-parallel
//! [`Ppa::min_word`] — a hypothetical single-step combining bus — is
//! provided purely as the ablation A2 comparator.

use crate::error::PpcError;
use crate::ppa::{Parallel, Ppa};
use crate::Result;
use ppa_machine::{bus, Direction, Executor, Op, Plane};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Extreme {
    Min,
    Max,
}

impl<E: Executor> Ppa<E> {
    /// The paper's `min(src, orientation, L)`: every PE receives the
    /// minimum of `src` over the bus cluster it belongs to (clusters
    /// defined by the Open mask `l` for movement direction `dir`).
    ///
    /// Costs `O(h)` controller steps (`4h + 4` exactly, measured by the
    /// step-count tests). Values must fit the `h`-bit unsigned word.
    pub fn min(
        &mut self,
        src: &Parallel<i64>,
        dir: Direction,
        l: &Parallel<bool>,
    ) -> Result<Parallel<i64>> {
        self.bitserial_extreme(src, dir, l, None, Extreme::Min)
    }

    /// The paper's `selected_min(src, orientation, L, sel)`: the minimum of
    /// `src` over the *selected* nodes (`sel` true) of each cluster.
    ///
    /// # Errors
    /// [`PpcError::EmptySelection`] if some cluster selects no node (its
    /// sub-bus would float; the paper's uses always select the argmin).
    pub fn selected_min(
        &mut self,
        src: &Parallel<i64>,
        dir: Direction,
        l: &Parallel<bool>,
        sel: &Parallel<bool>,
    ) -> Result<Parallel<i64>> {
        self.bitserial_extreme(src, dir, l, Some(sel), Extreme::Min)
    }

    /// Order dual of [`Ppa::min`]: cluster-wide maximum in `O(h)` steps.
    pub fn max(
        &mut self,
        src: &Parallel<i64>,
        dir: Direction,
        l: &Parallel<bool>,
    ) -> Result<Parallel<i64>> {
        self.bitserial_extreme(src, dir, l, None, Extreme::Max)
    }

    /// Order dual of [`Ppa::selected_min`].
    pub fn selected_max(
        &mut self,
        src: &Parallel<i64>,
        dir: Direction,
        l: &Parallel<bool>,
        sel: &Parallel<bool>,
    ) -> Result<Parallel<i64>> {
        self.bitserial_extreme(src, dir, l, Some(sel), Extreme::Max)
    }

    fn bitserial_extreme(
        &mut self,
        src: &Parallel<i64>,
        dir: Direction,
        l: &Parallel<bool>,
        sel: Option<&Parallel<bool>>,
        which: Extreme,
    ) -> Result<Parallel<i64>> {
        self.check_representable(src)?;
        // Guardrail (uncosted): every cluster must select at least one node,
        // otherwise statements 11-12 would leak a value across clusters.
        if let Some(sel) = sel {
            let machine = self.machine();
            let covered =
                bus::bus_or(machine.mode(), machine.dim(), sel, dir, l).map_err(PpcError::from)?;
            if !covered.all() {
                return Err(PpcError::EmptySelection);
            }
        }

        // Span bookkeeping (free when unobserved): the routine and each
        // bit of the scan become nested spans, so a trace shows e.g.
        // `... > selected_min > bit[7]`.
        let observed = self.observing();
        if observed {
            let name = match (which, sel.is_some()) {
                (Extreme::Min, false) => "min",
                (Extreme::Min, true) => "selected_min",
                (Extreme::Max, false) => "max",
                (Extreme::Max, true) => "selected_max",
            };
            self.enter_span(name);
        }

        // The switch pattern is loop-invariant: pack it once (a register
        // view, uncosted) so every bus instruction of the scan can reuse
        // the backend's cached cluster plan for it.
        let l_mask = self.machine_mut().pack_mask(l)?;
        // `keep_low` selects the Min voting/knockout rules in the backend.
        let keep_low = which == Extreme::Min;

        // Statement 7: `parallel logical enable = 1;` (or the selection).
        let mut enable = match sel {
            None => self.machine_mut().mask_imm(true),
            Some(s) => self.machine_mut().load_mask(s)?,
        };

        // Statements 8-10: the most-significant-first bit scan.
        let h = self.word_bits();
        for j in (0..h).rev() {
            if observed {
                self.enter_span(&format!("bit[{j}]"));
            }
            let bitj = self.machine_mut().mask_bit(src, j)?;
            // A candidate "votes" if it is enabled and could win this bit:
            // for min, a 0 at position j beats any 1; for max, vice versa.
            let votes = self.machine_mut().mask_vote(&enable, &bitj, keep_low);
            let present = self.machine_mut().mask_bus_or(&votes, dir, &l_mask)?;
            // Statements 9-10: knock out every candidate beaten at bit j.
            enable = self
                .machine_mut()
                .mask_knockout(&enable, &present, &bitj, keep_low);
            if observed {
                self.exit_span();
            }
        }

        // Statements 11-12: survivors drive the bus *against* the
        // orientation so the cluster heads (the L nodes) latch the value.
        if observed {
            self.enter_span("resolve");
        }
        let to_head = self
            .machine_mut()
            .broadcast_open(src, dir.opposite(), &enable)?;
        let mut staged = src.clone();
        self.machine_mut().assign_masked(&mut staged, &to_head, l)?;

        // Statement 13: the heads re-broadcast to their whole cluster.
        let out = self.broadcast(&staged, dir, l);
        if observed {
            self.exit_span(); // resolve
            self.exit_span(); // the routine span
        }
        out
    }

    /// Hypothetical *word-parallel* cluster minimum: a single-step
    /// combining bus that compares full `h`-bit words at once. Not
    /// realizable on the PPA's bit-serial buses — provided only as the
    /// ablation A2 comparator quantifying what the `O(h)` bit scan costs.
    /// Counts one `bus-or` step (the combine) plus one broadcast.
    pub fn min_word(
        &mut self,
        src: &Parallel<i64>,
        dir: Direction,
        l: &Parallel<bool>,
    ) -> Result<Parallel<i64>> {
        let machine = self.machine();
        let dim = machine.dim();
        let heads = bus::cluster_heads(dim, dir, l).map_err(|lines| {
            PpcError::from(ppa_machine::MachineError::BusFault {
                axis: dir.axis(),
                lines,
            })
        })?;
        // One combining pass over each sub-bus...
        self.machine_mut().record_step(Op::BusOr);
        let mut best: Vec<i64> = vec![i64::MAX; dim.len()];
        for (i, &hd) in heads.iter().enumerate() {
            best[hd] = best[hd].min(src.as_slice()[i]);
        }
        // ...and one distribution step.
        self.machine_mut().record_step(Op::Broadcast);
        let out = Plane::from_fn(dim, |c| best[heads[dim.index(c)]]);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Whole-row clusters, heads at the last column, movement West —
    /// the configuration of MCP statement 11.
    fn row_heads(ppa: &mut Ppa) -> Parallel<bool> {
        let n = ppa.n().unwrap();
        Parallel::from_fn(ppa.dim(), move |c| c.col == n - 1)
    }

    #[test]
    fn min_matches_reference_per_row() {
        let mut ppa = Ppa::square(5).with_word_bits(10);
        let v = Parallel::from_fn(ppa.dim(), |c| ((c.row * 131 + c.col * 37) % 900) as i64);
        let l = row_heads(&mut ppa);
        let m = ppa.min(&v, Direction::West, &l).unwrap();
        for r in 0..5 {
            let expect = *v.row(r).iter().min().unwrap();
            assert!(m.row(r).iter().all(|&x| x == expect), "row {r}");
        }
    }

    #[test]
    fn min_respects_cluster_boundaries() {
        let mut ppa = Ppa::square(4).with_word_bits(8);
        let v = Parallel::from_fn(ppa.dim(), |c| (c.col + 1) as i64 * 10 + c.row as i64);
        // Two clusters per row: heads at cols 0 and 2, movement East.
        let l = Parallel::from_fn(ppa.dim(), |c| c.col == 0 || c.col == 2);
        let m = ppa.min(&v, Direction::East, &l).unwrap();
        for r in 0..4 {
            let left = (10 + r as i64).min(20 + r as i64);
            let right = (30 + r as i64).min(40 + r as i64);
            assert_eq!(m.row(r), &[left, left, right, right]);
        }
    }

    #[test]
    fn min_cost_is_linear_in_h() {
        for h in [4u32, 8, 16] {
            let mut ppa = Ppa::square(4).with_word_bits(h);
            let v = Parallel::filled(ppa.dim(), 3i64);
            let l = row_heads(&mut ppa);
            ppa.reset_steps();
            let _ = ppa.min(&v, Direction::West, &l).unwrap();
            let total = ppa.steps().total();
            assert_eq!(total, 4 * h as u64 + 4, "h={h}");
        }
    }

    #[test]
    fn min_cost_is_independent_of_n() {
        let mut baseline = None;
        for n in [4usize, 8, 16] {
            let mut ppa = Ppa::square(n).with_word_bits(8);
            let v = Parallel::from_fn(ppa.dim(), |c| (c.col % 5) as i64);
            let l = row_heads(&mut ppa);
            ppa.reset_steps();
            let _ = ppa.min(&v, Direction::West, &l).unwrap();
            let total = ppa.steps().total();
            match baseline {
                None => baseline = Some(total),
                Some(b) => assert_eq!(total, b, "n={n}"),
            }
        }
    }

    #[test]
    fn selected_min_ignores_unselected() {
        let mut ppa = Ppa::square(4).with_word_bits(8);
        let v = Parallel::from_fn(ppa.dim(), |c| c.col as i64); // 0,1,2,3 per row
        let l = row_heads(&mut ppa);
        // Exclude the global minimum (col 0) from the selection.
        let sel = Parallel::from_fn(ppa.dim(), |c| c.col >= 2);
        let m = ppa.selected_min(&v, Direction::West, &l, &sel).unwrap();
        assert!(m.iter().all(|&x| x == 2));
    }

    #[test]
    fn selected_min_empty_selection_rejected() {
        let mut ppa = Ppa::square(3).with_word_bits(8);
        let v = Parallel::filled(ppa.dim(), 1i64);
        let l = row_heads(&mut ppa);
        let sel = Parallel::from_fn(ppa.dim(), |c| c.row != 1); // row 1 empty
        assert_eq!(
            ppa.selected_min(&v, Direction::West, &l, &sel),
            Err(PpcError::EmptySelection)
        );
    }

    #[test]
    fn max_is_order_dual() {
        let mut ppa = Ppa::square(5).with_word_bits(10);
        let v = Parallel::from_fn(ppa.dim(), |c| ((c.row * 53 + c.col * 17) % 700) as i64);
        let l = row_heads(&mut ppa);
        let m = ppa.max(&v, Direction::West, &l).unwrap();
        for r in 0..5 {
            let expect = *v.row(r).iter().max().unwrap();
            assert!(m.row(r).iter().all(|&x| x == expect), "row {r}");
        }
    }

    #[test]
    fn selected_max_matches_reference() {
        let mut ppa = Ppa::square(4).with_word_bits(8);
        let v = Parallel::from_fn(ppa.dim(), |c| c.col as i64 * 3);
        let l = row_heads(&mut ppa);
        let sel = Parallel::from_fn(ppa.dim(), |c| c.col <= 1);
        let m = ppa.selected_max(&v, Direction::West, &l, &sel).unwrap();
        assert!(m.iter().all(|&x| x == 3));
    }

    #[test]
    fn column_direction_min_works() {
        let mut ppa = Ppa::square(4).with_word_bits(8);
        let v = Parallel::from_fn(ppa.dim(), |c| ((c.row * 7 + c.col * 11) % 100) as i64);
        // Column clusters headed at row 0, data moving South.
        let l = Parallel::from_fn(ppa.dim(), |c| c.row == 0);
        let m = ppa.min(&v, Direction::South, &l).unwrap();
        for col in 0..4 {
            let expect = v.col(col).into_iter().min().unwrap();
            assert!(m.col(col).into_iter().all(|x| x == expect), "col {col}");
        }
    }

    #[test]
    fn out_of_range_values_rejected() {
        let mut ppa = Ppa::square(2).with_word_bits(4);
        let v = Parallel::filled(ppa.dim(), 16i64);
        let l = row_heads(&mut ppa);
        assert!(matches!(
            ppa.min(&v, Direction::West, &l),
            Err(PpcError::ValueOutOfRange(16))
        ));
    }

    #[test]
    fn maxint_values_participate() {
        let mut ppa = Ppa::square(3).with_word_bits(8);
        let inf = ppa.maxint();
        let v = Parallel::from_fn(ppa.dim(), |c| if c.col == 1 { 7 } else { inf });
        let l = row_heads(&mut ppa);
        let m = ppa.min(&v, Direction::West, &l).unwrap();
        assert!(m.iter().all(|&x| x == 7));
        // All-infinite rows stay infinite.
        let v = Parallel::filled(ppa.dim(), inf);
        let m = ppa.min(&v, Direction::West, &l).unwrap();
        assert!(m.iter().all(|&x| x == inf));
    }

    #[test]
    fn min_word_ablation_matches_min_value() {
        let mut ppa = Ppa::square(6).with_word_bits(12);
        let v = Parallel::from_fn(ppa.dim(), |c| ((c.row * 997 + c.col * 61) % 4000) as i64);
        let l = row_heads(&mut ppa);
        let bitser = ppa.min(&v, Direction::West, &l).unwrap();
        ppa.reset_steps();
        let word = ppa.min_word(&v, Direction::West, &l).unwrap();
        assert_eq!(bitser, word);
        // The ablation costs O(1) steps, independent of h.
        assert_eq!(ppa.steps().total(), 2);
    }

    #[test]
    fn ties_are_resolved_consistently() {
        let mut ppa = Ppa::square(3).with_word_bits(8);
        let v = Parallel::filled(ppa.dim(), 5i64);
        let l = row_heads(&mut ppa);
        let m = ppa.min(&v, Direction::West, &l).unwrap();
        assert!(m.iter().all(|&x| x == 5));
    }
}
