//! Differential suite at the PPC level: the bit-serial `min` /
//! `selected_min` / `max` / `selected_max` collectives must produce the
//! same results, the same errors, and the same step reports on
//! [`PackedBackend`] as on the scalar backend, over arbitrary switch
//! patterns, selections, and word widths.

use ppa_machine::{Dim, Direction, PackedBackend};
use ppa_ppc::{Parallel, Ppa};
use proptest::prelude::*;

fn direction() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::North),
        Just(Direction::East),
        Just(Direction::South),
        Just(Direction::West),
    ]
}

/// Ensures every line has at least one Open node so the collectives never
/// trip the all-lines-driven guardrail (that error path is exercised
/// separately below).
fn force_driver(dim: Dim, dir: Direction, open: &mut Parallel<bool>) {
    let axis = dir.axis();
    for line in 0..dim.lines(axis) {
        let mut any = false;
        for pos in 0..dim.line_len(axis) {
            let idx = dim.line_index(dir, line, pos);
            if open.as_slice()[idx] {
                any = true;
                break;
            }
        }
        if !any {
            let idx = dim.line_index(dir, line, 0);
            open.as_mut_slice()[idx] = true;
        }
    }
}

fn pair(n: usize, h: u32) -> (Ppa, Ppa<PackedBackend>) {
    (
        Ppa::square(n).with_word_bits(h),
        Ppa::<PackedBackend>::packed(n).with_word_bits(h),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn min_and_max_match_scalar(
        args in (3usize..=7).prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(0i64..=255, n * n),
                proptest::collection::vec(any::<bool>(), n * n),
            )
        }),
        dir in direction(),
        h in 4u32..=12,
    ) {
        let (n, vals, mask) = args;
        let dim = Dim::square(n);
        let (mut s, mut p) = pair(n, h);
        // Clamp the values into the h-bit range the scan assumes.
        let cap = (1i64 << h) - 1;
        let vals: Vec<i64> = vals.into_iter().map(|v| v.min(cap)).collect();
        let src = Parallel::from_vec(dim, vals);
        let mut open = Parallel::from_vec(dim, mask);
        force_driver(dim, dir, &mut open);

        let min_s = s.min(&src, dir, &open).unwrap();
        let min_p = p.min(&src, dir, &open).unwrap();
        prop_assert_eq!(&min_s, &min_p);

        let max_s = s.max(&src, dir, &open).unwrap();
        let max_p = p.max(&src, dir, &open).unwrap();
        prop_assert_eq!(&max_s, &max_p);

        // 2 x (4h + 4) steps on both machines, class by class.
        prop_assert_eq!(s.steps(), p.steps());
    }

    #[test]
    fn selected_extremes_match_scalar_including_errors(
        args in (3usize..=6).prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(0i64..=63, n * n),
                proptest::collection::vec(any::<bool>(), n * n),
                proptest::collection::vec(any::<bool>(), n * n),
            )
        }),
        dir in direction(),
        keep_low in any::<bool>(),
    ) {
        let (n, vals, mask, sel_bits) = args;
        let dim = Dim::square(n);
        let (mut s, mut p) = pair(n, 6);
        let src = Parallel::from_vec(dim, vals);
        let mut open = Parallel::from_vec(dim, mask);
        force_driver(dim, dir, &mut open);
        // The selection is NOT repaired: clusters whose selection is empty
        // must raise EmptySelection identically on both backends.
        let sel = Parallel::from_vec(dim, sel_bits);

        let (got_s, got_p) = if keep_low {
            (s.selected_min(&src, dir, &open, &sel), p.selected_min(&src, dir, &open, &sel))
        } else {
            (s.selected_max(&src, dir, &open, &sel), p.selected_max(&src, dir, &open, &sel))
        };
        match (got_s, got_p) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "divergent outcomes: {:?} vs {:?}", a, b),
        }
        prop_assert_eq!(s.steps(), p.steps());
    }

    #[test]
    fn min_word_matches_scalar(
        args in (3usize..=6).prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(0i64..=100, n * n),
                proptest::collection::vec(any::<bool>(), n * n),
            )
        }),
        dir in direction(),
    ) {
        let (n, vals, mask) = args;
        let dim = Dim::square(n);
        let (mut s, mut p) = pair(n, 8);
        let src = Parallel::from_vec(dim, vals);
        let mut open = Parallel::from_vec(dim, mask);
        force_driver(dim, dir, &mut open);

        let a = s.min_word(&src, dir, &open).unwrap();
        let b = p.min_word(&src, dir, &open).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(s.steps(), p.steps());
    }
}
