//! Property tests of the PPC runtime: combination-primitive laws,
//! saturating arithmetic, activity-mask algebra and the collective ops.

use ppa_machine::Direction;
use ppa_ppc::{Parallel, Ppa};
use proptest::prelude::*;

fn direction() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::North),
        Just(Direction::East),
        Just(Direction::South),
        Just(Direction::West),
    ]
}

/// Values plus a legal cluster-head mask (one head forced per line).
fn values_and_heads(n: usize, h: u32) -> impl Strategy<Value = (Vec<i64>, Vec<bool>, Direction)> {
    let max = (1i64 << h) - 1;
    (
        proptest::collection::vec(0..=max, n * n),
        proptest::collection::vec(any::<bool>(), n * n),
        direction(),
    )
}

fn force_heads(n: usize, dir: Direction, mask: &mut [bool]) {
    let dim = ppa_machine::Dim::square(n);
    for line in 0..dim.lines(dir.axis()) {
        let mut any = false;
        for pos in 0..dim.line_len(dir.axis()) {
            if mask[dim.line_index(dir, line, pos)] {
                any = true;
            }
        }
        if !any {
            mask[dim.line_index(dir, line, 0)] = true;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn min_of_min_is_idempotent((vals, mut mask, dir) in values_and_heads(5, 8)) {
        let n = 5;
        force_heads(n, dir, &mut mask);
        let mut ppa = Ppa::square(n).with_word_bits(8);
        let src = Parallel::from_vec(ppa.dim(), vals);
        let l = Parallel::from_vec(ppa.dim(), mask);
        let once = ppa.min(&src, dir, &l).unwrap();
        let twice = ppa.min(&once, dir, &l).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn min_le_all_and_attained((vals, mut mask, dir) in values_and_heads(5, 8)) {
        let n = 5;
        force_heads(n, dir, &mut mask);
        let mut ppa = Ppa::square(n).with_word_bits(8);
        let src = Parallel::from_vec(ppa.dim(), vals);
        let l = Parallel::from_vec(ppa.dim(), mask);
        let m = ppa.min(&src, dir, &l).unwrap();
        let heads = ppa_machine::bus::cluster_heads(ppa.dim(), dir, &l).unwrap();
        // m[i] <= src[i] everywhere and m is attained within the cluster.
        for i in 0..ppa.dim().len() {
            prop_assert!(m.as_slice()[i] <= src.as_slice()[i]);
        }
        for i in 0..ppa.dim().len() {
            let attained = (0..ppa.dim().len())
                .any(|j| heads[j] == heads[i] && src.as_slice()[j] == m.as_slice()[i]);
            prop_assert!(attained, "min not attained at {}", i);
        }
    }

    #[test]
    fn selected_min_bounded_by_unselected((vals, mut mask, dir) in values_and_heads(4, 6)) {
        let n = 4;
        force_heads(n, dir, &mut mask);
        let mut ppa = Ppa::square(n).with_word_bits(6);
        let src = Parallel::from_vec(ppa.dim(), vals);
        let l = Parallel::from_vec(ppa.dim(), mask);
        let all = ppa.constant(true);
        let sel_min = ppa.selected_min(&src, dir, &l, &all).unwrap();
        let plain = ppa.min(&src, dir, &l).unwrap();
        prop_assert_eq!(sel_min, plain, "all-selected selected_min == min");
    }

    #[test]
    fn max_min_sandwich((vals, mut mask, dir) in values_and_heads(5, 8)) {
        let n = 5;
        force_heads(n, dir, &mut mask);
        let mut ppa = Ppa::square(n).with_word_bits(8);
        let src = Parallel::from_vec(ppa.dim(), vals);
        let l = Parallel::from_vec(ppa.dim(), mask);
        let lo = ppa.min(&src, dir, &l).unwrap();
        let hi = ppa.max(&src, dir, &l).unwrap();
        for i in 0..ppa.dim().len() {
            prop_assert!(lo.as_slice()[i] <= src.as_slice()[i]);
            prop_assert!(src.as_slice()[i] <= hi.as_slice()[i]);
        }
    }

    #[test]
    fn sat_add_is_commutative_and_absorbing(a in 0i64..=255, b in 0i64..=255) {
        let mut ppa = Ppa::square(2).with_word_bits(8);
        let pa = ppa.constant(a);
        let pb = ppa.constant(b);
        let ab = ppa.sat_add(&pa, &pb).unwrap();
        let ba = ppa.sat_add(&pb, &pa).unwrap();
        prop_assert_eq!(&ab, &ba);
        let inf = ppa.constant(ppa.maxint());
        let with_inf = ppa.sat_add(&pa, &inf).unwrap();
        prop_assert!(with_inf.iter().all(|&v| v == ppa.maxint()));
    }

    #[test]
    fn masked_assignment_touches_exactly_the_mask(
        (vals, mask, _) in values_and_heads(4, 8),
    ) {
        let mut ppa = Ppa::square(4).with_word_bits(8);
        let mut dst = Parallel::filled(ppa.dim(), -1i64);
        let src = Parallel::from_vec(ppa.dim(), vals);
        let cond = Parallel::from_vec(ppa.dim(), mask);
        ppa.where_(&cond, |p| p.assign(&mut dst, &src)).unwrap().unwrap();
        for i in 0..ppa.dim().len() {
            if cond.as_slice()[i] {
                prop_assert_eq!(dst.as_slice()[i], src.as_slice()[i]);
            } else {
                prop_assert_eq!(dst.as_slice()[i], -1);
            }
        }
    }

    #[test]
    fn prefix_min_is_monotone_along_direction((vals, _, dir) in values_and_heads(5, 8)) {
        let n = 5;
        let mut ppa = Ppa::square(n).with_word_bits(8);
        let src = Parallel::from_vec(ppa.dim(), vals);
        let p = ppa.prefix_min(&src, dir).unwrap();
        let dim = ppa.dim();
        for line in 0..dim.lines(dir.axis()) {
            let mut prev: Option<i64> = None;
            for pos in 0..dim.line_len(dir.axis()) {
                let v = p.as_slice()[dim.line_index(dir, line, pos)];
                if let Some(pv) = prev {
                    prop_assert!(v <= pv, "prefix min must be non-increasing");
                }
                prev = Some(v);
            }
        }
    }

    #[test]
    fn sum_line_is_direction_invariant_on_the_axis((vals, _, _) in values_and_heads(4, 12)) {
        let mut ppa = Ppa::square(4).with_word_bits(12);
        let src = Parallel::from_vec(ppa.dim(), vals.iter().map(|v| v % 50).collect());
        let east = ppa.sum_line(&src, Direction::East).unwrap();
        let west = ppa.sum_line(&src, Direction::West).unwrap();
        prop_assert_eq!(east, west, "row sums cannot depend on sweep direction");
    }

    #[test]
    fn bit_planes_reassemble_the_value(v in 0i64..1024) {
        let mut ppa = Ppa::square(2).with_word_bits(10);
        let p = ppa.constant(v);
        let mut rebuilt = 0i64;
        for j in 0..10 {
            let plane = ppa.bit(&p, j).unwrap();
            if *plane.at(0, 0) {
                rebuilt |= 1 << j;
            }
        }
        prop_assert_eq!(rebuilt, v);
    }
}
