//! Persisted benchmark baselines and the regression gate.
//!
//! A [`Baseline`] is the committed perf record of one experiment grid
//! (`BENCH_backend.json`, `BENCH_scale.json`, `BENCH_serve.json`):
//! per-cell deterministic step counts, deterministic backend counters
//! (plan-cache hits, arena reuse), and noise-aware wall-clock statistics
//! (median + MAD over warmed repetitions), stamped with the
//! [`HostFingerprint`] and git-describe string of the run that produced
//! it. The serialization is **byte-stable**: field order is fixed and
//! every number is integral, so `from_json(to_json(b))` reproduces both
//! the value and its JSON bytes exactly — the committed files diff
//! cleanly.
//!
//! [`compare`] is the gate `report bench --check` runs: step-count or
//! counter drift is always a hard failure (those are deterministic by
//! construction — a change means the *algorithm* changed), while
//! wall-clock regressions beyond the MAD-scaled tolerance are hard
//! failures only when the candidate ran on the same host fingerprint;
//! on a different host they downgrade to warnings.

use ppa_obs::Json;
use std::collections::BTreeMap;

/// Version of the `BENCH_*.json` schema; bump on breaking change.
pub const SCHEMA_VERSION: u64 = 1;

/// The committed file name for one experiment baseline.
pub fn bench_file_name(name: &str) -> String {
    format!("BENCH_{name}.json")
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// outside a git checkout.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// What makes wall-clock numbers comparable: core count, rustc version,
/// and build profile. Step counts and counters are host-independent;
/// wall-clock is only hard-gated when every fingerprint field matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFingerprint {
    /// `std::thread::available_parallelism()` of the measuring host.
    pub cores: u64,
    /// `rustc -V` of the toolchain on the measuring host.
    pub rustc: String,
    /// `debug` or `release` (wall-clock differs by an order of
    /// magnitude between the two).
    pub profile: String,
}

impl HostFingerprint {
    /// Fingerprints the current host and build.
    pub fn detect() -> HostFingerprint {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1);
        let rustc = std::process::Command::new("rustc")
            .arg("-V")
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned());
        let profile = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        HostFingerprint {
            cores,
            rustc,
            profile: profile.to_owned(),
        }
    }

    /// Serializes the fingerprint (also used by `report` to stamp every
    /// experiment artifact with provenance).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cores", Json::Num(self.cores as f64)),
            ("rustc", Json::Str(self.rustc.clone())),
            ("profile", Json::Str(self.profile.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<HostFingerprint, String> {
        Ok(HostFingerprint {
            cores: get_u64(v, "cores")?,
            rustc: get_str(v, "rustc")?,
            profile: get_str(v, "profile")?,
        })
    }
}

/// Noise-aware wall-clock statistics over warmed repetitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallStats {
    /// Median wall-clock in nanoseconds.
    pub median_ns: u64,
    /// Median absolute deviation from the median, in nanoseconds.
    pub mad_ns: u64,
    /// Number of repetitions the statistics summarize.
    pub reps: u64,
}

impl WallStats {
    /// Median/MAD of a set of nanosecond samples (at least one).
    ///
    /// # Panics
    /// Panics on an empty sample set — a cell with no measurement is a
    /// harness bug, not a statistic.
    pub fn from_samples(samples_ns: &[u64]) -> WallStats {
        assert!(!samples_ns.is_empty(), "wall stats need at least 1 sample");
        let median = median_u64(samples_ns);
        let deviations: Vec<u64> = samples_ns.iter().map(|&s| s.abs_diff(median)).collect();
        WallStats {
            median_ns: median,
            mad_ns: median_u64(&deviations),
            reps: samples_ns.len() as u64,
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("median_ns", Json::Num(self.median_ns as f64)),
            ("mad_ns", Json::Num(self.mad_ns as f64)),
            ("reps", Json::Num(self.reps as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<WallStats, String> {
        Ok(WallStats {
            median_ns: get_u64(v, "median_ns")?,
            mad_ns: get_u64(v, "mad_ns")?,
            reps: get_u64(v, "reps")?,
        })
    }
}

fn median_u64(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        // Midpoint of the two central samples, kept integral so the
        // serialized form stays byte-stable.
        sorted[mid - 1] / 2 + sorted[mid] / 2 + (sorted[mid - 1] % 2 + sorted[mid] % 2) / 2
    }
}

/// One grid cell of an experiment baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Cell label, e.g. `n=64/packed` or `threads=4`.
    pub cell: String,
    /// Deterministic controller step count of the cell (for the serve
    /// campaign, the deterministic submitted-job count of the scenario).
    pub steps: u64,
    /// Wall-clock statistics over the cell's repetitions.
    pub wall: WallStats,
    /// Deterministic auxiliary counters (plan-cache hits/misses, arena
    /// reuse, ...). Timing-dependent counters must not be recorded here:
    /// everything in this map is hard-gated like `steps`.
    pub counters: BTreeMap<String, u64>,
}

impl BaselineEntry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cell", Json::Str(self.cell.clone())),
            ("steps", Json::Num(self.steps as f64)),
            ("wall", self.wall.to_json()),
            (
                "counters",
                Json::Object(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<BaselineEntry, String> {
        let counters = match v.get("counters") {
            Some(Json::Object(pairs)) => pairs
                .iter()
                .map(|(k, cv)| {
                    cv.as_f64()
                        .map(|f| (k.clone(), f as u64))
                        .ok_or_else(|| format!("counter {k:?} is not a number"))
                })
                .collect::<Result<BTreeMap<_, _>, _>>()?,
            _ => return Err("entry is missing its counters object".to_owned()),
        };
        Ok(BaselineEntry {
            cell: get_str(v, "cell")?,
            steps: get_u64(v, "steps")?,
            wall: WallStats::from_json(
                v.get("wall")
                    .ok_or_else(|| "entry missing wall".to_owned())?,
            )?,
            counters,
        })
    }
}

/// A committed (or freshly measured) benchmark baseline for one
/// experiment grid. See the module docs for the gating semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Schema version ([`SCHEMA_VERSION`] when written by this build).
    pub schema_version: u64,
    /// Experiment name (`backend`, `scale`, `serve`).
    pub name: String,
    /// Fingerprint of the host + build that measured the baseline.
    pub fingerprint: HostFingerprint,
    /// `git describe --always --dirty` at measurement time.
    pub git_describe: String,
    /// The grid cells, in measurement order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// A baseline freshly measured on this host, stamped with the
    /// current fingerprint and git-describe string.
    pub fn new(name: &str, entries: Vec<BaselineEntry>) -> Baseline {
        Baseline {
            schema_version: SCHEMA_VERSION,
            name: name.to_owned(),
            fingerprint: HostFingerprint::detect(),
            git_describe: git_describe(),
            entries,
        }
    }

    /// Serializes with fixed field order: equal baselines always produce
    /// byte-identical JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("name", Json::Str(self.name.clone())),
            ("fingerprint", self.fingerprint.to_json()),
            ("git_describe", Json::Str(self.git_describe.clone())),
            (
                "entries",
                Json::Array(self.entries.iter().map(BaselineEntry::to_json).collect()),
            ),
        ])
    }

    /// Parses a baseline document written by [`Baseline::to_json`].
    ///
    /// # Errors
    /// A message naming the first malformed field.
    pub fn from_json(v: &Json) -> Result<Baseline, String> {
        let entries = match v.get("entries") {
            Some(Json::Array(items)) => items
                .iter()
                .map(BaselineEntry::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("baseline is missing its entries array".to_owned()),
        };
        Ok(Baseline {
            schema_version: get_u64(v, "schema_version")?,
            name: get_str(v, "name")?,
            fingerprint: HostFingerprint::from_json(
                v.get("fingerprint")
                    .ok_or_else(|| "baseline missing fingerprint".to_owned())?,
            )?,
            git_describe: get_str(v, "git_describe")?,
            entries,
        })
    }
}

/// The verdict of gating one candidate run against a committed baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Hard failures: the gate must exit nonzero.
    pub failures: Vec<String>,
    /// Soft findings: printed, never fatal (wall drift across different
    /// host fingerprints, improvements worth re-baselining).
    pub warnings: Vec<String>,
}

impl CheckReport {
    /// True when no hard failure was recorded.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Absolute wall-tolerance floor: scheduler noise on sub-40ms cells
/// would otherwise trip the relative gate.
const WALL_FLOOR_NS: u64 = 10_000_000;

/// Wall tolerance for one cell: the larger of 25% of the committed
/// median, 4x the summed MADs, and a 10ms absolute floor.
fn wall_tolerance_ns(committed: &WallStats, candidate: &WallStats) -> u64 {
    (committed.median_ns / 4)
        .max(4 * (committed.mad_ns + candidate.mad_ns))
        .max(WALL_FLOOR_NS)
}

/// Gates a candidate run against the committed baseline.
///
/// * schema/name/grid mismatches, step drift, and counter drift are
///   **hard failures** — these are deterministic, so any drift means the
///   measured algorithm changed without the baseline being re-recorded;
/// * wall-clock regression beyond [`wall_tolerance_ns`] is a hard
///   failure on a matching host fingerprint and a warning otherwise;
/// * a wall-clock *improvement* beyond tolerance on a matching host is a
///   warning suggesting a re-baseline.
pub fn compare(committed: &Baseline, candidate: &Baseline) -> CheckReport {
    let mut report = CheckReport::default();
    let fail = |r: &mut CheckReport, msg: String| r.failures.push(msg);

    if committed.schema_version != candidate.schema_version {
        fail(
            &mut report,
            format!(
                "{}: schema version {} in committed baseline, this build writes {}",
                committed.name, committed.schema_version, candidate.schema_version
            ),
        );
        return report;
    }
    if committed.name != candidate.name {
        fail(
            &mut report,
            format!(
                "baseline name mismatch: committed {:?}, candidate {:?}",
                committed.name, candidate.name
            ),
        );
        return report;
    }
    let host_matches = committed.fingerprint == candidate.fingerprint;
    if !host_matches {
        report.warnings.push(format!(
            "{}: host fingerprint differs (committed {:?}, candidate {:?}) — wall-clock \
             drift downgraded to warnings",
            committed.name, committed.fingerprint, candidate.fingerprint
        ));
    }

    for cand in &candidate.entries {
        if !committed.entries.iter().any(|e| e.cell == cand.cell) {
            fail(
                &mut report,
                format!(
                    "{}/{}: cell measured by the candidate but absent from the committed \
                     baseline (re-record it)",
                    candidate.name, cand.cell
                ),
            );
        }
    }
    for base in &committed.entries {
        let Some(cand) = candidate.entries.iter().find(|e| e.cell == base.cell) else {
            fail(
                &mut report,
                format!(
                    "{}/{}: cell in the committed baseline was not measured by the candidate",
                    committed.name, base.cell
                ),
            );
            continue;
        };
        if cand.steps != base.steps {
            fail(
                &mut report,
                format!(
                    "{}/{}: step count drifted from {} to {} (steps are deterministic — \
                     the algorithm changed; re-record the baseline if intentional)",
                    committed.name, base.cell, base.steps, cand.steps
                ),
            );
        }
        if cand.counters != base.counters {
            let keys: Vec<&String> = base
                .counters
                .keys()
                .chain(cand.counters.keys())
                .filter(|k| base.counters.get(*k) != cand.counters.get(*k))
                .collect();
            fail(
                &mut report,
                format!(
                    "{}/{}: deterministic counters drifted ({keys:?})",
                    committed.name, base.cell
                ),
            );
        }
        let tol = wall_tolerance_ns(&base.wall, &cand.wall);
        if cand.wall.median_ns > base.wall.median_ns.saturating_add(tol) {
            let msg = format!(
                "{}/{}: wall-clock regressed {:.2}ms -> {:.2}ms (tolerance {:.2}ms)",
                committed.name,
                base.cell,
                base.wall.median_ns as f64 / 1e6,
                cand.wall.median_ns as f64 / 1e6,
                tol as f64 / 1e6
            );
            if host_matches {
                fail(&mut report, msg);
            } else {
                report.warnings.push(msg);
            }
        } else if host_matches && cand.wall.median_ns.saturating_add(tol) < base.wall.median_ns {
            report.warnings.push(format!(
                "{}/{}: wall-clock improved {:.2}ms -> {:.2}ms; consider re-recording the \
                 baseline to tighten the gate",
                committed.name,
                base.cell,
                base.wall.median_ns as f64 / 1e6,
                cand.wall.median_ns as f64 / 1e6
            ));
        }
    }
    report
}

fn get_u64(v: &Json, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(Json::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing numeric field {name:?}"))
}

fn get_str(v: &Json, name: &str) -> Result<String, String> {
    match v.get(name) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(format!("missing string field {name:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sample_baseline() -> Baseline {
        Baseline {
            schema_version: SCHEMA_VERSION,
            name: "backend".to_owned(),
            fingerprint: HostFingerprint {
                cores: 8,
                rustc: "rustc 1.75.0".to_owned(),
                profile: "release".to_owned(),
            },
            git_describe: "abc1234-dirty".to_owned(),
            entries: vec![
                BaselineEntry {
                    cell: "n=16/scalar".to_owned(),
                    steps: 51_234,
                    wall: WallStats {
                        median_ns: 3_000_000,
                        mad_ns: 120_000,
                        reps: 5,
                    },
                    counters: BTreeMap::new(),
                },
                BaselineEntry {
                    cell: "n=16/packed".to_owned(),
                    steps: 51_234,
                    wall: WallStats {
                        median_ns: 800_000,
                        mad_ns: 40_000,
                        reps: 5,
                    },
                    counters: [
                        ("plan_hits".to_owned(), 900u64),
                        ("plan_misses".to_owned(), 12),
                    ]
                    .into_iter()
                    .collect(),
                },
            ],
        }
    }

    #[test]
    fn round_trips_exactly_value_and_bytes() {
        let b = sample_baseline();
        let doc = b.to_json();
        let back = Baseline::from_json(&doc).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.to_json().to_string_pretty(), doc.to_string_pretty());
        // And through actual text, as committed files are read.
        let reparsed = Json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(Baseline::from_json(&reparsed).unwrap(), b);
        assert_eq!(reparsed.to_string_pretty(), doc.to_string_pretty());
    }

    #[test]
    fn random_baselines_round_trip_byte_identically() {
        // Property test: 100 seeded random baselines survive
        // to_json -> text -> parse -> from_json with equal value AND
        // equal bytes.
        let mut rng = SmallRng::seed_from_u64(0xBA5E11);
        for case in 0..100 {
            let entries = (0..rng.gen_range(0..6usize))
                .map(|i| {
                    let mut counters = BTreeMap::new();
                    for k in 0..rng.gen_range(0..4usize) {
                        counters.insert(format!("c{k}"), rng.gen_range(0..1u64 << 50));
                    }
                    BaselineEntry {
                        cell: format!("cell-{i}/k={}", rng.gen_range(0..100u32)),
                        steps: rng.gen_range(0..1u64 << 50),
                        wall: WallStats {
                            median_ns: rng.gen_range(0..1u64 << 50),
                            mad_ns: rng.gen_range(0..1u64 << 30),
                            reps: rng.gen_range(1..12u64),
                        },
                        counters,
                    }
                })
                .collect();
            let b = Baseline {
                schema_version: SCHEMA_VERSION,
                name: format!("exp{}", rng.gen_range(0..10u32)),
                fingerprint: HostFingerprint {
                    cores: rng.gen_range(1..256u64),
                    rustc: format!("rustc 1.{}.0", rng.gen_range(60..99u32)),
                    profile: if rng.gen() { "debug" } else { "release" }.to_owned(),
                },
                git_describe: format!("g{:07x}", rng.gen_range(0..0x1000_0000u64)),
                entries,
            };
            let text = b.to_json().to_string_pretty();
            let back = Baseline::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, b, "case {case} value drifted");
            assert_eq!(
                back.to_json().to_string_pretty(),
                text,
                "case {case} bytes drifted"
            );
        }
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let b = sample_baseline();
        let report = compare(&b, &b.clone());
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn perturbed_step_count_is_a_hard_failure() {
        let b = sample_baseline();
        let mut cand = b.clone();
        cand.entries[1].steps += 1;
        let report = compare(&b, &cand);
        assert!(!report.passed());
        assert!(
            report.failures[0].contains("step count drifted"),
            "{:?}",
            report.failures
        );
        // Even on a mismatched host fingerprint: steps stay hard.
        cand.fingerprint.cores += 8;
        let report = compare(&b, &cand);
        assert!(!report.passed(), "step drift must never be soft");
    }

    #[test]
    fn counter_drift_is_a_hard_failure() {
        let b = sample_baseline();
        let mut cand = b.clone();
        cand.entries[1].counters.insert("plan_hits".to_owned(), 901);
        let report = compare(&b, &cand);
        assert!(!report.passed());
        assert!(
            report.failures[0].contains("counters drifted"),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn wall_regression_hard_on_same_host_soft_on_other() {
        let b = sample_baseline();
        let mut cand = b.clone();
        // 3ms -> 30ms blows through max(25%, 4*MAD, 10ms floor).
        cand.entries[0].wall.median_ns = 30_000_000;
        let report = compare(&b, &cand);
        assert!(!report.passed(), "same fingerprint: wall drift is hard");
        assert!(report.failures[0].contains("wall-clock regressed"));

        cand.fingerprint.rustc = "rustc 1.99.0".to_owned();
        let report = compare(&b, &cand);
        assert!(report.passed(), "other fingerprint: wall drift is soft");
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("wall-clock regressed")));
    }

    #[test]
    fn wall_noise_within_tolerance_passes() {
        let b = sample_baseline();
        let mut cand = b.clone();
        // +9ms sits under the 10ms absolute floor.
        cand.entries[0].wall.median_ns += 9_000_000;
        assert!(compare(&b, &cand).passed());
    }

    #[test]
    fn grid_shape_drift_is_a_hard_failure() {
        let b = sample_baseline();
        let mut missing = b.clone();
        missing.entries.pop();
        assert!(!compare(&b, &missing).passed(), "missing cell");
        let mut extra = b.clone();
        extra.entries.push(BaselineEntry {
            cell: "n=128/packed".to_owned(),
            steps: 1,
            wall: WallStats {
                median_ns: 1,
                mad_ns: 0,
                reps: 1,
            },
            counters: BTreeMap::new(),
        });
        assert!(!compare(&b, &extra).passed(), "unrecorded cell");
    }

    #[test]
    fn wall_stats_median_and_mad() {
        let s = WallStats::from_samples(&[5, 1, 9, 3, 7]);
        assert_eq!(s.median_ns, 5);
        assert_eq!(s.mad_ns, 2, "deviations 4,2,0,2,4 -> median 2");
        assert_eq!(s.reps, 5);
        let even = WallStats::from_samples(&[10, 20]);
        assert_eq!(even.median_ns, 15);
        let single = WallStats::from_samples(&[42]);
        assert_eq!((single.median_ns, single.mad_ns, single.reps), (42, 0, 1));
    }

    #[test]
    fn detect_fingerprint_is_populated() {
        let fp = HostFingerprint::detect();
        assert!(fp.cores >= 1);
        assert!(!fp.profile.is_empty());
    }
}
