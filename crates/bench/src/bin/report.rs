//! The experiment report binary.
//!
//! Usage:
//! ```text
//! cargo run -p ppa-bench --bin report --release -- all
//! cargo run -p ppa-bench --bin report --release -- t4 a2
//! cargo run -p ppa-bench --bin report --release -- profile --trace-out target/experiments
//! cargo run -p ppa-bench --bin report --release -- faults --seed 7
//! cargo run -p ppa-bench --bin report --release -- serve --seed 7
//! cargo run -p ppa-bench --bin report --release -- bench
//! cargo run -p ppa-bench --bin report --release -- bench --check
//! cargo run -p ppa-bench --bin report --release -- --list
//! ```
//!
//! Renders the requested experiment tables to stdout and writes
//! `.txt`/`.csv`/`.json` artifacts under `target/experiments/`. Every
//! table JSON artifact is stamped with a `provenance` object (host
//! fingerprint + `git describe`) so a downloaded CI artifact identifies
//! the build that produced it.
//!
//! The `profile` experiment additionally writes `profile.trace.json`
//! (Chrome `trace_event`, Perfetto-loadable), `profile.json` (metrics
//! snapshot), and `profile.folded.txt` (inferno-compatible folded-stack
//! micro-op time attribution) to the `--trace-out` directory (default:
//! the artifact dir). The `faults` and `serve` experiments honour
//! `--seed N` (default 7); `serve` also writes `serve.introspect.json`,
//! the live introspection snapshots taken at the end of each scenario.
//!
//! The `backend`, `scale`, `batch`, `serve`, `net`, and `chaos`
//! experiments each write a `BENCH_<name>.json` measured baseline next
//! to their table artifacts.
//! The `bench` pseudo-experiment runs them all plus `profile`, writes
//! the candidate baselines, and with `--check` gates them against the
//! committed `BENCH_*.json` files in `--baseline-dir` (default: the
//! repository root, `.`): step-count or counter drift exits nonzero
//! always; wall-clock regressions beyond the MAD-scaled tolerance exit
//! nonzero only when the host fingerprint matches the committed one.
//!
//! Experiment names are validated *before* anything runs: a typo exits
//! with status 2 immediately instead of after minutes of computation.

use ppa_bench::baseline::{bench_file_name, compare, git_describe};
use ppa_bench::{
    all_experiments, backend_run, batch_run, chaos_run, faults_campaign, net_run, profile_run,
    scale_run, serve_run, Baseline, HostFingerprint, Table,
};
use ppa_obs::Json;
use std::fs;
use std::path::{Path, PathBuf};

/// `{fingerprint, git_describe}` stamp appended to every table JSON
/// artifact, so an artifact pulled off CI identifies its build.
fn provenance() -> Json {
    Json::obj(vec![
        ("fingerprint", HostFingerprint::detect().to_json()),
        ("git_describe", Json::Str(git_describe())),
    ])
}

fn write_table(dir: &Path, name: &str, table: &Table, provenance: &Json) -> String {
    let rendered = table.render();
    fs::write(dir.join(format!("{name}.txt")), &rendered).expect("write txt");
    fs::write(dir.join(format!("{name}.csv")), table.to_csv()).expect("write csv");
    // `profile.json` is reserved for the metrics snapshot; the table JSON
    // of the profile experiment goes to `profile.table.json`.
    let json_name = if name == "profile" {
        "profile.table.json".to_owned()
    } else {
        format!("{name}.json")
    };
    let mut doc = table.to_json_value();
    if let Json::Object(pairs) = &mut doc {
        pairs.push(("provenance".to_owned(), provenance.clone()));
    }
    fs::write(dir.join(json_name), doc.to_string_pretty()).expect("write json");
    rendered
}

/// Writes a measured baseline as `BENCH_<name>.json` in `dir`.
fn write_baseline(dir: &Path, baseline: &Baseline) -> PathBuf {
    let path = dir.join(bench_file_name(&baseline.name));
    fs::write(&path, baseline.to_json().to_string_pretty()).expect("write baseline");
    path
}

/// Writes the profile run's extra artifacts (trace, metrics snapshot,
/// folded stacks) to `trace_dir`.
fn write_profile_artifacts(trace_dir: &Path, run: &ppa_bench::ProfileRun) {
    fs::write(
        trace_dir.join("profile.trace.json"),
        run.chrome_trace.to_string_pretty(),
    )
    .expect("write chrome trace");
    fs::write(
        trace_dir.join("profile.json"),
        run.metrics.to_json().to_string_pretty(),
    )
    .expect("write metrics");
    fs::write(
        trace_dir.join("profile.folded.txt"),
        run.micro.folded_lines(),
    )
    .expect("write folded stacks");
    eprintln!(
        "profile artifacts: {}, {} and {}",
        trace_dir.join("profile.trace.json").display(),
        trace_dir.join("profile.json").display(),
        trace_dir.join("profile.folded.txt").display(),
    );
}

/// The `bench` pseudo-experiment: measure every baselined grid (and the
/// profile artifacts), write the candidates, and optionally gate them
/// against the committed `BENCH_*.json` files.
fn run_bench(check: bool, baseline_dir: &Path, seed: u64, out_dir: &Path, stamp: &Json) {
    eprintln!("running bench (backend + scale + batch + serve + net + chaos + profile)...");
    let backend = backend_run();
    let scale = scale_run();
    let batch = batch_run();
    let serve = serve_run(seed);
    // Bench mode stays subprocess-free: the kill -9 shard drill is the
    // `net` experiment's job, the baseline cells are identical without it.
    let net = net_run(seed, false);
    let chaos = chaos_run(seed);
    let profile = profile_run();

    for (name, table) in [
        ("backend", &backend.table),
        ("scale", &scale.table),
        ("batch", &batch.table),
        ("serve", &serve.table),
        ("net", &net.table),
        ("chaos", &chaos.table),
        ("profile", &profile.table),
    ] {
        let rendered = write_table(out_dir, name, table, stamp);
        println!("{rendered}");
    }
    write_profile_artifacts(out_dir, &profile);
    fs::write(
        out_dir.join("serve.introspect.json"),
        serve.introspection.to_string_pretty(),
    )
    .expect("write serve introspection");

    let candidates = [
        &backend.baseline,
        &scale.baseline,
        &batch.baseline,
        &serve.baseline,
        &net.baseline,
        &chaos.baseline,
    ];
    for candidate in candidates {
        let path = write_baseline(out_dir, candidate);
        eprintln!("candidate baseline: {}", path.display());
    }
    if !check {
        eprintln!(
            "bench candidates written to {} (copy them to the repo root to re-baseline; \
             run with --check to gate against the committed files)",
            out_dir.display()
        );
        return;
    }

    let mut failures = 0usize;
    for candidate in candidates {
        let file = baseline_dir.join(bench_file_name(&candidate.name));
        let committed = fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))
            .and_then(|text| {
                Json::parse(&text).map_err(|e| format!("{} is not JSON: {e}", file.display()))
            })
            .and_then(|doc| {
                Baseline::from_json(&doc)
                    .map_err(|e| format!("{} is malformed: {e}", file.display()))
            });
        let committed = match committed {
            Ok(b) => b,
            Err(msg) => {
                eprintln!("FAIL {}: {msg}", candidate.name);
                failures += 1;
                continue;
            }
        };
        let report = compare(&committed, candidate);
        for warning in &report.warnings {
            eprintln!("warn {}: {warning}", candidate.name);
        }
        for failure in &report.failures {
            eprintln!("FAIL {}: {failure}", candidate.name);
        }
        if report.passed() {
            eprintln!(
                "ok   {}: {} cells within tolerance of committed {} ({})",
                candidate.name,
                candidate.entries.len(),
                bench_file_name(&candidate.name),
                committed.git_describe,
            );
        }
        failures += report.failures.len();
    }
    if failures > 0 {
        eprintln!("bench gate FAILED with {failures} hard failure(s)");
        std::process::exit(1);
    }
    eprintln!("bench gate passed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();

    if args.iter().any(|a| a == "--list") {
        println!("available experiments:");
        for (name, _) in &experiments {
            println!("  {name}");
        }
        println!("  bench");
        println!("  all");
        return;
    }

    let mut trace_out: Option<PathBuf> = None;
    let mut seed: u64 = 7;
    let mut check = false;
    let mut baseline_dir = PathBuf::from(".");
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--trace-out" => {
                let Some(dir) = iter.next() else {
                    eprintln!("--trace-out requires a directory argument");
                    std::process::exit(2);
                };
                trace_out = Some(PathBuf::from(dir));
            }
            "--seed" => {
                let Some(value) = iter.next() else {
                    eprintln!("--seed requires an integer argument");
                    std::process::exit(2);
                };
                seed = match value.parse() {
                    Ok(s) => s,
                    Err(_) => {
                        eprintln!("--seed requires an integer argument, got {value:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--check" => check = true,
            "--baseline-dir" => {
                let Some(dir) = iter.next() else {
                    eprintln!("--baseline-dir requires a directory argument");
                    std::process::exit(2);
                };
                baseline_dir = PathBuf::from(dir);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other} (try --list)");
                std::process::exit(2);
            }
            other => names.push(other.to_owned()),
        }
    }

    let out_dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&out_dir).expect("create target/experiments");
    let trace_dir = trace_out.unwrap_or_else(|| out_dir.clone());
    fs::create_dir_all(&trace_dir).expect("create trace-out directory");
    let stamp = provenance();

    if names.iter().any(|a| a == "bench") {
        if names.len() > 1 {
            eprintln!("`bench` runs its own fixed set; don't combine it with other names");
            std::process::exit(2);
        }
        run_bench(check, &baseline_dir, seed, &out_dir, &stamp);
        return;
    }
    if check {
        eprintln!("--check only applies to the `bench` pseudo-experiment");
        std::process::exit(2);
    }

    let wanted: Vec<&str> = if names.is_empty() || names.iter().any(|a| a == "all") {
        experiments.iter().map(|(n, _)| *n).collect()
    } else {
        names.iter().map(String::as_str).collect()
    };

    // Validate every requested name up front — nothing runs on a typo.
    let unknown: Vec<&str> = wanted
        .iter()
        .copied()
        .filter(|name| !experiments.iter().any(|(n, _)| n == name))
        .collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiment(s): {unknown:?} (try --list)");
        std::process::exit(2);
    }

    for name in wanted {
        eprintln!("running {name}...");
        if name == "profile" {
            // One observed run feeds the table AND the trace/metrics
            // artifacts (running the registered closure would profile a
            // second, unrelated run).
            let run = profile_run();
            let rendered = write_table(&out_dir, name, &run.table, &stamp);
            println!("{rendered}");
            write_profile_artifacts(&trace_dir, &run);
            continue;
        }
        if name == "faults" {
            // The registered closure runs the default seed; honour --seed.
            let table = faults_campaign(seed);
            let rendered = write_table(&out_dir, name, &table, &stamp);
            println!("{rendered}");
            continue;
        }
        if name == "net" {
            // The network-edge campaign honours --seed and runs the full
            // drill, including the kill -9 shard subprocess exercise.
            let run = net_run(seed, true);
            let rendered = write_table(&out_dir, name, &run.table, &stamp);
            println!("{rendered}");
            write_baseline(&out_dir, &run.baseline);
            continue;
        }
        if name == "serve" {
            // Same: the serving stress campaign honours --seed. The one
            // run also yields the measured baseline and the per-scenario
            // introspection snapshots.
            let run = serve_run(seed);
            let rendered = write_table(&out_dir, name, &run.table, &stamp);
            println!("{rendered}");
            write_baseline(&out_dir, &run.baseline);
            fs::write(
                out_dir.join("serve.introspect.json"),
                run.introspection.to_string_pretty(),
            )
            .expect("write serve introspection");
            continue;
        }
        if name == "chaos" {
            // The full-stack chaos drill honours --seed and also yields
            // a measured baseline (BENCH_chaos.json candidate).
            let run = chaos_run(seed);
            let rendered = write_table(&out_dir, name, &run.table, &stamp);
            println!("{rendered}");
            write_baseline(&out_dir, &run.baseline);
            continue;
        }
        if name == "backend" {
            let run = backend_run();
            let rendered = write_table(&out_dir, name, &run.table, &stamp);
            println!("{rendered}");
            write_baseline(&out_dir, &run.baseline);
            continue;
        }
        if name == "scale" {
            let run = scale_run();
            let rendered = write_table(&out_dir, name, &run.table, &stamp);
            println!("{rendered}");
            write_baseline(&out_dir, &run.baseline);
            continue;
        }
        if name == "batch" {
            let run = batch_run();
            let rendered = write_table(&out_dir, name, &run.table, &stamp);
            println!("{rendered}");
            write_baseline(&out_dir, &run.baseline);
            continue;
        }
        let run = experiments
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| f)
            .expect("validated above");
        let table = run();
        let rendered = write_table(&out_dir, name, &table, &stamp);
        println!("{rendered}");
    }

    eprintln!("artifacts written to {}", out_dir.display());
}
