//! The experiment report binary.
//!
//! Usage:
//! ```text
//! cargo run -p ppa-bench --bin report --release -- all
//! cargo run -p ppa-bench --bin report --release -- t4 a2
//! cargo run -p ppa-bench --bin report --release -- --list
//! ```
//!
//! Renders the requested experiment tables to stdout and writes
//! `.txt`/`.csv`/`.json` artifacts under `target/experiments/`.

use ppa_bench::all_experiments;
use std::fs;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();

    if args.iter().any(|a| a == "--list") {
        println!("available experiments:");
        for (name, _) in &experiments {
            println!("  {name}");
        }
        println!("  all");
        return;
    }

    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments.iter().map(|(n, _)| *n).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let out_dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&out_dir).expect("create target/experiments");

    let mut unknown = Vec::new();
    for name in wanted {
        let Some((_, run)) = experiments.iter().find(|(n, _)| *n == name) else {
            unknown.push(name.to_owned());
            continue;
        };
        eprintln!("running {name}...");
        let table = run();
        let rendered = table.render();
        println!("{rendered}");
        fs::write(out_dir.join(format!("{name}.txt")), &rendered).expect("write txt");
        fs::write(out_dir.join(format!("{name}.csv")), table.to_csv()).expect("write csv");
        fs::write(out_dir.join(format!("{name}.json")), table.to_json()).expect("write json");
    }

    if !unknown.is_empty() {
        eprintln!("unknown experiment(s): {unknown:?} (try --list)");
        std::process::exit(2);
    }
    eprintln!("artifacts written to {}", out_dir.display());
}
