//! The experiment report binary.
//!
//! Usage:
//! ```text
//! cargo run -p ppa-bench --bin report --release -- all
//! cargo run -p ppa-bench --bin report --release -- t4 a2
//! cargo run -p ppa-bench --bin report --release -- profile --trace-out target/experiments
//! cargo run -p ppa-bench --bin report --release -- faults --seed 7
//! cargo run -p ppa-bench --bin report --release -- serve --seed 7
//! cargo run -p ppa-bench --bin report --release -- --list
//! ```
//!
//! Renders the requested experiment tables to stdout and writes
//! `.txt`/`.csv`/`.json` artifacts under `target/experiments/`. The
//! `profile` experiment additionally writes `profile.trace.json` (Chrome
//! `trace_event`, Perfetto-loadable) and `profile.json` (metrics
//! snapshot) to the `--trace-out` directory (default: the artifact dir).
//! The `faults` experiment honours `--seed N` (default 7) to re-roll the
//! fault campaign deterministically.
//!
//! Experiment names are validated *before* anything runs: a typo exits
//! with status 2 immediately instead of after minutes of computation.

use ppa_bench::{all_experiments, faults_campaign, profile_run, serve_campaign, Table};
use std::fs;
use std::path::{Path, PathBuf};

fn write_table(dir: &Path, name: &str, table: &Table) -> String {
    let rendered = table.render();
    fs::write(dir.join(format!("{name}.txt")), &rendered).expect("write txt");
    fs::write(dir.join(format!("{name}.csv")), table.to_csv()).expect("write csv");
    // `profile.json` is reserved for the metrics snapshot; the table JSON
    // of the profile experiment goes to `profile.table.json`.
    let json_name = if name == "profile" {
        "profile.table.json".to_owned()
    } else {
        format!("{name}.json")
    };
    fs::write(dir.join(json_name), table.to_json()).expect("write json");
    rendered
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();

    if args.iter().any(|a| a == "--list") {
        println!("available experiments:");
        for (name, _) in &experiments {
            println!("  {name}");
        }
        println!("  all");
        return;
    }

    let mut trace_out: Option<PathBuf> = None;
    let mut seed: u64 = 7;
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--trace-out" => {
                let Some(dir) = iter.next() else {
                    eprintln!("--trace-out requires a directory argument");
                    std::process::exit(2);
                };
                trace_out = Some(PathBuf::from(dir));
            }
            "--seed" => {
                let Some(value) = iter.next() else {
                    eprintln!("--seed requires an integer argument");
                    std::process::exit(2);
                };
                seed = match value.parse() {
                    Ok(s) => s,
                    Err(_) => {
                        eprintln!("--seed requires an integer argument, got {value:?}");
                        std::process::exit(2);
                    }
                };
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other} (try --list)");
                std::process::exit(2);
            }
            other => names.push(other.to_owned()),
        }
    }

    let wanted: Vec<&str> = if names.is_empty() || names.iter().any(|a| a == "all") {
        experiments.iter().map(|(n, _)| *n).collect()
    } else {
        names.iter().map(String::as_str).collect()
    };

    // Validate every requested name up front — nothing runs on a typo.
    let unknown: Vec<&str> = wanted
        .iter()
        .copied()
        .filter(|name| !experiments.iter().any(|(n, _)| n == name))
        .collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiment(s): {unknown:?} (try --list)");
        std::process::exit(2);
    }

    let out_dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&out_dir).expect("create target/experiments");
    let trace_dir = trace_out.unwrap_or_else(|| out_dir.clone());
    fs::create_dir_all(&trace_dir).expect("create trace-out directory");

    for name in wanted {
        eprintln!("running {name}...");
        if name == "profile" {
            // One observed run feeds the table AND the trace/metrics
            // artifacts (running the registered closure would profile a
            // second, unrelated run).
            let run = profile_run();
            let rendered = write_table(&out_dir, name, &run.table);
            println!("{rendered}");
            fs::write(
                trace_dir.join("profile.trace.json"),
                run.chrome_trace.to_string_pretty(),
            )
            .expect("write chrome trace");
            fs::write(
                trace_dir.join("profile.json"),
                run.metrics.to_json().to_string_pretty(),
            )
            .expect("write metrics");
            eprintln!(
                "profile artifacts: {} and {}",
                trace_dir.join("profile.trace.json").display(),
                trace_dir.join("profile.json").display()
            );
            continue;
        }
        if name == "faults" {
            // The registered closure runs the default seed; honour --seed.
            let table = faults_campaign(seed);
            let rendered = write_table(&out_dir, name, &table);
            println!("{rendered}");
            continue;
        }
        if name == "serve" {
            // Same: the serving stress campaign honours --seed.
            let table = serve_campaign(seed);
            let rendered = write_table(&out_dir, name, &table);
            println!("{rendered}");
            continue;
        }
        let run = experiments
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| f)
            .expect("validated above");
        let table = run();
        let rendered = write_table(&out_dir, name, &table);
        println!("{rendered}");
    }

    eprintln!("artifacts written to {}", out_dir.display());
}
