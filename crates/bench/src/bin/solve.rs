//! `solve` — command-line front end for the PPA graph solvers.
//!
//! ```text
//! solve <graph-file> --dest <d> [--problem shortest|widest|hops|reach]
//!                                [--backend scalar|packed|threaded]
//!                                [--threads K] [--word 64|256]
//!                                [--source] [--steps] [--paths]
//!                                [--trace FILE] [--metrics FILE]
//! solve <graph-file> --dest <d> --serve [--workers N] [--deadline-ms D]
//!                                [--budget STEPS]
//! solve --demo --dest 0 --problem shortest --steps
//! ```
//!
//! The graph file is either the native edge list (`n <count>` /
//! `e <from> <to> <w>`) or DIMACS `.gr` (`p sp` / `a`), auto-detected.
//! `--source` solves from `d` as a source instead of towards it as a
//! destination (via graph reversal); `--demo` uses a built-in workload.
//! `--trace FILE` writes a Chrome `trace_event` document of the run
//! (load in Perfetto; timestamps are controller step indices) and
//! `--metrics FILE` a metrics snapshot JSON. `--backend` selects the
//! execution backend: `scalar` (the reference), `packed` (u64 bit-plane
//! masks with bus-plan caching), or `threaded` (packed word rows sharded
//! across a `--threads K` worker pool) — results and step counts are
//! identical on all three, only host wall-clock differs. `--word 256`
//! switches the packed/threaded backends from 64-bit machine words to
//! 256-bit SWAR words (4×u64 limbs); results stay bit-identical.
//!
//! `--batch L` turns on lane batching. Inline (`--problem shortest`) it
//! solves a wavefront of `L` destinations — `d`, `d+1`, … mod `n` — on
//! one lane-concatenated machine in a single micro-op stream, printing
//! lane 0 exactly like a solo run plus a batch summary. With `--serve`
//! or `--listen` it enables the service's coalescer, which groups
//! compatible pending shortest jobs into waves of up to `L` lanes.
//!
//! `--serve` routes the job through the hardened [`ppa_serve`] service
//! instead of solving inline: a worker pool with deadlines (cooperative
//! cancellation), controller step budgets, retry-with-backoff, and a
//! packed→scalar circuit breaker. Serve mode handles `shortest`,
//! `widest`, and `apsp` (all destinations, with checkpointing); it
//! prints the job report plus the service's `serve.*` counters.
//!
//! Network modes:
//!
//! * `solve --listen ADDR [--workers N] [--status-every MS]` — serve
//!   the wire protocol over TCP (plus HTTP `GET /metrics` and
//!   `/status` on the same port). Prints `listening: <addr>` and runs
//!   until stdin reaches EOF, then drains gracefully and prints the
//!   final counters.
//! * `solve <graph> --dest <d> --connect ADDR` — submit the job to a
//!   remote `--listen` server instead of solving locally.
//! * `solve shard-worker <graph> --shard I --of N --checkpoint PATH`
//!   — run one destination-range shard of an all-pairs campaign with a
//!   crash-tolerant resumable checkpoint (kill -9 safe).
//! * `solve shard-merge --out PATH <shard.json>...` — validate that
//!   shard checkpoints cover every destination exactly once and merge
//!   them into one campaign document, byte-identical to a
//!   single-process run.

use ppa_graph::{gen, io, WeightMatrix, INF};
use ppa_machine::{Executor, PackedBackend, ThreadedBackend, WordWidth, W256};
use ppa_mcp::closure::{hop_levels, reachability};
use ppa_mcp::mcp::fit_word_bits;
use ppa_mcp::path::extract_path;
use ppa_mcp::widest::widest_path;
use ppa_mcp::McpSession;
use ppa_ppc::Ppa;
use std::process::exit;

struct Options {
    file: Option<String>,
    demo: bool,
    dest: Option<usize>,
    problem: String,
    source_mode: bool,
    backend: String,
    threads: usize,
    word: WordWidth,
    show_steps: bool,
    show_paths: bool,
    trace_file: Option<String>,
    metrics_file: Option<String>,
    serve: bool,
    batch: Option<usize>,
    redundancy: ppa_mcp::Redundancy,
    workers: usize,
    deadline_ms: Option<u64>,
    budget: Option<u64>,
    status_every_ms: Option<u64>,
    listen: Option<String>,
    connect: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: solve <graph-file | --demo> --dest <d> \
         [--problem shortest|widest|hops|reach] \
         [--backend scalar|packed|threaded] [--threads K] [--word 64|256] \
         [--batch L] [--redundancy off|dmr|tmr|tmr-detect] \
         [--source] [--steps] [--paths] [--trace FILE] [--metrics FILE] \
         [--serve [--workers N] [--deadline-ms D] [--budget STEPS] \
         [--status-every MS]] [--connect ADDR]\n       \
         solve --listen ADDR [--workers N] [--threads K] [--word 64|256] \
         [--batch L] [--redundancy off|dmr|tmr|tmr-detect] \
         [--backend scalar|packed|threaded] [--status-every MS]\n       \
         solve shard-worker <graph-file> --shard I --of N \
         --checkpoint PATH [--every K] [--workers N] [--stall-ms MS]\n       \
         solve shard-merge --out PATH <shard.json>..."
    );
    exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        file: None,
        demo: false,
        dest: None,
        problem: "shortest".into(),
        source_mode: false,
        backend: "scalar".into(),
        threads: 4,
        word: WordWidth::W64,
        show_steps: false,
        show_paths: false,
        trace_file: None,
        metrics_file: None,
        serve: false,
        batch: None,
        redundancy: ppa_mcp::Redundancy::Off,
        workers: 3,
        deadline_ms: None,
        budget: None,
        status_every_ms: None,
        listen: None,
        connect: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--demo" => opts.demo = true,
            "--dest" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.dest = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--problem" => opts.problem = args.next().unwrap_or_else(|| usage()),
            "--backend" => opts.backend = args.next().unwrap_or_else(|| usage()),
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.threads = v.parse().unwrap_or_else(|_| usage());
                if opts.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    usage()
                }
            }
            "--word" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.word = v.parse().unwrap_or_else(|_| {
                    eprintln!("--word takes 64 or 256, got `{v}`");
                    usage()
                });
            }
            "--source" => opts.source_mode = true,
            "--steps" => opts.show_steps = true,
            "--paths" => opts.show_paths = true,
            "--trace" => opts.trace_file = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics" => opts.metrics_file = Some(args.next().unwrap_or_else(|| usage())),
            "--serve" => opts.serve = true,
            "--batch" => {
                let v = args.next().unwrap_or_else(|| usage());
                let lanes: usize = v.parse().unwrap_or_else(|_| usage());
                if lanes == 0 {
                    eprintln!("--batch must be at least 1 lane");
                    usage()
                }
                opts.batch = Some(lanes);
            }
            "--redundancy" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.redundancy = v.parse().unwrap_or_else(|_| {
                    eprintln!("--redundancy takes off|dmr|tmr|tmr-detect, got `{v}`");
                    usage()
                });
            }
            "--workers" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.workers = v.parse().unwrap_or_else(|_| usage());
            }
            "--deadline-ms" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.deadline_ms = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--budget" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.budget = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--status-every" => {
                let v = args.next().unwrap_or_else(|| usage());
                let ms: u64 = v.parse().unwrap_or_else(|_| usage());
                if ms == 0 {
                    eprintln!("--status-every must be at least 1 ms");
                    usage()
                }
                opts.status_every_ms = Some(ms);
            }
            "--listen" => opts.listen = Some(args.next().unwrap_or_else(|| usage())),
            "--connect" => opts.connect = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && opts.file.is_none() => {
                opts.file = Some(other.to_owned());
            }
            _ => usage(),
        }
    }
    opts
}

fn load(opts: &Options) -> WeightMatrix {
    if opts.demo {
        return gen::random_connected(12, 0.25, 20, 7);
    }
    let Some(file) = &opts.file else { usage() };
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        exit(1)
    });
    io::parse_auto(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {file}: {e}");
        exit(1)
    })
}

/// Installs the observers requested by `--trace`/`--metrics` on a freshly
/// built machine. The returned sink is paired with its output path, so a
/// sink can never exist without a destination — the inconsistency that
/// used to be an `expect` panic in `write_observations` is
/// unrepresentable.
fn attach_observers<E: Executor>(
    ppa: &mut Ppa<E>,
    opts: &Options,
) -> Option<(ppa_obs::ChromeTraceSink, String)> {
    if opts.metrics_file.is_some() {
        ppa.enable_metrics();
    }
    opts.trace_file.as_ref().map(|path| {
        let sink = ppa_obs::ChromeTraceSink::new();
        ppa.install_sink(sink.clone());
        (sink, path.clone())
    })
}

/// Writes the trace/metrics artifacts after the run.
fn write_observations<E: Executor>(
    ppa: &mut Ppa<E>,
    sink: Option<(ppa_obs::ChromeTraceSink, String)>,
    opts: &Options,
) {
    let final_step = ppa.steps().total();
    if let Some((sink, path)) = sink {
        let _ = ppa.take_sink(); // closes any open spans first
        let doc = sink.finish(final_step);
        std::fs::write(&path, doc.to_string_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1)
        });
        println!("trace written to {path} (Chrome trace_event; ts = controller step)");
    }
    if let Some(path) = &opts.metrics_file {
        let m = ppa.take_metrics();
        std::fs::write(path, m.to_json().to_string_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1)
        });
        println!("metrics written to {path}");
    }
}

fn main() {
    // Subcommands are intercepted before flag parsing: they have their
    // own argument grammars (and no `--dest`).
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("shard-worker") => return run_shard_worker_cli(&argv[1..]),
        Some("shard-merge") => return run_shard_merge_cli(&argv[1..]),
        _ => {}
    }
    let opts = parse_args();
    if let Some(addr) = &opts.listen {
        run_listen(addr, &opts);
        return;
    }
    let mut w = load(&opts);
    let Some(d) = opts.dest else { usage() };
    if d >= w.n() {
        eprintln!(
            "destination {d} out of range (graph has {} vertices)",
            w.n()
        );
        exit(1);
    }
    if opts.source_mode {
        w = w.reversed();
    }
    let role = if opts.source_mode {
        "source"
    } else {
        "destination"
    };
    println!(
        "graph: {} vertices, {} edges; {role} {d}; problem: {}",
        w.n(),
        w.edge_count(),
        opts.problem
    );

    let backend = match opts.backend.as_str() {
        "scalar" => Backend::Scalar,
        "packed" => Backend::Packed,
        "threaded" => Backend::Threaded,
        other => {
            eprintln!("unknown backend `{other}`");
            usage()
        }
    };
    if let Some(addr) = &opts.connect {
        run_connect(addr, &w, d, &opts);
        return;
    }
    if opts.serve {
        run_serve(w, d, backend, &opts);
        return;
    }
    let k = opts.threads;
    if opts.batch.is_some() && opts.problem != "shortest" {
        eprintln!("--batch without --serve supports only --problem shortest");
        exit(2);
    }
    if opts.redundancy.replicas() > 1 {
        if opts.problem != "shortest" {
            eprintln!("--redundancy without --serve supports only --problem shortest");
            exit(2);
        }
        if opts.batch.is_some() {
            eprintln!("--batch and --redundancy cannot be combined inline; use --serve for both");
            exit(2);
        }
        return run_shortest_redundant(backend, &w, d, &opts);
    }
    match opts.problem.as_str() {
        "shortest" => {
            if let Some(lanes) = opts.batch {
                return run_shortest_batched(backend, &w, d, lanes, &opts);
            }
            let h = fit_word_bits(&w).clamp(2, 62);
            match (backend, opts.word) {
                (Backend::Scalar, _) => {
                    run_shortest(Ppa::square(w.n()).with_word_bits(h), &w, d, &opts)
                }
                (Backend::Packed, WordWidth::W64) => run_shortest(
                    Ppa::<PackedBackend>::packed(w.n()).with_word_bits(h),
                    &w,
                    d,
                    &opts,
                ),
                (Backend::Packed, WordWidth::W256) => run_shortest(
                    Ppa::<PackedBackend<W256>>::packed_wide(w.n()).with_word_bits(h),
                    &w,
                    d,
                    &opts,
                ),
                (Backend::Threaded, WordWidth::W64) => run_shortest(
                    Ppa::<ThreadedBackend>::threaded(w.n(), k).with_word_bits(h),
                    &w,
                    d,
                    &opts,
                ),
                (Backend::Threaded, WordWidth::W256) => run_shortest(
                    Ppa::<ThreadedBackend<W256>>::threaded_wide(w.n(), k).with_word_bits(h),
                    &w,
                    d,
                    &opts,
                ),
            }
        }
        "widest" => {
            let h = w.required_word_bits().clamp(4, 62);
            match (backend, opts.word) {
                (Backend::Scalar, _) => {
                    run_widest(Ppa::square(w.n()).with_word_bits(h), &w, d, &opts)
                }
                (Backend::Packed, WordWidth::W64) => run_widest(
                    Ppa::<PackedBackend>::packed(w.n()).with_word_bits(h),
                    &w,
                    d,
                    &opts,
                ),
                (Backend::Packed, WordWidth::W256) => run_widest(
                    Ppa::<PackedBackend<W256>>::packed_wide(w.n()).with_word_bits(h),
                    &w,
                    d,
                    &opts,
                ),
                (Backend::Threaded, WordWidth::W64) => run_widest(
                    Ppa::<ThreadedBackend>::threaded(w.n(), k).with_word_bits(h),
                    &w,
                    d,
                    &opts,
                ),
                (Backend::Threaded, WordWidth::W256) => run_widest(
                    Ppa::<ThreadedBackend<W256>>::threaded_wide(w.n(), k).with_word_bits(h),
                    &w,
                    d,
                    &opts,
                ),
            }
        }
        "hops" => match (backend, opts.word) {
            (Backend::Scalar, _) => run_hops(Ppa::square(w.n()), &w, d, &opts),
            (Backend::Packed, WordWidth::W64) => {
                run_hops(Ppa::<PackedBackend>::packed(w.n()), &w, d, &opts)
            }
            (Backend::Packed, WordWidth::W256) => {
                run_hops(Ppa::<PackedBackend<W256>>::packed_wide(w.n()), &w, d, &opts)
            }
            (Backend::Threaded, WordWidth::W64) => {
                run_hops(Ppa::<ThreadedBackend>::threaded(w.n(), k), &w, d, &opts)
            }
            (Backend::Threaded, WordWidth::W256) => run_hops(
                Ppa::<ThreadedBackend<W256>>::threaded_wide(w.n(), k),
                &w,
                d,
                &opts,
            ),
        },
        "reach" => match (backend, opts.word) {
            (Backend::Scalar, _) => run_reach(Ppa::square(w.n()), &w, d, &opts),
            (Backend::Packed, WordWidth::W64) => {
                run_reach(Ppa::<PackedBackend>::packed(w.n()), &w, d, &opts)
            }
            (Backend::Packed, WordWidth::W256) => {
                run_reach(Ppa::<PackedBackend<W256>>::packed_wide(w.n()), &w, d, &opts)
            }
            (Backend::Threaded, WordWidth::W64) => {
                run_reach(Ppa::<ThreadedBackend>::threaded(w.n(), k), &w, d, &opts)
            }
            (Backend::Threaded, WordWidth::W256) => run_reach(
                Ppa::<ThreadedBackend<W256>>::threaded_wide(w.n(), k),
                &w,
                d,
                &opts,
            ),
        },
        other => {
            eprintln!("unknown problem `{other}`");
            usage()
        }
    }
}

/// The execution backend selected by `--backend`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    Scalar,
    Packed,
    Threaded,
}

/// Serve-mode runner: one job through a [`ppa_serve::SolveService`]
/// worker pool, then the job report and the service's own counters.
fn run_serve(w: WeightMatrix, d: usize, backend: Backend, opts: &Options) {
    use ppa_serve::{ApspCheckpoint, JobKind, JobOutcome, JobSpec, ServeConfig, SolveService};
    use std::sync::Arc;
    use std::time::Duration;

    let kind = match opts.problem.as_str() {
        "shortest" => JobKind::Shortest { dest: d },
        "widest" => JobKind::Widest { dest: d },
        "apsp" => JobKind::Apsp {
            resume_from: None,
            checkpoint_every: 1,
        },
        other => {
            eprintln!("problem `{other}` is not served (serve mode handles shortest|widest|apsp)");
            exit(2)
        }
    };
    let mut config = ServeConfig {
        workers: opts.workers.max(1),
        prefer_packed: backend == Backend::Packed,
        prefer_threaded: backend == Backend::Threaded,
        threads: opts.threads,
        word: opts.word,
        ..ServeConfig::default()
    };
    if let Some(lanes) = opts.batch {
        config.batching.enabled = true;
        config.batching.max_lanes = lanes;
    }
    config.redundancy = opts.redundancy;
    let svc = Arc::new(SolveService::start(config));
    // `--status-every MS`: a StatusReporter dumps introspection
    // snapshots (compact JSON, one line, `status:` prefix) to stderr at
    // the requested period, and guarantees one `status-final:` snapshot
    // taken *after* the job settles — the periodic thread alone could
    // miss the terminal state and leave the last line stale.
    let status = opts
        .status_every_ms
        .map(|ms| start_status_reporter(Arc::clone(&svc), ms));
    let stop_status = move || {
        if let Some(reporter) = status {
            reporter.finish();
        }
    };
    // Stops the dumper, then drains the pool and returns final metrics.
    let finish = move |svc: Arc<SolveService>| -> ppa_obs::Metrics {
        stop_status();
        match Arc::try_unwrap(svc) {
            Ok(s) => s.shutdown(),
            Err(arc) => arc.metrics(), // unreachable: the dumper was joined
        }
    };
    let mut spec = JobSpec::new(w.clone(), kind);
    spec.deadline = opts.deadline_ms.map(Duration::from_millis);
    spec.step_budget = opts.budget;
    let ticket = match svc.submit(spec) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("submit failed: {e}");
            finish(svc);
            exit(1)
        }
    };
    let report = ticket.wait();
    println!(
        "job {}: {} attempt(s), backend {}, latency {:?}",
        report.id,
        report.attempts,
        report
            .backend
            .map_or_else(|| "-".into(), |b| format!("{b:?}")),
        report.latency
    );
    match report.outcome {
        Ok(JobOutcome::Shortest(out)) => {
            for i in 0..w.n() {
                if out.sow[i] == INF {
                    println!("  {i}: unreachable");
                } else {
                    println!("  {i}: cost {:5}  next {}", out.sow[i], out.ptn[i]);
                }
            }
        }
        Ok(JobOutcome::Widest(out)) => {
            for i in 0..w.n() {
                if i == d {
                    continue;
                }
                if out.cap[i] == 0 {
                    println!("  {i}: unreachable");
                } else {
                    println!("  {i}: capacity {:5}  next {}", out.cap[i], out.ptn[i]);
                }
            }
        }
        Ok(JobOutcome::Apsp(doc)) => match ApspCheckpoint::from_json(&doc) {
            Ok(cp) => {
                println!(
                    "  all-pairs campaign complete: {} destinations",
                    cp.completed().len()
                );
                for r in cp.completed() {
                    let reachable = r.sow.iter().filter(|&&c| c != INF).count();
                    println!(
                        "  dest {:3}: {} reachable, {} iteration(s)",
                        r.dest, reachable, r.iterations
                    );
                }
            }
            Err(e) => {
                eprintln!("malformed campaign document: {e}");
                exit(1)
            }
        },
        Err(e) => {
            eprintln!("job failed: {e}");
            let metrics = finish(svc);
            print_serve_counters(&metrics);
            exit(1)
        }
    }
    let metrics = finish(svc);
    print_serve_counters(&metrics);
}

fn print_serve_counters(metrics: &ppa_obs::Metrics) {
    print_counters(metrics, "serve.");
}

fn print_counters(metrics: &ppa_obs::Metrics, prefix: &str) {
    let mut counters: Vec<(&str, u64)> = metrics
        .counters()
        .filter(|(name, _)| name.starts_with(prefix))
        .collect();
    counters.sort();
    for (name, value) in counters {
        println!("  {name}: {value}");
    }
}

/// Starts the `--status-every` sidecar: periodic `status:` lines plus a
/// guaranteed `status-final:` snapshot taken after the drain signal.
fn start_status_reporter(
    svc: std::sync::Arc<ppa_serve::SolveService>,
    every_ms: u64,
) -> ppa_serve::StatusReporter {
    ppa_serve::StatusReporter::start(
        svc,
        std::time::Duration::from_millis(every_ms),
        |snap, is_final| {
            let prefix = if is_final { "status-final" } else { "status" };
            eprintln!("{prefix}: {}", snap.to_json().to_string_compact());
        },
    )
}

/// `--listen ADDR`: run the wire protocol over TCP (plus HTTP `GET
/// /metrics` / `/status` on the same port) until stdin reaches EOF,
/// then drain gracefully. The bound address is printed on stdout so a
/// parent that asked for an OS-assigned port (`--listen 127.0.0.1:0`)
/// can discover where to connect.
fn run_listen(addr: &str, opts: &Options) {
    use ppa_serve::{NetConfig, NetServer, ServeConfig, SolveService};
    use std::io::{BufRead, Write};
    use std::sync::Arc;

    let mut config = ServeConfig {
        workers: opts.workers.max(1),
        prefer_packed: opts.backend == "packed",
        prefer_threaded: opts.backend == "threaded",
        threads: opts.threads,
        word: opts.word,
        ..ServeConfig::default()
    };
    if let Some(lanes) = opts.batch {
        config.batching.enabled = true;
        config.batching.max_lanes = lanes;
    }
    config.redundancy = opts.redundancy;
    let svc = Arc::new(SolveService::start(config));
    let server = NetServer::start(
        Arc::clone(&svc),
        NetConfig {
            addr: addr.to_owned(),
            ..NetConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot listen on {addr}: {e}");
        exit(1)
    });
    println!("listening: {}", server.local_addr());
    let _ = std::io::stdout().flush();
    let status = opts
        .status_every_ms
        .map(|ms| start_status_reporter(Arc::clone(&svc), ms));
    // Graceful-drain signal: the parent closing our stdin. (kill -9 is
    // the ungraceful path — that one is covered by shard checkpoints.)
    let stdin = std::io::stdin();
    let mut line = String::new();
    while stdin
        .lock()
        .read_line(&mut line)
        .map(|n| n > 0)
        .unwrap_or(false)
    {
        line.clear();
    }
    let net_metrics = server.shutdown();
    if let Some(reporter) = status {
        reporter.finish();
    }
    let mut metrics = match Arc::try_unwrap(svc) {
        Ok(s) => s.shutdown(),
        Err(arc) => arc.metrics(), // unreachable: the server and reporter were joined
    };
    metrics.merge(&net_metrics);
    print_serve_counters(&metrics);
    print_counters(&metrics, "net.");
}

/// `--connect ADDR`: submit this job to a remote `--listen` server over
/// the wire protocol and print the report, mirroring serve-mode output.
fn run_connect(addr: &str, w: &WeightMatrix, d: usize, opts: &Options) {
    use ppa_serve::wire::outcome_from_json;
    use ppa_serve::{ApspCheckpoint, JobOutcome, NetClient, Request, Response, SubmitRequest};

    match opts.problem.as_str() {
        "shortest" | "widest" | "apsp" => {}
        other => {
            eprintln!("problem `{other}` is not served (--connect handles shortest|widest|apsp)");
            exit(2)
        }
    }
    let mut client = NetClient::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        exit(1)
    });
    let req = Request::Submit(SubmitRequest {
        graph: io::to_edge_list(w),
        kind: opts.problem.clone(),
        dest: d,
        checkpoint_every: 1,
        resume_from: None,
        deadline_ms: opts.deadline_ms,
        step_budget: opts.budget,
        transient_faults: None,
        wait: true,
    });
    let response = client.call(&req).unwrap_or_else(|e| {
        eprintln!("wire error talking to {addr}: {e}");
        exit(1)
    });
    match response {
        Response::Report {
            id,
            outcome,
            attempts,
            backend,
            latency_us,
        } => {
            println!(
                "job {id}: {attempts} attempt(s), backend {}, latency {latency_us}us (remote)",
                backend.as_deref().unwrap_or("-"),
            );
            match outcome_from_json(&outcome) {
                Ok(JobOutcome::Shortest(out)) => {
                    for i in 0..w.n() {
                        if out.sow[i] == INF {
                            println!("  {i}: unreachable");
                        } else {
                            println!("  {i}: cost {:5}  next {}", out.sow[i], out.ptn[i]);
                        }
                    }
                }
                Ok(JobOutcome::Widest(out)) => {
                    for i in 0..w.n() {
                        if i == d {
                            continue;
                        }
                        if out.cap[i] == 0 {
                            println!("  {i}: unreachable");
                        } else {
                            println!("  {i}: capacity {:5}  next {}", out.cap[i], out.ptn[i]);
                        }
                    }
                }
                Ok(JobOutcome::Apsp(doc)) => match ApspCheckpoint::from_json(&doc) {
                    Ok(cp) => println!(
                        "  all-pairs campaign complete: {} destinations",
                        cp.completed().len()
                    ),
                    Err(e) => {
                        eprintln!("malformed campaign document: {e}");
                        exit(1)
                    }
                },
                Err(e) => {
                    eprintln!("malformed outcome document: {e}");
                    exit(1)
                }
            }
        }
        Response::Error(failure) => {
            eprintln!("job failed: {} ({})", failure.message, failure.kind);
            if let Some(ms) = failure.retry_after_ms {
                eprintln!("  retry after {ms} ms");
            }
            exit(1)
        }
        other => {
            eprintln!("unexpected response: {:?}", other.to_json());
            exit(1)
        }
    }
}

/// `solve shard-worker <graph> --shard I --of N --checkpoint PATH`:
/// one destination-range shard of an all-pairs campaign, checkpointing
/// atomically as it goes. Safe to kill -9 and re-run: a restart resumes
/// from the persisted prefix and refuses a checkpoint that belongs to a
/// different campaign.
fn run_shard_worker_cli(args: &[String]) {
    use ppa_serve::{run_shard_worker, ServeConfig};
    use std::time::Duration;

    let mut file = None;
    let mut shard = None;
    let mut of = None;
    let mut checkpoint = None;
    let mut every = 1usize;
    let mut workers = 2usize;
    let mut stall_ms = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shard" => shard = it.next().and_then(|v| v.parse().ok()),
            "--of" => of = it.next().and_then(|v| v.parse().ok()),
            "--checkpoint" => checkpoint = it.next().cloned(),
            "--every" => {
                every = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--stall-ms" => stall_ms = it.next().and_then(|v| v.parse().ok()),
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_owned()),
            _ => usage(),
        }
    }
    let (Some(file), Some(shard), Some(of), Some(checkpoint)) = (file, shard, of, checkpoint)
    else {
        usage()
    };
    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        exit(1)
    });
    let w = io::parse_auto(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {file}: {e}");
        exit(1)
    });
    let config = ServeConfig {
        workers: workers.max(1),
        ..ServeConfig::default()
    };
    let stall = stall_ms.map(Duration::from_millis);
    match run_shard_worker(
        &w,
        shard,
        of,
        std::path::Path::new(&checkpoint),
        every,
        config,
        stall,
    ) {
        Ok(cp) => {
            let (start, end) = cp.range();
            println!(
                "shard-worker: shard {shard}/{of} complete, destinations {start}..{end} \
                 ({} results) -> {checkpoint}",
                cp.completed().len()
            );
        }
        Err(e) => {
            eprintln!("shard-worker failed: {e}");
            exit(1)
        }
    }
}

/// `solve shard-merge --out PATH <shard.json>...`: validate that the
/// shard checkpoints cover every destination exactly once and merge
/// them into one campaign document (byte-identical to a single-process
/// run over the same graph).
fn run_shard_merge_cli(args: &[String]) {
    use ppa_serve::merge_shard_files;

    let mut out = None;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().cloned(),
            other if !other.starts_with('-') => files.push(other.to_owned()),
            _ => usage(),
        }
    }
    let Some(out) = out else { usage() };
    if files.is_empty() {
        usage()
    }
    match merge_shard_files(&files) {
        Ok(merged) => {
            merged.save(std::path::Path::new(&out)).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1)
            });
            println!(
                "shard-merge: {} shard(s) -> {} destinations, n={} -> {out}",
                files.len(),
                merged.completed().len(),
                merged.n()
            );
        }
        Err(e) => {
            eprintln!("shard-merge failed: {e}");
            exit(1)
        }
    }
}

/// Shortest-path runner, generic over the execution backend. Uses an
/// [`McpSession`] so the destination-independent setup is prepared once —
/// the CLI is a batched consumer like the all-pairs driver.
fn run_shortest<E: Executor>(ppa: Ppa<E>, w: &WeightMatrix, d: usize, opts: &Options) {
    let mut session = McpSession::from_ppa(ppa, w).unwrap_or_else(|e| {
        eprintln!("solver error: {e}");
        exit(1)
    });
    let sink = attach_observers(session.ppa_mut(), opts);
    let out = session.solve(d).unwrap_or_else(|e| {
        eprintln!("solver error: {e}");
        exit(1)
    });
    print_shortest_rows(&out, w.n(), opts);
    if opts.show_steps {
        println!("{}", out.stats);
    }
    write_observations(session.ppa_mut(), sink, opts);
}

/// Per-vertex output rows for a shortest-path solution; shared between
/// the solo and lane-batched runners so `--batch` prints lane 0 exactly
/// like a solo run.
fn print_shortest_rows(out: &ppa_mcp::McpOutput, n: usize, opts: &Options) {
    for i in 0..n {
        if out.sow[i] == INF {
            println!("  {i}: unreachable");
        } else if opts.show_paths {
            let p = extract_path(out, i)
                .map(|p| {
                    p.iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(" -> ")
                })
                .unwrap_or_else(|| "?".into());
            println!("  {i}: cost {:5}  {}", out.sow[i], p);
        } else {
            println!("  {i}: cost {:5}  next {}", out.sow[i], out.ptn[i]);
        }
    }
}

/// `--batch L` without `--serve`: replicate the graph into `L` lanes of
/// one [`BatchSession`](ppa_mcp::BatchSession) and solve the wavefront
/// of destinations `d`, `d+1`, … (mod `n`) in a single micro-op stream.
/// Lane 0 is the requested destination and prints exactly like a solo
/// run; the extra lanes ride along to demonstrate amortization and are
/// summarized on one line.
fn run_shortest_batched(
    backend: Backend,
    w: &WeightMatrix,
    d: usize,
    lanes: usize,
    opts: &Options,
) {
    use ppa_mcp::batch::replicate;
    use ppa_mcp::BatchSession;

    let lanes = lanes.min(64).min(w.n());
    let graphs = replicate(w, lanes);
    let dests: Vec<usize> = (0..lanes).map(|l| (d + l) % w.n()).collect();
    let die = |e: ppa_mcp::McpError| -> ! {
        eprintln!("solver error: {e}");
        exit(1)
    };
    match (backend, opts.word) {
        (Backend::Scalar, _) => drive_batch(
            BatchSession::new(&graphs).unwrap_or_else(|e| die(e)),
            &dests,
            w,
            opts,
        ),
        (Backend::Packed, WordWidth::W64) => drive_batch(
            BatchSession::new_packed(&graphs).unwrap_or_else(|e| die(e)),
            &dests,
            w,
            opts,
        ),
        (Backend::Packed, WordWidth::W256) => drive_batch(
            BatchSession::<PackedBackend<W256>>::new_packed_wide(&graphs)
                .unwrap_or_else(|e| die(e)),
            &dests,
            w,
            opts,
        ),
        (Backend::Threaded, WordWidth::W64) => drive_batch(
            BatchSession::new_threaded(&graphs, opts.threads).unwrap_or_else(|e| die(e)),
            &dests,
            w,
            opts,
        ),
        (Backend::Threaded, WordWidth::W256) => drive_batch(
            BatchSession::<ThreadedBackend<W256>>::new_threaded_wide(&graphs, opts.threads)
                .unwrap_or_else(|e| die(e)),
            &dests,
            w,
            opts,
        ),
    }
}

/// `--redundancy dmr|tmr|tmr-detect` without `--serve`: replicate the
/// graph into `mode.replicas()` voting lanes of one
/// [`BatchSession`](ppa_mcp::BatchSession) and accept only a
/// vote-screened result. The voted output prints exactly like a solo
/// run plus a one-line vote summary; a detected-but-uncorrectable
/// disagreement exits nonzero with the suspect lanes and column bands.
fn run_shortest_redundant(backend: Backend, w: &WeightMatrix, d: usize, opts: &Options) {
    use ppa_mcp::batch::replicate;
    use ppa_mcp::BatchSession;

    let mode = opts.redundancy;
    let graphs = replicate(w, mode.replicas());
    let die = |e: ppa_mcp::McpError| -> ! {
        eprintln!("solver error: {e}");
        exit(1)
    };
    match (backend, opts.word) {
        (Backend::Scalar, _) => drive_redundant(
            BatchSession::new(&graphs).unwrap_or_else(|e| die(e)),
            w,
            d,
            mode,
            opts,
        ),
        (Backend::Packed, WordWidth::W64) => drive_redundant(
            BatchSession::new_packed(&graphs).unwrap_or_else(|e| die(e)),
            w,
            d,
            mode,
            opts,
        ),
        (Backend::Packed, WordWidth::W256) => drive_redundant(
            BatchSession::<PackedBackend<W256>>::new_packed_wide(&graphs)
                .unwrap_or_else(|e| die(e)),
            w,
            d,
            mode,
            opts,
        ),
        (Backend::Threaded, WordWidth::W64) => drive_redundant(
            BatchSession::new_threaded(&graphs, opts.threads).unwrap_or_else(|e| die(e)),
            w,
            d,
            mode,
            opts,
        ),
        (Backend::Threaded, WordWidth::W256) => drive_redundant(
            BatchSession::<ThreadedBackend<W256>>::new_threaded_wide(&graphs, opts.threads)
                .unwrap_or_else(|e| die(e)),
            w,
            d,
            mode,
            opts,
        ),
    }
}

/// Solves one redundant wave on an already-built replicated session and
/// prints the voted lane plus the vote summary.
fn drive_redundant<E: Executor>(
    mut batch: ppa_mcp::BatchSession<E>,
    w: &WeightMatrix,
    d: usize,
    mode: ppa_mcp::Redundancy,
    opts: &Options,
) {
    let sink = attach_observers(batch.ppa_mut(), opts);
    let wave = batch.solve_redundant(&[d], mode).unwrap_or_else(|e| {
        eprintln!("solver error: {e}");
        exit(1)
    });
    let voted = &wave.lanes[0];
    match &voted.outcome {
        Ok(out) => {
            print_shortest_rows(out, w.n(), opts);
            let agreement = if voted.vote.corrected {
                format!(
                    "majority out-voted lane(s) {:?} (bands {:?})",
                    voted.vote.suspect_lanes, voted.vote.suspect_bands
                )
            } else {
                "unanimous".into()
            };
            println!(
                "  vote: {mode} with {} replica lane(s) on a {}x{} machine: {agreement}",
                voted.vote.replicas,
                batch.n(),
                batch.n() * batch.lanes(),
            );
            if opts.show_steps {
                println!("{}", out.stats);
            }
        }
        Err(e) => {
            eprintln!("vote refused the wave: {e}");
            if !voted.vote.suspect_lanes.is_empty() {
                eprintln!(
                    "  suspect lane(s) {:?} in column band(s) {:?}; BIST localized {:?}",
                    voted.vote.suspect_lanes, voted.vote.suspect_bands, voted.vote.located
                );
            }
            exit(1)
        }
    }
    write_observations(batch.ppa_mut(), sink, opts);
}

/// Solves one wavefront on an already-built batch session and prints
/// lane 0 plus the batch summary.
fn drive_batch<E: Executor>(
    mut batch: ppa_mcp::BatchSession<E>,
    dests: &[usize],
    w: &WeightMatrix,
    opts: &Options,
) {
    let sink = attach_observers(batch.ppa_mut(), opts);
    let wave = batch.solve(dests).unwrap_or_else(|e| {
        eprintln!("solver error: {e}");
        exit(1)
    });
    let lane0 = match &wave[0] {
        Ok(out) => out,
        Err(e) => {
            eprintln!("solver error: {e}");
            exit(1)
        }
    };
    print_shortest_rows(lane0, w.n(), opts);
    let converged = wave.iter().filter(|r| r.is_ok()).count();
    println!(
        "  batch: {}/{} lane(s) converged on a {}x{} machine ({}-bit words), destinations {:?}",
        converged,
        batch.lanes(),
        batch.n(),
        batch.n() * batch.lanes(),
        batch.word_bits(),
        dests
    );
    if opts.show_steps {
        println!("{}", lane0.stats);
    }
    write_observations(batch.ppa_mut(), sink, opts);
}

/// Widest-path runner, generic over the execution backend.
fn run_widest<E: Executor>(mut ppa: Ppa<E>, w: &WeightMatrix, d: usize, opts: &Options) {
    let sink = attach_observers(&mut ppa, opts);
    let out = widest_path(&mut ppa, w, d).unwrap_or_else(|e| {
        eprintln!("solver error: {e}");
        exit(1)
    });
    for i in 0..w.n() {
        if i == d {
            continue;
        }
        if out.cap[i] == 0 {
            println!("  {i}: unreachable");
        } else {
            println!("  {i}: capacity {:5}  next {}", out.cap[i], out.ptn[i]);
        }
    }
    if opts.show_steps {
        println!("{}", out.stats);
    }
    write_observations(&mut ppa, sink, opts);
}

/// Hop-level (BFS) runner, generic over the execution backend.
fn run_hops<E: Executor>(mut ppa: Ppa<E>, w: &WeightMatrix, d: usize, opts: &Options) {
    let sink = attach_observers(&mut ppa, opts);
    let out = hop_levels(&mut ppa, w, d).unwrap_or_else(|e| {
        eprintln!("solver error: {e}");
        exit(1)
    });
    for (i, lvl) in out.level.iter().enumerate() {
        match lvl {
            None => println!("  {i}: unreachable"),
            Some(h) => println!("  {i}: {h} hop(s)"),
        }
    }
    if opts.show_steps {
        println!("  total steps: {}", out.steps);
    }
    write_observations(&mut ppa, sink, opts);
}

/// Reachability runner, generic over the execution backend.
fn run_reach<E: Executor>(mut ppa: Ppa<E>, w: &WeightMatrix, d: usize, opts: &Options) {
    let sink = attach_observers(&mut ppa, opts);
    let out = reachability(&mut ppa, w, d).unwrap_or_else(|e| {
        eprintln!("solver error: {e}");
        exit(1)
    });
    let members: Vec<String> = out
        .reach
        .iter()
        .enumerate()
        .filter(|(_, &r)| r)
        .map(|(i, _)| i.to_string())
        .collect();
    println!("  can reach {d}: {{{}}}", members.join(", "));
    if opts.show_steps {
        println!(
            "  total steps: {} ({} iterations)",
            out.steps, out.iterations
        );
    }
    write_observations(&mut ppa, sink, opts);
}
