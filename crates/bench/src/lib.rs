//! # ppa-bench — the experiment harness
//!
//! One function per experiment of DESIGN.md's index (F1, T1-T6, A1, A2),
//! each returning a [`Table`] that the `report` binary renders to stdout
//! and to `target/experiments/*.{txt,csv,json}`. The paper has no
//! numeric evaluation tables of its own — it is an algorithm paper whose
//! "evaluation" is Figure 1 plus the complexity derivation — so every
//! quantitative claim becomes one table here; EXPERIMENTS.md interprets
//! the outputs against the claims.
//!
//! All workloads are seeded and deterministic: the numbers in
//! EXPERIMENTS.md regenerate exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod table;

pub use baseline::{Baseline, BaselineEntry, CheckReport, HostFingerprint, WallStats};
pub use table::Table;

use ppa_baselines::{Gcn, Hypercube, McpSolver, PlainMesh, SequentialBf};
use ppa_graph::{gen, reference, validate, WeightMatrix, INF};
use ppa_machine::{render, Dim, Direction, ExecMode, FaultMap, Op, Plane, StepReport};
use ppa_mcp::mcp::{fit_word_bits, minimum_cost_path};
use ppa_mcp::variants::{minimum_cost_path_variant, BusModel, MinModel, VariantConfig};
use ppa_mcp::{solve_with_recovery, RecoveryPolicy};
use ppa_ppc::{Parallel, Ppa};
use std::time::Instant;

fn machine_for(w: &WeightMatrix, h: u32) -> Ppa {
    Ppa::square(w.n()).with_word_bits(h.max(fit_word_bits(w)).clamp(2, 62))
}

/// F1 — the Figure-1 companion: switch semantics and bus partitioning,
/// rendered for the three switch patterns the MCP algorithm programs.
pub fn fig1() -> Table {
    let dim = Dim::square(8);
    let d = 2;
    let mut t = Table::new(
        "F1",
        "Figure 1 companion: switch-box patterns and the bus clusters they induce (8x8, d = 2)",
        vec![
            "pattern".into(),
            "direction".into(),
            "clusters per line".into(),
        ],
    );
    let patterns: Vec<(&str, Direction, Plane<bool>)> = vec![
        (
            "statement 10: ROW == d",
            Direction::South,
            Plane::from_fn(dim, |c| c.row == d),
        ),
        (
            "statement 11: COL == n-1",
            Direction::West,
            Plane::from_fn(dim, |c| c.col == dim.cols - 1),
        ),
        (
            "statement 16: ROW == COL",
            Direction::South,
            Plane::from_fn(dim, |c| c.row == c.col),
        ),
        (
            "stripes: COL % 3 == 0",
            Direction::East,
            Plane::from_fn(dim, |c| c.col % 3 == 0),
        ),
    ];
    for (name, dir, open) in patterns {
        let lines = dim.lines(dir.axis());
        let opens = open.count_true();
        t.row(vec![
            name.into(),
            dir.to_string(),
            format!("{:.1}", opens as f64 / lines as f64),
        ]);
        t.note(format!("--- {name} ({dir}) ---"));
        t.note(render::render_switches(dim, dir, &open));
        t.note(render::render_clusters(dim, dir, &open));
    }
    t
}

/// T1 — `min`/`selected_min` cost: exactly linear in `h`, flat in `n`.
pub fn t1_min_cost() -> Table {
    let mut t = Table::new(
        "T1",
        "bit-serial min()/selected_min() cost in SIMD steps (paper: O(h), independent of n)",
        vec![
            "n".into(),
            "h".into(),
            "min steps".into(),
            "selected_min steps".into(),
            "steps/bit".into(),
        ],
    );
    for &n in &[4usize, 16, 64] {
        for &h in &[4u32, 8, 16, 32] {
            let mut ppa = Ppa::square(n).with_word_bits(h);
            let vals = Parallel::from_fn(ppa.dim(), |c| {
                ((c.row as u64 * 37 + c.col as u64 * 11) % (1u64 << h.min(16))) as i64
            });
            let col = ppa.col_index();
            let nm1 = ppa.constant(n as i64 - 1);
            let heads = ppa.eq(&col, &nm1).unwrap();
            let sel = ppa.lt(&col, &nm1).unwrap();
            ppa.reset_steps();
            let _ = ppa.min(&vals, Direction::West, &heads).unwrap();
            let min_steps = ppa.steps().total();
            ppa.reset_steps();
            let _ = ppa
                .selected_min(&vals, Direction::West, &heads, &sel)
                .unwrap();
            let sel_steps = ppa.steps().total();
            t.row(vec![
                n.to_string(),
                h.to_string(),
                min_steps.to_string(),
                sel_steps.to_string(),
                format!("{:.2}", min_steps as f64 / f64::from(h)),
            ]);
        }
    }
    t.note("expected shape: steps = 4h + 4 for min (4h + 5 for selected_min), identical across n");
    t
}

/// T2 — MCP total steps: linear in `p`, per-iteration flat in `n`.
pub fn t2_steps_vs_p() -> Table {
    let mut t = Table::new(
        "T2",
        "MCP steps vs maximum path length p (padded-path workload, h = 12)",
        vec![
            "n".into(),
            "p".into(),
            "iterations".into(),
            "total steps".into(),
            "steps/iteration".into(),
        ],
    );
    for &n in &[16usize, 32] {
        for &p in &[1usize, 2, 4, 8, 12] {
            if p >= n {
                continue;
            }
            let w = gen::padded_path(n, p);
            let mut ppa = Ppa::square(n).with_word_bits(12);
            let out = minimum_cost_path(&mut ppa, &w, p).unwrap();
            t.row(vec![
                n.to_string(),
                p.to_string(),
                out.iterations.to_string(),
                out.stats.total.total().to_string(),
                format!("{:.1}", out.stats.steps_per_iteration()),
            ]);
        }
    }
    t.note("expected shape: iterations = p, steps/iteration constant across n and p");
    t
}

/// T3 — MCP per-iteration steps vs `h`: linear (the headline's `log h`
/// is inconsistent with the paper's own O(h) min derivation).
pub fn t3_steps_vs_h() -> Table {
    let mut t = Table::new(
        "T3",
        "MCP per-iteration steps vs word width h (ring n = 12): linear in h, not log h",
        vec![
            "h".into(),
            "steps/iteration".into(),
            "ratio to previous".into(),
        ],
    );
    let w = gen::ring(12);
    let mut prev: Option<f64> = None;
    for &h in &[8u32, 16, 32, 48] {
        let mut ppa = Ppa::square(12).with_word_bits(h);
        let out = minimum_cost_path(&mut ppa, &w, 0).unwrap();
        let per = out.stats.steps_per_iteration();
        t.row(vec![
            h.to_string(),
            format!("{per:.1}"),
            match prev {
                None => "-".into(),
                Some(p) => format!("{:.2}", per / p),
            },
        ]);
        prev = Some(per);
    }
    t.note("expected shape: doubling h roughly doubles the per-iteration cost (8h + const)");
    t
}

/// T4 — the architecture comparison behind the paper's equivalence claim.
pub fn t4_architectures() -> Table {
    let h = 16u32;
    let mut t = Table::new(
        "T4",
        "single-destination MCP across architectures (random connected digraphs, density 0.25, h = 16)",
        vec![
            "n".into(),
            "p".into(),
            "PPA bit-steps".into(),
            "GCN bit-steps".into(),
            "hypercube bit-steps".into(),
            "hypercube word-steps".into(),
            "plain-mesh word-steps".into(),
            "sequential ops".into(),
        ],
    );
    for &n in &[8usize, 16, 32, 64, 96] {
        let w = gen::random_connected(n, 0.25, 30, 7000 + n as u64);
        let d = 0;
        let mut ppa = machine_for(&w, h);
        let out = minimum_cost_path(&mut ppa, &w, d).unwrap();
        let gcn = Gcn::new(h).solve(&w, d);
        let cube = Hypercube::new(h).solve(&w, d);
        let mesh = PlainMesh::new(h).solve(&w, d);
        let seq = SequentialBf::new().solve(&w, d);
        t.row(vec![
            n.to_string(),
            out.iterations.to_string(),
            out.stats.total.total().to_string(),
            gcn.bit_steps.to_string(),
            cube.bit_steps.to_string(),
            cube.word_steps.to_string(),
            mesh.word_steps.to_string(),
            seq.word_steps.to_string(),
        ]);
    }
    t.note("expected shape: PPA ~ GCN flat in n (O(p*h)); hypercube grows with log n;");
    t.note("plain mesh linear in n; sequential quadratic. The paper's equivalence claim");
    t.note("(PPA ~ CM hypercube ~ GCN) holds in O() terms when h tracks log n; in raw");
    t.note("bit-steps the hypercube pays an extra log n factor, the PPA and GCN do not.");
    t
}

/// T5 — simulation validation: PPA vs oracle over every generator family.
pub fn t5_validation() -> Table {
    let mut t = Table::new(
        "T5",
        "validation sweep: PPA output vs sequential oracle (cost vector + PTN walk)",
        vec![
            "family".into(),
            "instances".into(),
            "vertices checked".into(),
            "mismatches".into(),
        ],
    );
    let mut grand_instances = 0u64;
    let mut grand_mismatches = 0u64;
    for family in gen::Family::ALL {
        let mut instances = 0u64;
        let mut vertices = 0u64;
        let mut mismatches = 0u64;
        for seed in 0..16u64 {
            let n = 6 + (seed as usize % 9);
            let w = family.build(n, 20, seed * 31 + 5);
            let d = seed as usize % n;
            let mut ppa = machine_for(&w, 8);
            let out = minimum_cost_path(&mut ppa, &w, d).unwrap();
            let violations = validate::validate_solution(&w, d, &out.sow, &out.ptn);
            instances += 1;
            vertices += n as u64;
            mismatches += violations.len() as u64;
        }
        grand_instances += instances;
        grand_mismatches += mismatches;
        t.row(vec![
            family.label().into(),
            instances.to_string(),
            vertices.to_string(),
            mismatches.to_string(),
        ]);
    }
    t.note(format!(
        "total: {grand_instances} instances, {grand_mismatches} mismatches (paper: \"validated through simulation\")"
    ));
    t
}

/// T6 — simulator throughput: wall-clock per simulated step, for array
/// size and host-thread sweeps.
pub fn t6_engine() -> Table {
    let mut t = Table::new(
        "T6",
        "simulator throughput (host wall-clock; steps are simulated SIMD instructions)",
        vec![
            "n".into(),
            "threads".into(),
            "steps".into(),
            "wall ms".into(),
            "PE-ops/s (millions)".into(),
        ],
    );
    for &n in &[32usize, 64, 128] {
        for &threads in &[1usize, 2, 4] {
            let w = gen::random_connected(n, 0.2, 25, 99);
            let mode = if threads == 1 {
                ExecMode::Sequential
            } else {
                ExecMode::threaded(threads)
            };
            let mut ppa = Ppa::square_with_mode(n, mode).with_word_bits(16.max(fit_word_bits(&w)));
            let start = Instant::now();
            let out = minimum_cost_path(&mut ppa, &w, 0).unwrap();
            let wall = start.elapsed();
            let steps = out.stats.total.total();
            let pe_ops = steps as f64 * (n * n) as f64;
            t.row(vec![
                n.to_string(),
                threads.to_string(),
                steps.to_string(),
                format!("{:.2}", wall.as_secs_f64() * 1e3),
                format!("{:.1}", pe_ops / wall.as_secs_f64() / 1e6),
            ]);
        }
    }
    t.note("simulated step counts are identical across thread counts by construction;");
    t.note("wall-clock scaling depends on host cores (documented in EXPERIMENTS.md).");
    t
}

/// One perf experiment's full output: the human-readable [`Table`] plus
/// the machine-readable [`Baseline`] (grid cells with deterministic step
/// counts/counters and median/MAD wall-clock) that `report` persists as
/// `BENCH_<name>.json` and `report bench --check` gates against.
pub struct BenchRun {
    /// Summary table, rendered like any other experiment.
    pub table: Table,
    /// The measured baseline for this run.
    pub baseline: Baseline,
}

/// BK — execution-backend comparison: the scalar reference backend vs the
/// packed u64 bit-plane backend on the T6 MCP workload (table only; see
/// [`backend_run`] for the baseline-producing form).
pub fn backend_table() -> Table {
    backend_run().table
}

/// Runs the BK workload on five fresh machines from `make`, asserting
/// every run bit-identical to the scalar reference `want` — SOW, PTN,
/// and the per-class step report — **before** any timing is returned.
/// Returns the wall-clock samples (nanoseconds) and the last run's
/// execution statistics.
///
/// This is the bit-identity gate of `report backend` / `report scale`,
/// factored out so the bench-gate mutation drill can prove it trips: a
/// one-bit corruption of the packed vote kernel must make this helper
/// panic, which makes `report bench --check` exit nonzero.
pub fn measure_identical<E: ppa_machine::Executor>(
    make: &dyn Fn() -> Ppa<E>,
    w: &WeightMatrix,
    d: usize,
    want: &ppa_mcp::McpOutput,
    label: &str,
) -> (Vec<u64>, ppa_machine::ExecStats) {
    let mut samples: Vec<u64> = Vec::new();
    let mut stats = ppa_machine::ExecStats::default();
    for _ in 0..5 {
        let mut ppa = make();
        let start = Instant::now();
        let out = minimum_cost_path(&mut ppa, w, d).unwrap();
        samples.push(start.elapsed().as_nanos() as u64);
        stats = ppa.exec_stats();
        assert_eq!(out.sow, want.sow, "{label}: SOW diverged from scalar");
        assert_eq!(out.ptn, want.ptn, "{label}: PTN diverged from scalar");
        assert_eq!(
            out.stats.total, want.stats.total,
            "{label}: step reports diverged from scalar"
        );
    }
    (samples, stats)
}

/// BK — execution-backend comparison: the scalar reference backend vs the
/// packed u64 bit-plane backend on the T6 MCP workload. Both backends run
/// the same micro-op stream; the table asserts they produce identical
/// outputs and identical controller step reports, then compares host
/// wall-clock and shows the packed backend's bus-plan cache and mask
/// arena counters. Every (n, backend) cell also becomes a [`Baseline`]
/// entry: deterministic step count, plan/arena counters, and median/MAD
/// wall-clock over the five repetitions.
pub fn backend_run() -> BenchRun {
    use ppa_machine::{PackedBackend, W256};
    let mut entries: Vec<BaselineEntry> = Vec::new();
    let mut t = Table::new(
        "BK",
        "execution backends, single-destination MCP (T6 workload: random connected, density 0.2, h >= 16)",
        vec![
            "n".into(),
            "backend".into(),
            "steps".into(),
            "wall ms (best of 5)".into(),
            "speedup".into(),
            "plan hit rate".into(),
            "arena fresh".into(),
            "arena reused".into(),
        ],
    );
    for &n in &[16usize, 32, 64] {
        let w = gen::random_connected(n, 0.2, 25, 99);
        let h = 16.max(fit_word_bits(&w)).clamp(2, 62);

        let mut scalar_samples: Vec<u64> = Vec::new();
        let mut scalar_out = None;
        for _ in 0..5 {
            let mut ppa = Ppa::square(n).with_word_bits(h);
            let start = Instant::now();
            let out = minimum_cost_path(&mut ppa, &w, 0).unwrap();
            scalar_samples.push(start.elapsed().as_nanos() as u64);
            scalar_out = Some(out);
        }
        let scalar_out = scalar_out.unwrap();
        let scalar_wall = scalar_samples.iter().min().copied().unwrap() as f64 / 1e9;

        // The fast backends must be observationally identical to the
        // scalar reference: same outputs, same controller step report
        // down to the per-class counts. `measure_identical` asserts
        // that on every repetition before timing is reported.
        let (packed_samples, packed_stats) = measure_identical(
            &|| Ppa::<PackedBackend>::packed(n).with_word_bits(h),
            &w,
            0,
            &scalar_out,
            &format!("n = {n}, packed"),
        );
        let packed_wall = packed_samples.iter().min().copied().unwrap() as f64 / 1e9;

        let (p256_samples, p256_stats) = measure_identical(
            &|| Ppa::<PackedBackend<W256>>::packed_wide(n).with_word_bits(h),
            &w,
            0,
            &scalar_out,
            &format!("n = {n}, packed256"),
        );
        let p256_wall = p256_samples.iter().min().copied().unwrap() as f64 / 1e9;

        entries.push(BaselineEntry {
            cell: format!("n={n}/scalar"),
            steps: scalar_out.stats.total.total(),
            wall: WallStats::from_samples(&scalar_samples),
            counters: std::collections::BTreeMap::new(),
        });
        entries.push(BaselineEntry {
            cell: format!("n={n}/packed"),
            steps: scalar_out.stats.total.total(),
            wall: WallStats::from_samples(&packed_samples),
            counters: [
                ("plan_hits".to_owned(), packed_stats.plan_hits),
                ("plan_misses".to_owned(), packed_stats.plan_misses),
                ("arena_fresh".to_owned(), packed_stats.arena_fresh),
                ("arena_reused".to_owned(), packed_stats.arena_reused),
            ]
            .into_iter()
            .collect(),
        });
        entries.push(BaselineEntry {
            cell: format!("n={n}/packed256"),
            steps: scalar_out.stats.total.total(),
            wall: WallStats::from_samples(&p256_samples),
            counters: [
                ("plan_hits".to_owned(), p256_stats.plan_hits),
                ("plan_misses".to_owned(), p256_stats.plan_misses),
                ("arena_fresh".to_owned(), p256_stats.arena_fresh),
                ("arena_reused".to_owned(), p256_stats.arena_reused),
            ]
            .into_iter()
            .collect(),
        });

        t.row(vec![
            n.to_string(),
            "scalar".into(),
            scalar_out.stats.total.total().to_string(),
            format!("{:.2}", scalar_wall * 1e3),
            "1.00x".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        t.row(vec![
            n.to_string(),
            "packed".into(),
            scalar_out.stats.total.total().to_string(),
            format!("{:.2}", packed_wall * 1e3),
            format!("{:.2}x", scalar_wall / packed_wall),
            format!("{:.1}%", packed_stats.plan_hit_rate() * 100.0),
            packed_stats.arena_fresh.to_string(),
            packed_stats.arena_reused.to_string(),
        ]);
        t.row(vec![
            n.to_string(),
            "packed256".into(),
            scalar_out.stats.total.total().to_string(),
            format!("{:.2}", p256_wall * 1e3),
            format!("{:.2}x", scalar_wall / p256_wall),
            format!("{:.1}%", p256_stats.plan_hit_rate() * 100.0),
            p256_stats.arena_fresh.to_string(),
            p256_stats.arena_reused.to_string(),
        ]);
    }
    t.note("width_bit_identical: true");
    t.note("outputs and per-class step reports are asserted identical before timing is");
    t.note("reported; the packed backend executes mask logic 64 PEs per u64 word");
    t.note("(packed256: 256 PEs per 4-limb SWAR word) and reuses cached bus plans keyed");
    t.note("by (switch-pattern fingerprint, direction, word width). At these array sizes");
    t.note("a row fits one word at either width, so packed256 buys no wall-clock win here");
    t.note("— it pays 4x the limb work per word (see EXPERIMENTS.md).");
    BenchRun {
        table: t,
        baseline: Baseline::new("backend", entries),
    }
}

/// SC — thread-scaling grid: the threaded backend across an n ×
/// thread-count grid, with the packed backend as the single-core
/// baseline. Before any timing is reported, every (n, threads) cell is
/// asserted bit-identical to the scalar reference — outputs, PTN/SOW,
/// and per-class step reports — and the backend's `ppa-obs` metrics
/// counters are reconciled exactly against its execution statistics.
pub fn scale_table() -> Table {
    scale_run().table
}

/// SC — thread-scaling grid with its measured [`Baseline`]: every
/// (n, threads) cell records the deterministic step count, the
/// plan-cache counters, and median/MAD wall-clock over five repetitions
/// (see [`scale_table`] for the full grid semantics).
pub fn scale_run() -> BenchRun {
    use ppa_machine::{PackedBackend, ThreadedBackend, W256};
    use ppa_mcp::McpSession;
    let mut entries: Vec<BaselineEntry> = Vec::new();
    let mut t = Table::new(
        "SC",
        "threaded-backend scaling, single-destination MCP (T6 workload: random connected, density 0.2, h >= 16)",
        vec![
            "n".into(),
            "threads".into(),
            "steps".into(),
            "wall ms (best of 5)".into(),
            "speedup vs packed".into(),
            "plan hit rate".into(),
        ],
    );
    let mut all_identical = true;
    for &n in &[16usize, 32, 64] {
        let w = gen::random_connected(n, 0.2, 25, 99);
        let h = 16.max(fit_word_bits(&w)).clamp(2, 62);

        let mut scalar = Ppa::square(n).with_word_bits(h);
        let want = minimum_cost_path(&mut scalar, &w, 0).unwrap();

        let mut packed_samples: Vec<u64> = Vec::new();
        let mut packed_stats = ppa_machine::ExecStats::default();
        for _ in 0..5 {
            let mut ppa = Ppa::<PackedBackend>::packed(n).with_word_bits(h);
            let start = Instant::now();
            let out = minimum_cost_path(&mut ppa, &w, 0).unwrap();
            packed_samples.push(start.elapsed().as_nanos() as u64);
            packed_stats = ppa.exec_stats();
            assert_eq!(out.sow, want.sow, "n = {n}: packed SOW diverged");
        }
        let packed_wall = packed_samples.iter().min().copied().unwrap() as f64 / 1e9;
        entries.push(BaselineEntry {
            cell: format!("n={n}/packed"),
            steps: want.stats.total.total(),
            wall: WallStats::from_samples(&packed_samples),
            counters: [
                ("plan_hits".to_owned(), packed_stats.plan_hits),
                ("plan_misses".to_owned(), packed_stats.plan_misses),
            ]
            .into_iter()
            .collect(),
        });
        t.row(vec![
            n.to_string(),
            "packed".into(),
            want.stats.total.total().to_string(),
            format!("{:.2}", packed_wall * 1e3),
            "1.00x".into(),
            "-".into(),
        ]);

        for threads in [1usize, 2, 4, 8] {
            let mut samples: Vec<u64> = Vec::new();
            let mut stats = ppa_machine::ExecStats::default();
            for _ in 0..5 {
                let mut ppa = Ppa::<ThreadedBackend>::threaded(n, threads).with_word_bits(h);
                let start = Instant::now();
                let out = minimum_cost_path(&mut ppa, &w, 0).unwrap();
                samples.push(start.elapsed().as_nanos() as u64);
                stats = ppa.exec_stats();
                all_identical &= out.sow == want.sow
                    && out.ptn == want.ptn
                    && out.stats.total == want.stats.total;
                assert_eq!(out.sow, want.sow, "n = {n} x {threads}: SOW diverged");
                assert_eq!(out.ptn, want.ptn, "n = {n} x {threads}: PTN diverged");
                assert_eq!(
                    out.stats.total, want.stats.total,
                    "n = {n} x {threads}: step reports diverged"
                );
            }
            // Reconcile the metrics the session publishes to ppa-obs
            // against the backend's own execution statistics.
            let mut session = McpSession::new_threaded(&w, threads).unwrap();
            session.ppa_mut().enable_metrics();
            let before = session.exec_stats();
            session.solve(0).unwrap();
            let delta = session.exec_stats().since(&before);
            let m = session.ppa_mut().take_metrics();
            assert_eq!(
                m.counter("backend.plan_hits") + m.counter("backend.plan_misses"),
                delta.plan_hits + delta.plan_misses,
                "n = {n} x {threads}: ppa-obs counters diverged from exec stats"
            );
            assert_eq!(
                m.counter("backend.arena_fresh"),
                delta.arena_fresh,
                "n = {n} x {threads}: arena counters diverged from exec stats"
            );
            let wall = samples.iter().min().copied().unwrap() as f64 / 1e9;
            entries.push(BaselineEntry {
                cell: format!("n={n}/threads={threads}"),
                steps: want.stats.total.total(),
                wall: WallStats::from_samples(&samples),
                counters: [
                    ("plan_hits".to_owned(), stats.plan_hits),
                    ("plan_misses".to_owned(), stats.plan_misses),
                ]
                .into_iter()
                .collect(),
            });
            t.row(vec![
                n.to_string(),
                threads.to_string(),
                want.stats.total.total().to_string(),
                format!("{:.2}", wall * 1e3),
                format!("{:.2}x", packed_wall / wall),
                format!("{:.1}%", stats.plan_hit_rate() * 100.0),
            ]);
        }

        // Width axis: the same grid on 256-bit SWAR words, gated by the
        // same bit-identity assertions against the scalar reference.
        let (p256_samples, p256_stats) = measure_identical(
            &|| Ppa::<PackedBackend<W256>>::packed_wide(n).with_word_bits(h),
            &w,
            0,
            &want,
            &format!("n = {n}, packed256"),
        );
        let p256_wall = p256_samples.iter().min().copied().unwrap() as f64 / 1e9;
        entries.push(BaselineEntry {
            cell: format!("n={n}/packed256"),
            steps: want.stats.total.total(),
            wall: WallStats::from_samples(&p256_samples),
            counters: [
                ("plan_hits".to_owned(), p256_stats.plan_hits),
                ("plan_misses".to_owned(), p256_stats.plan_misses),
            ]
            .into_iter()
            .collect(),
        });
        t.row(vec![
            n.to_string(),
            "packed256".into(),
            want.stats.total.total().to_string(),
            format!("{:.2}", p256_wall * 1e3),
            format!("{:.2}x", packed_wall / p256_wall),
            format!("{:.1}%", p256_stats.plan_hit_rate() * 100.0),
        ]);
        for threads in [1usize, 4, 8] {
            let (samples, stats) = measure_identical(
                &|| Ppa::<ThreadedBackend<W256>>::threaded_wide(n, threads).with_word_bits(h),
                &w,
                0,
                &want,
                &format!("n = {n}, threaded256 x{threads}"),
            );
            let wall = samples.iter().min().copied().unwrap() as f64 / 1e9;
            entries.push(BaselineEntry {
                cell: format!("n={n}/threads256={threads}"),
                steps: want.stats.total.total(),
                wall: WallStats::from_samples(&samples),
                counters: [
                    ("plan_hits".to_owned(), stats.plan_hits),
                    ("plan_misses".to_owned(), stats.plan_misses),
                ]
                .into_iter()
                .collect(),
            });
            t.row(vec![
                n.to_string(),
                format!("w256 x{threads}"),
                want.stats.total.total().to_string(),
                format!("{:.2}", wall * 1e3),
                format!("{:.2}x", packed_wall / wall),
                format!("{:.1}%", stats.plan_hit_rate() * 100.0),
            ]);
        }
    }
    t.note(format!("threaded_bit_identical: {all_identical}"));
    t.note("width_bit_identical: true");
    t.note("every cell — both word widths, every thread count — is asserted bit-identical");
    t.note("to the scalar reference (SOW, PTN, per-class step report) before its");
    t.note("wall-clock is reported, and the");
    t.note("backend.* ppa-obs counters are reconciled exactly against the exec stats;");
    t.note("speedup over packed requires multiple host cores — on a single-core host the");
    t.note("rendezvous overhead makes threaded <= packed at every width (see EXPERIMENTS.md).");
    BenchRun {
        table: t,
        baseline: Baseline::new("scale", entries),
    }
}

/// BA — lane-batching amortization (table only; see [`batch_run`] for
/// the baseline-producing form).
pub fn batch_table() -> Table {
    batch_run().table
}

/// BA — lane-batching amortization with its measured [`Baseline`]: one
/// [`BatchSession`](ppa_mcp::BatchSession) solves a wavefront of `L`
/// destinations of the T6 `n = 64` workload in a single micro-op
/// stream, for `L` in {1, 2, 4, 8} on the packed backend. Before any
/// timing is reported, every lane is asserted bit-identical — SOW, PTN,
/// and the per-class step report — to a solo run pinned to the batch's
/// word width (the fair comparison: bit-serial arithmetic costs scale
/// with the word width, which the batch sets to the max over its
/// lanes). The per-destination plan-cache-miss and arena-allocation
/// counters must improve monotonically with the lane count — that is
/// the amortization claim, and it is deterministic, so it is asserted,
/// not just reported.
pub fn batch_run() -> BenchRun {
    use ppa_machine::PackedBackend;
    use ppa_mcp::batch::replicate;
    use ppa_mcp::BatchSession;
    let mut entries: Vec<BaselineEntry> = Vec::new();
    let mut t = Table::new(
        "BA",
        "lane-batching amortization (T6 workload: n = 64, density 0.2, wavefront of L destinations per stream)",
        vec![
            "n".into(),
            "lanes".into(),
            "backend".into(),
            "steps".into(),
            "wall ms (best of 5)".into(),
            "wall/dest ms".into(),
            "plan misses/dest".into(),
            "arena fresh/dest".into(),
            "plan hit rate".into(),
        ],
    );
    let n = 64usize;
    let threads = 2usize;
    let w = gen::random_connected(n, 0.2, 25, 99);
    let mut all_identical = true;
    let mut prev_misses_per_dest = f64::INFINITY;
    let mut prev_fresh_per_dest = f64::INFINITY;
    for &lanes in &[1usize, 2, 4, 8] {
        let graphs = replicate(&w, lanes);
        let dests: Vec<usize> = (0..lanes).collect();

        let mut samples: Vec<u64> = Vec::new();
        let mut stats = ppa_machine::ExecStats::default();
        let mut word_bits = 0u32;
        let mut wave = Vec::new();
        for _ in 0..5 {
            let mut batch = BatchSession::new_packed(&graphs).unwrap();
            let start = Instant::now();
            let solved = batch.solve(&dests).unwrap();
            samples.push(start.elapsed().as_nanos() as u64);
            stats = batch.exec_stats();
            word_bits = batch.word_bits();
            wave = solved
                .into_iter()
                .map(|r| r.expect("every lane of the wavefront must converge"))
                .collect();
        }
        // Bit-identity gate: every lane vs a solo run at the batch's
        // word width, down to the per-class step report.
        for (l, &d) in dests.iter().enumerate() {
            let solo = Ppa::<PackedBackend>::packed(n).with_word_bits(word_bits);
            let want = ppa_mcp::McpSession::from_ppa(solo, &w)
                .and_then(|mut s| s.solve(d))
                .unwrap();
            let got = &wave[l];
            all_identical &=
                got.sow == want.sow && got.ptn == want.ptn && got.stats.total == want.stats.total;
            assert_eq!(got.sow, want.sow, "lanes = {lanes}, dest {d}: SOW diverged");
            assert_eq!(got.ptn, want.ptn, "lanes = {lanes}, dest {d}: PTN diverged");
            assert_eq!(
                got.stats.total, want.stats.total,
                "lanes = {lanes}, dest {d}: step reports diverged"
            );
        }
        let steps = wave[0].stats.total.total();
        let wall = samples.iter().min().copied().unwrap() as f64 / 1e9;
        let misses_per_dest = stats.plan_misses as f64 / lanes as f64;
        let fresh_per_dest = stats.arena_fresh as f64 / lanes as f64;
        // The amortization claim, asserted on the deterministic
        // counters: one stream serving L destinations must not pay more
        // plan compiles or arena allocations per destination than a
        // narrower stream serving fewer.
        assert!(
            misses_per_dest <= prev_misses_per_dest,
            "lanes = {lanes}: plan misses/dest regressed \
             ({misses_per_dest:.1} > {prev_misses_per_dest:.1})"
        );
        assert!(
            fresh_per_dest <= prev_fresh_per_dest,
            "lanes = {lanes}: arena fresh/dest regressed \
             ({fresh_per_dest:.1} > {prev_fresh_per_dest:.1})"
        );
        prev_misses_per_dest = misses_per_dest;
        prev_fresh_per_dest = fresh_per_dest;
        entries.push(BaselineEntry {
            cell: format!("n={n}/lanes={lanes}/packed"),
            steps,
            wall: WallStats::from_samples(&samples),
            counters: [
                ("plan_hits".to_owned(), stats.plan_hits),
                ("plan_misses".to_owned(), stats.plan_misses),
                ("arena_fresh".to_owned(), stats.arena_fresh),
                ("arena_reused".to_owned(), stats.arena_reused),
            ]
            .into_iter()
            .collect(),
        });
        t.row(vec![
            n.to_string(),
            lanes.to_string(),
            "packed".into(),
            steps.to_string(),
            format!("{:.2}", wall * 1e3),
            format!("{:.2}", wall * 1e3 / lanes as f64),
            format!("{misses_per_dest:.1}"),
            format!("{fresh_per_dest:.1}"),
            format!("{:.1}%", stats.plan_hit_rate() * 100.0),
        ]);

        // The threaded backend pays a fixed per-step rendezvous, so a
        // wider machine amortizes it across lanes: this is where
        // wall/dest visibly falls with the lane count even on one core.
        let mut thr_samples: Vec<u64> = Vec::new();
        let mut thr_stats = ppa_machine::ExecStats::default();
        let mut thr_wave = Vec::new();
        for _ in 0..5 {
            let mut batch = BatchSession::new_threaded(&graphs, threads).unwrap();
            let start = Instant::now();
            let solved = batch.solve(&dests).unwrap();
            thr_samples.push(start.elapsed().as_nanos() as u64);
            thr_stats = batch.exec_stats();
            thr_wave = solved
                .into_iter()
                .map(|r| r.expect("every lane of the wavefront must converge"))
                .collect();
        }
        for (l, &d) in dests.iter().enumerate() {
            let (got, want) = (&thr_wave[l], &wave[l]);
            all_identical &=
                got.sow == want.sow && got.ptn == want.ptn && got.stats.total == want.stats.total;
            assert_eq!(
                got.sow, want.sow,
                "lanes = {lanes}, dest {d}: threaded SOW diverged from packed"
            );
            assert_eq!(
                got.ptn, want.ptn,
                "lanes = {lanes}, dest {d}: threaded PTN diverged from packed"
            );
            assert_eq!(
                got.stats.total, want.stats.total,
                "lanes = {lanes}, dest {d}: threaded step report diverged from packed"
            );
        }
        let thr_wall = thr_samples.iter().min().copied().unwrap() as f64 / 1e9;
        entries.push(BaselineEntry {
            cell: format!("n={n}/lanes={lanes}/threads={threads}"),
            steps,
            wall: WallStats::from_samples(&thr_samples),
            counters: [
                ("plan_hits".to_owned(), thr_stats.plan_hits),
                ("plan_misses".to_owned(), thr_stats.plan_misses),
            ]
            .into_iter()
            .collect(),
        });
        t.row(vec![
            n.to_string(),
            lanes.to_string(),
            format!("threaded x{threads}"),
            steps.to_string(),
            format!("{:.2}", thr_wall * 1e3),
            format!("{:.2}", thr_wall * 1e3 / lanes as f64),
            format!("{:.1}", thr_stats.plan_misses as f64 / lanes as f64),
            "-".into(),
            format!("{:.1}%", thr_stats.plan_hit_rate() * 100.0),
        ]);
    }
    t.note(format!("batched_bit_identical: {all_identical}"));
    t.note("every lane is asserted bit-identical to a solo run pinned to the batch's");
    t.note("word width (SOW, PTN, per-class step report) before timing is reported, and");
    t.note("plan misses/dest and arena fresh/dest are asserted monotonically non-");
    t.note("increasing in the lane count. Amortization comes from sharing one micro-op");
    t.note("stream across lanes, not host parallelism: on the packed backend each step's");
    t.note("host cost grows with machine width, so wall/dest stays roughly flat (single");
    t.note("core); the threaded rows amortize the fixed per-step rendezvous, so their");
    t.note("wall/dest falls with the lane count even on a single-core host.");
    BenchRun {
        table: t,
        baseline: Baseline::new("batch", entries),
    }
}

/// A1 — bus-model ablation: circular vs linear buses.
pub fn a1_bus_ablation() -> Table {
    let mut t = Table::new(
        "A1",
        "ablation: circular (paper model) vs linear buses (ring workload, h = 12)",
        vec![
            "n".into(),
            "circular steps/iter".into(),
            "linear steps/iter".into(),
            "overhead".into(),
        ],
    );
    for &n in &[8usize, 16, 32] {
        let w = gen::ring(n);
        let mut a = machine_for(&w, 12);
        let circ = minimum_cost_path_variant(&mut a, &w, 0, VariantConfig::reference()).unwrap();
        let mut b = machine_for(&w, 12);
        let lin = minimum_cost_path_variant(
            &mut b,
            &w,
            0,
            VariantConfig {
                bus: BusModel::Linear,
                min: MinModel::BitSerial,
            },
        )
        .unwrap();
        assert_eq!(circ.sow, lin.sow, "ablation must not change results");
        t.row(vec![
            n.to_string(),
            format!("{:.1}", circ.stats.steps_per_iteration()),
            format!("{:.1}", lin.stats.steps_per_iteration()),
            format!(
                "{:+.1}%",
                (lin.stats.steps_per_iteration() / circ.stats.steps_per_iteration() - 1.0) * 100.0
            ),
        ]);
    }
    t.note("linear buses need a second pass plus a merge for every fold-style broadcast;");
    t.note("results are bit-identical — only the constant factor moves.");
    t
}

/// A2 — combining-model ablation: bit-serial vs word-parallel min.
pub fn a2_min_ablation() -> Table {
    let mut t = Table::new(
        "A2",
        "ablation: bit-serial min (PPA hardware) vs hypothetical word-combining bus (ring n = 12)",
        vec![
            "h".into(),
            "bit-serial steps/iter".into(),
            "word steps/iter".into(),
            "bit-serial share of total".into(),
        ],
    );
    let w = gen::ring(12);
    for &h in &[8u32, 16, 32] {
        let mut a = Ppa::square(12).with_word_bits(h);
        let bit = minimum_cost_path_variant(&mut a, &w, 0, VariantConfig::reference()).unwrap();
        let mut b = Ppa::square(12).with_word_bits(h);
        let word = minimum_cost_path_variant(
            &mut b,
            &w,
            0,
            VariantConfig {
                bus: BusModel::Circular,
                min: MinModel::Word,
            },
        )
        .unwrap();
        assert_eq!(bit.sow, word.sow, "ablation must not change results");
        let share = 1.0 - word.stats.steps_per_iteration() / bit.stats.steps_per_iteration();
        t.row(vec![
            h.to_string(),
            format!("{:.1}", bit.stats.steps_per_iteration()),
            format!("{:.1}", word.stats.steps_per_iteration()),
            format!("{:.0}%", share * 100.0),
        ]);
    }
    t.note("the two bit-serial scans dominate the iteration; a word-combining bus (as the");
    t.note("paper's O(p log h) headline would need) removes the h-dependence entirely.");
    t
}

/// T7 — the algorithm family on one machine: how the semiring and the
/// specialization change the step profile (extension beyond the paper).
pub fn t7_family() -> Table {
    use ppa_mcp::closure::{hop_levels, reachability};
    use ppa_mcp::widest::widest_path;
    let mut t = Table::new(
        "T7",
        "one machine, four problems: step profile of the DP family (ring workload, h = 16)",
        vec![
            "problem".into(),
            "semiring / trick".into(),
            "n".into(),
            "iterations".into(),
            "total steps".into(),
            "steps/iteration".into(),
        ],
    );
    for &n in &[8usize, 16] {
        let w = gen::ring(n);
        let mut ppa = Ppa::square(n).with_word_bits(16);
        let mcp = minimum_cost_path(&mut ppa, &w, 0).unwrap();
        t.row(vec![
            "shortest cost".into(),
            "(min, +), bit-serial".into(),
            n.to_string(),
            mcp.iterations.to_string(),
            mcp.stats.total.total().to_string(),
            format!("{:.1}", mcp.stats.steps_per_iteration()),
        ]);
        let mut ppa = Ppa::square(n).with_word_bits(16);
        let wide = widest_path(&mut ppa, &w, 0).unwrap();
        t.row(vec![
            "widest bottleneck".into(),
            "(max, min), bit-serial".into(),
            n.to_string(),
            wide.iterations.to_string(),
            wide.stats.total.total().to_string(),
            format!("{:.1}", wide.stats.steps_per_iteration()),
        ]);
        let mut ppa = Ppa::square(n).with_word_bits(16);
        let hops = hop_levels(&mut ppa, &w, 0).unwrap();
        t.row(vec![
            "hop levels (BFS)".into(),
            "boolean, round = level".into(),
            n.to_string(),
            "-".into(),
            hops.steps.to_string(),
            "-".into(),
        ]);
        let mut ppa = Ppa::square(n).with_word_bits(16);
        let reach = reachability(&mut ppa, &w, 0).unwrap();
        t.row(vec![
            "reachability".into(),
            "(OR, AND), wired-OR".into(),
            n.to_string(),
            reach.iterations.to_string(),
            reach.steps.to_string(),
            format!("{:.1}", reach.steps as f64 / reach.iterations as f64),
        ]);
    }
    t.note("the two weighted problems share the O(p*h) bit-serial schedule; the two");
    t.note("boolean specializations drop to O(p) because the wired-OR combines in one step.");
    t
}

/// T8 — fault-injection sweep: observable impact of every single
/// stuck-at switch fault on the algorithm's three bus patterns, plus
/// BIST coverage (extension beyond the paper: the paper argues hardware
/// implementability, so the harness asks what its failures look like).
pub fn t8_faults() -> Table {
    use ppa_machine::faults::{bist_patterns, FaultMap, SwitchFault};
    use ppa_machine::{bus, Coord};
    let n = 8;
    let dim = Dim::square(n);
    let d = 2;
    let patterns: Vec<(&str, Direction, Plane<bool>)> = vec![
        (
            "stmt 10 (ROW==d)",
            Direction::South,
            Plane::from_fn(dim, |c| c.row == d),
        ),
        (
            "stmt 11 (COL==n-1)",
            Direction::West,
            Plane::from_fn(dim, |c| c.col == dim.cols - 1),
        ),
        (
            "stmt 16 (ROW==COL)",
            Direction::South,
            Plane::from_fn(dim, |c| c.row == c.col),
        ),
    ];
    let bist = bist_patterns(dim);
    let mut t = Table::new(
        "T8",
        "single stuck-at switch faults: observable corruption per bus pattern (8x8, all 128 faults)",
        vec![
            "pattern".into(),
            "faults distorting it".into(),
            "-> wrong reads".into(),
            "-> undriven line".into(),
            "silent".into(),
            "missed by BIST".into(),
        ],
    );
    for (name, dir, intended) in &patterns {
        let src = Plane::from_fn(dim, |c| (c.row * n + c.col) as i64);
        let healthy = bus::broadcast(ExecMode::Sequential, dim, &src, *dir, intended).unwrap();
        let mut distorting = 0u32;
        let mut wrong = 0u32;
        let mut undriven = 0u32;
        let mut silent = 0u32;
        let mut missed = 0u32;
        for r in 0..n {
            for c in 0..n {
                for fault in [SwitchFault::StuckShort, SwitchFault::StuckOpen] {
                    let mut fm = FaultMap::new();
                    fm.inject(Coord::new(r, c), fault);
                    if !fm.distorts(intended) {
                        continue;
                    }
                    distorting += 1;
                    if !bist.iter().any(|p| fm.distorts(p)) {
                        missed += 1;
                    }
                    let effective = fm.apply(intended);
                    match bus::broadcast(ExecMode::Sequential, dim, &src, *dir, &effective) {
                        Err(_) => undriven += 1,
                        Ok(out) => {
                            if out != healthy {
                                wrong += 1;
                            } else {
                                silent += 1;
                            }
                        }
                    }
                }
            }
        }
        t.row(vec![
            (*name).into(),
            distorting.to_string(),
            wrong.to_string(),
            undriven.to_string(),
            silent.to_string(),
            missed.to_string(),
        ]);
    }
    t.note("every distorting fault either corrupts reads or floats a line (never silent on");
    t.note("these patterns), and the two-pattern BIST sweep catches all of them up front.");
    t
}

/// T9 — per-statement step attribution: where the `O(p * h)` actually
/// goes, from an instruction trace of one full run.
pub fn t9_phase_profile() -> Table {
    let w = gen::ring(10);
    let h = 16;
    let mut ppa = Ppa::square(10).with_word_bits(h);
    ppa.enable_trace();
    let out = minimum_cost_path(&mut ppa, &w, 0).unwrap();
    let trace = ppa.take_trace();
    let hist = ppa_machine::controller::phase_histogram(&trace);
    let total: u64 = hist.iter().map(|(_, n)| n).sum();
    let mut t = Table::new(
        "T9",
        format!(
            "per-statement step attribution (ring n = 10, h = {h}, {} iterations, {} steps)",
            out.iterations, total
        ),
        vec![
            "phase".into(),
            "steps".into(),
            "share".into(),
            "steps/iteration".into(),
        ],
    );
    for (label, steps) in &hist {
        let per_iter = if label.starts_with("stmt") {
            format!("{:.1}", *steps as f64 / out.iterations as f64)
        } else {
            "-".into()
        };
        t.row(vec![
            label.clone(),
            steps.to_string(),
            format!("{:.1}%", *steps as f64 / total as f64 * 100.0),
            per_iter,
        ]);
    }
    t.note("statements 11 and 12 (the two bit-serial scans) dominate — the O(h) factor");
    t.note("in the flesh; every other statement is O(1) per iteration.");
    t
}

/// Everything the `profile` experiment produces: the summary [`Table`]
/// plus the machine-readable artifacts the `report` binary writes next to
/// it (`profile.trace.json`, `profile.json`).
pub struct ProfileRun {
    /// Summary table, rendered like any other experiment.
    pub table: Table,
    /// Chrome `trace_event` document (Perfetto / `chrome://tracing`
    /// loadable; timestamps are controller step indices).
    pub chrome_trace: ppa_obs::Json,
    /// Metrics snapshot of the observed run.
    pub metrics: ppa_obs::Metrics,
    /// Step totals of the same run — `metrics` must reconcile with this
    /// exactly (asserted by the integration tests).
    pub report: StepReport,
    /// Host wall-clock engine profile of the run.
    pub engine: Option<ppa_obs::EngineProfile>,
    /// Micro-op-class wall-clock attribution of the run; rendered as
    /// `profile.folded.txt` (inferno folded-stack lines) by `report`.
    pub micro: ppa_obs::MicroProfile,
}

/// The `profile` experiment (supersedes the text-only T9 attribution):
/// one MCP run with every observer attached — hierarchical trace spans
/// (`mcp > iteration[i] > <statement> > bit[j]`), the metrics registry,
/// and engine wall-clock profiling.
pub fn profile_run() -> ProfileRun {
    let n = 10usize;
    let h = 16u32;
    let w = gen::ring(n);
    let mut ppa = Ppa::square(n).with_word_bits(h);
    let chrome = ppa_obs::ChromeTraceSink::new();
    ppa.install_sink(chrome.clone());
    ppa.enable_metrics();
    ppa.enable_micro_profile();
    ppa_machine::engine::enable_profiling();
    let out = minimum_cost_path(&mut ppa, &w, 0).expect("profile workload solves");
    let engine = ppa_machine::engine::take_profile();
    let _ = ppa.take_sink();
    // Take the micro profile *before* the metrics snapshot so its
    // exec.<backend>.<class>.{ns,count} counters fold into the registry.
    let micro = ppa.take_micro_profile();
    let metrics = ppa.take_metrics();
    let report = out.stats.total;
    let chrome_trace = chrome.finish(report.total());

    let mut t = Table::new(
        "profile",
        format!(
            "fully observed MCP run (ring n = {n}, h = {h}, {} iterations, {} steps): \
             counters vs controller report",
            out.iterations,
            report.total()
        ),
        vec!["metric".into(), "value".into(), "controller report".into()],
    );
    for op in Op::ALL {
        t.row(vec![
            op.metric_name().into(),
            metrics.counter(op.metric_name()).to_string(),
            report.count(op).to_string(),
        ]);
    }
    t.row(vec![
        "steps.total".into(),
        metrics.counter("steps.total").to_string(),
        report.total().to_string(),
    ]);
    t.row(vec![
        "mcp.iterations".into(),
        metrics.counter("mcp.iterations").to_string(),
        out.iterations.to_string(),
    ]);
    for counter in [
        "bus.transactions",
        "bus.clusters",
        "mask.writes",
        "mask.active_pes",
    ] {
        t.row(vec![
            counter.into(),
            metrics.counter(counter).to_string(),
            "-".into(),
        ]);
    }
    if let Some(hist) = metrics.histogram("mcp.steps_per_iteration") {
        t.row(vec![
            "mcp.steps_per_iteration (mean)".into(),
            format!("{:.1}", hist.mean()),
            format!("{:.1}", out.stats.steps_per_iteration()),
        ]);
    }
    for (class, wall) in micro.classes() {
        t.row(vec![
            format!("exec.{}.{class}.ns", micro.backend()),
            wall.nanos.to_string(),
            format!("count {} (= steps.{class})", wall.count),
        ]);
    }
    if let Some(p) = &engine {
        t.note(format!(
            "engine wall-clock: {} build + {} reduce calls, {:.2} ms sequential, {:.2} ms threaded",
            p.build_calls,
            p.reduce_calls,
            p.sequential_nanos as f64 / 1e6,
            p.threaded_nanos as f64 / 1e6,
        ));
    }
    t.note(format!(
        "micro-op attribution ({} backend): {} timed instructions, {:.2} ms attributed; \
         folded-stack artifact profile.folded.txt (inferno format: `backend;class nanos`)",
        micro.backend(),
        micro.total().count,
        micro.total().nanos as f64 / 1e6,
    ));
    t.note("artifacts: profile.trace.json (Chrome trace_event, load in Perfetto; ts = step");
    t.note("index) and profile.json (metrics snapshot). Every `steps.*` counter must equal");
    t.note("the controller report column exactly — the integration tests assert it.");

    ProfileRun {
        table: t,
        chrome_trace,
        metrics,
        report,
        engine,
        micro,
    }
}

/// The `faults` experiment: a seeded fault-tolerance campaign over a
/// fault-count × array-size grid.
///
/// Each trial attaches a reproducible random [`FaultMap`] to a live
/// machine, runs the recovering solver
/// ([`RecoveryPolicy::Degrade`]), and classifies the trial:
///
/// * **recovered** — the solver returned a result and the host verified
///   it against the sequential reference (on the full graph, or on the
///   induced healthy subgraph when degradation excluded vertices);
/// * **reported** — the solver returned a typed error
///   (`McpError::FaultyArray`, or the corruption error itself);
/// * **silent-wrong** — the solver returned a result the reference
///   refutes. This row must never appear; the integration tests assert
///   its absence.
///
/// Recovery overhead is reported twice — from the solver's own
/// [`ppa_mcp::RecoveryStats`] and from the `recovery.overhead_steps`
/// metrics counter — so the two accounting paths can be reconciled row
/// by row.
pub fn faults_campaign(seed: u64) -> Table {
    let mut t = Table::new(
        "faults",
        format!(
            "fault-tolerance campaign (seed {seed}): seeded stuck-at maps on live machines, \
             RecoveryPolicy::Degrade, verified against the sequential reference"
        ),
        vec![
            "n".into(),
            "faults".into(),
            "trial".into(),
            "outcome".into(),
            "located".into(),
            "excluded".into(),
            "self-tests".into(),
            "overhead steps".into(),
            "metrics overhead".into(),
            "healthy steps".into(),
        ],
    );
    let mut trials = 0u32;
    let mut recovered = 0u32;
    let mut reported = 0u32;
    let mut silent_wrong = 0u32;
    let mut detected_trials = 0u32;
    let mut corrupt_trials = 0u32;
    for &n in &[4usize, 6, 8] {
        for &k in &[1usize, 2, 4] {
            for trial in 0..3u64 {
                let trial_seed = seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add((n * 100 + k * 10) as u64 + trial);
                let w = gen::random_connected(n, 0.5, 9, trial_seed);
                let d = (trial as usize) % n;
                // Healthy baseline for the overhead comparison.
                let mut healthy_ppa = machine_for(&w, 10);
                let healthy_steps = minimum_cost_path(&mut healthy_ppa, &w, d)
                    .expect("healthy baseline solves")
                    .stats
                    .total
                    .total();

                let mut ppa = machine_for(&w, 10);
                ppa.enable_metrics();
                let fm = FaultMap::random(ppa.dim(), k, trial_seed ^ 0x5eed);
                ppa.machine_mut().attach_faults(fm);
                let result = solve_with_recovery(
                    &mut ppa,
                    &w,
                    d,
                    RecoveryPolicy::Degrade { max_retries: 2 },
                );
                let metrics = ppa.take_metrics();
                let metrics_overhead = metrics.counter("recovery.overhead_steps");
                trials += 1;
                if metrics.counter("recovery.self_tests") > 0 {
                    corrupt_trials += 1;
                    if metrics.counter("faults.detected") > 0 {
                        detected_trials += 1;
                    }
                }
                let (outcome, located, excluded, self_tests, overhead) = match &result {
                    Ok(r) => {
                        let valid = if r.recovery.excluded.is_empty() {
                            validate::is_valid_solution(&w, d, &r.output.sow, &r.output.ptn)
                        } else {
                            degraded_matches_reference(&w, d, r)
                        };
                        if valid {
                            recovered += 1;
                        } else {
                            silent_wrong += 1;
                        }
                        (
                            if valid { "recovered" } else { "silent-wrong" },
                            r.recovery.located.len() as u64,
                            r.recovery.excluded.len() as u64,
                            r.recovery.self_tests as u64,
                            r.recovery.overhead.total(),
                        )
                    }
                    Err(_) => {
                        reported += 1;
                        (
                            "reported",
                            metrics.counter("faults.detected"),
                            0,
                            metrics.counter("recovery.self_tests"),
                            metrics_overhead,
                        )
                    }
                };
                t.row(vec![
                    n.to_string(),
                    k.to_string(),
                    trial.to_string(),
                    outcome.into(),
                    located.to_string(),
                    excluded.to_string(),
                    self_tests.to_string(),
                    overhead.to_string(),
                    metrics_overhead.to_string(),
                    healthy_steps.to_string(),
                ]);
            }
        }
    }
    t.note(format!(
        "{trials} trials: {recovered} recovered, {reported} reported, {silent_wrong} silent-wrong \
         (recovery rate {:.0}%)",
        recovered as f64 / trials as f64 * 100.0
    ));
    t.note(format!(
        "corruption surfaced in {corrupt_trials} trials; BIST localized faults in {detected_trials} \
         of them (detection rate {:.0}%)",
        if corrupt_trials == 0 {
            100.0
        } else {
            detected_trials as f64 / corrupt_trials as f64 * 100.0
        }
    ));
    t.note("overhead = failed solve attempts + self-test sweeps, in controller steps; the");
    t.note("'metrics overhead' column is the ppa-obs counter and must equal it row by row.");
    t
}

/// SRV — the serving stress campaign: a seeded job mix (shortest /
/// widest / all-pairs / chaos) across a deadline grid, step-budget grid,
/// injected transient faults, and forced worker panics, pushed through a
/// [`ppa_serve::SolveService`] pool.
///
/// Each scenario row reports throughput, p50/p99 latency (from the
/// `serve.latency_us` histogram's [`quantile_bound`]
/// [`ppa_obs::Histogram::quantile_bound`]), and the failure-class counts
/// — and every count is **reconciled 1:1** against what the client
/// observed on its tickets (`reconciled` column). Completed results are
/// re-verified against the host-side references, so the summary notes
/// carry the two invariants CI greps for: `lost_jobs: 0` (every accepted
/// job produced exactly one report) and `silent_wrong: 0` (no completed
/// job returned a refutable answer). A final kill+resume drill interrupts
/// an all-pairs campaign with a step budget, tears the service down, and
/// resumes the checkpoint on a fresh pool — the resumed document must be
/// byte-identical to an uninterrupted run (`resume_byte_identical`).
pub fn serve_campaign(seed: u64) -> Table {
    serve_run(seed).table
}

/// Everything the `serve` experiment produces: the campaign [`Table`],
/// the measured [`Baseline`] (per-scenario wall-clock with the
/// deterministic job count as the step dimension), and a JSON document
/// of per-scenario [`ppa_serve::Introspection`] snapshots taken on the
/// idle-but-live service after every ticket reported — each snapshot is
/// round-trip-verified and reconciled 1:1 against the client tallies
/// (the `introspect_reconciled` note CI greps for).
pub struct ServeRun {
    /// Campaign summary table.
    pub table: Table,
    /// Per-scenario wall-clock baseline.
    pub baseline: Baseline,
    /// `{campaign_seed, scenarios: [{scenario, snapshot}, ...]}`.
    pub introspection: ppa_obs::Json,
}

/// The serving stress campaign with baseline and introspection artifacts
/// (see [`serve_campaign`] for the campaign semantics).
pub fn serve_run(seed: u64) -> ServeRun {
    use ppa_obs::Json;
    use ppa_serve::{
        ApspCheckpoint, Introspection, JobKind, JobOutcome, JobSpec, JobTicket, RetryPolicy,
        ServeConfig, ServeError, SolveService,
    };
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::time::Duration;

    struct Scenario {
        name: &'static str,
        jobs: usize,
        chaos_pct: u32,
        fault_pct: u32,
        fault_p: f64,
        deadlines: Vec<Option<Duration>>,
        budgets: Vec<Option<u64>>,
    }
    let scenarios = [
        Scenario {
            name: "clean mix",
            jobs: 30,
            chaos_pct: 0,
            fault_pct: 0,
            fault_p: 0.0,
            deadlines: vec![None],
            budgets: vec![None],
        },
        Scenario {
            name: "deadline grid",
            jobs: 30,
            chaos_pct: 0,
            fault_pct: 0,
            fault_p: 0.0,
            deadlines: vec![
                None,
                Some(Duration::from_millis(5)),
                Some(Duration::from_micros(250)),
            ],
            budgets: vec![None],
        },
        Scenario {
            name: "injected faults",
            jobs: 30,
            chaos_pct: 0,
            fault_pct: 50,
            fault_p: 0.01,
            deadlines: vec![None],
            budgets: vec![None],
        },
        Scenario {
            name: "forced panics",
            jobs: 30,
            chaos_pct: 20,
            fault_pct: 0,
            fault_p: 0.0,
            deadlines: vec![None],
            budgets: vec![None],
        },
        Scenario {
            name: "combined stress",
            jobs: 40,
            chaos_pct: 10,
            fault_pct: 30,
            fault_p: 0.01,
            deadlines: vec![
                None,
                Some(Duration::from_millis(2)),
                Some(Duration::from_micros(250)),
            ],
            budgets: vec![None, Some(150), Some(100_000)],
        },
    ];

    let mut t = Table::new(
        "serve",
        format!(
            "serving stress campaign (seed {seed}): 4 workers, queue 12, job mix x deadline grid \
             x step budgets x transient faults x chaos panics; counts reconciled against serve.* metrics"
        ),
        vec![
            "scenario".into(),
            "jobs".into(),
            "accepted".into(),
            "rejected".into(),
            "completed".into(),
            "failed".into(),
            "deadline miss".into(),
            "budget out".into(),
            "panics".into(),
            "retries".into(),
            "p50 us".into(),
            "p99 us".into(),
            "jobs/s".into(),
            "reconciled".into(),
        ],
    );

    let graphs: Vec<WeightMatrix> = (0..3)
        .map(|i| {
            gen::random_connected(
                5 + 2 * i,
                0.45,
                9,
                seed.wrapping_mul(13).wrapping_add(i as u64),
            )
        })
        .collect();
    let root_cause = |e: &ServeError| -> ServeError {
        match e {
            ServeError::Interrupted { cause, .. } => (**cause).clone(),
            other => other.clone(),
        }
    };

    let mut lost_jobs = 0u64;
    let mut silent_wrong = 0u64;
    let mut introspect_ok = true;
    let mut snapshots: Vec<Json> = Vec::new();
    let mut entries: Vec<BaselineEntry> = Vec::new();
    for (si, sc) in scenarios.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(1_000_003).wrapping_add(si as u64));
        let svc = SolveService::start(ServeConfig {
            workers: 4,
            queue_capacity: 12,
            retry: RetryPolicy {
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_micros(400),
                ..RetryPolicy::default()
            },
            seed: seed ^ si as u64,
            ..ServeConfig::default()
        });
        let start = Instant::now();
        let mut pending: Vec<(JobSpec, JobTicket)> = Vec::new();
        let mut rejected = 0u64;
        for j in 0..sc.jobs {
            let g = graphs[rng.gen_range(0..graphs.len())].clone();
            let n = g.n();
            let kind = if rng.gen_range(0..100u32) < sc.chaos_pct {
                JobKind::Chaos
            } else {
                match rng.gen_range(0..10) {
                    0 | 1 => JobKind::Widest {
                        dest: rng.gen_range(0..n),
                    },
                    2 => JobKind::Apsp {
                        resume_from: None,
                        checkpoint_every: 2,
                    },
                    _ => JobKind::Shortest {
                        dest: rng.gen_range(0..n),
                    },
                }
            };
            let mut spec = JobSpec::new(g, kind);
            spec.deadline = sc.deadlines[j % sc.deadlines.len()];
            spec.step_budget = sc.budgets[j % sc.budgets.len()];
            if rng.gen_range(0..100u32) < sc.fault_pct {
                spec.transient_faults = Some((sc.fault_p, seed.wrapping_add(j as u64)));
            }
            // Backpressure is part of the experiment: count every
            // rejection, back off briefly, and shed the job after a few
            // refusals (a well-behaved client under load-shedding).
            let mut submitted = false;
            for _ in 0..8 {
                match svc.submit(spec.clone()) {
                    Ok(ticket) => {
                        pending.push((spec.clone(), ticket));
                        submitted = true;
                        break;
                    }
                    Err(ServeError::Rejected { .. }) => {
                        rejected += 1;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(other) => panic!("unexpected submit failure: {other}"),
                }
            }
            let _ = submitted;
        }
        let accepted = pending.len() as u64;

        let (mut completed, mut failed) = (0u64, 0u64);
        let (mut dl_miss, mut budget_out, mut panics, mut retries) = (0u64, 0u64, 0u64, 0u64);
        let mut reports = 0u64;
        for (spec, ticket) in pending {
            let report = ticket.wait();
            reports += 1;
            retries += u64::from(report.attempts.saturating_sub(1));
            match &report.outcome {
                Ok(out) => {
                    completed += 1;
                    if !serve_outcome_is_correct(&spec, out) {
                        silent_wrong += 1;
                    }
                }
                Err(e) => {
                    failed += 1;
                    match root_cause(e) {
                        ServeError::DeadlineExceeded
                        | ServeError::DeadlineExpiredInQueue { .. } => dl_miss += 1,
                        ServeError::StepBudgetExhausted { .. } => budget_out += 1,
                        ServeError::WorkerPanicked { .. } => panics += 1,
                        _ => {}
                    }
                }
            }
        }
        lost_jobs += accepted - reports;
        let wall = start.elapsed();

        // Introspect the still-live (now idle) service: every client
        // tally must reconcile 1:1 with the snapshot's counters, the
        // pool must be visibly quiescent, and the snapshot must survive
        // an exact JSON round trip.
        let snap = svc.introspect();
        let snap_doc = snap.to_json();
        let round_trips = Introspection::from_json(&snap_doc)
            .map(|back| {
                back == snap && back.to_json().to_string_compact() == snap_doc.to_string_compact()
            })
            .unwrap_or(false);
        let snap_ok = round_trips
            && snap.queue_depth == 0
            && snap.inflight.is_empty()
            && snap.metrics.counter("serve.accepted") == accepted
            && snap.metrics.counter("serve.rejected_queue_full") == rejected
            && snap.metrics.counter("serve.completed") == completed
            && snap.metrics.counter("serve.failed") == failed
            && snap.metrics.counter("serve.deadline_exceeded") == dl_miss
            && snap.metrics.counter("serve.budget_exhausted") == budget_out
            && snap.metrics.counter("serve.worker_panics") == panics
            && snap.metrics.counter("serve.retries") == retries
            && snap.retries == retries;
        introspect_ok &= snap_ok;
        snapshots.push(Json::obj(vec![
            ("scenario", Json::Str(sc.name.to_owned())),
            ("reconciled", Json::Bool(snap_ok)),
            ("snapshot", snap_doc),
        ]));
        entries.push(BaselineEntry {
            cell: sc.name.to_owned(),
            steps: sc.jobs as u64,
            wall: WallStats::from_samples(&[wall.as_nanos() as u64]),
            counters: std::collections::BTreeMap::new(),
        });
        let metrics = svc.shutdown();

        let reconciled = metrics.counter("serve.accepted") == accepted
            && metrics.counter("serve.rejected_queue_full") == rejected
            && metrics.counter("serve.completed") == completed
            && metrics.counter("serve.failed") == failed
            && metrics.counter("serve.deadline_exceeded") == dl_miss
            && metrics.counter("serve.budget_exhausted") == budget_out
            && metrics.counter("serve.worker_panics") == panics
            && metrics.counter("serve.retries") == retries;
        let latency = metrics.histogram("serve.latency_us");
        let quantile = |q: f64| -> String {
            latency
                .and_then(|h| h.quantile_bound(q))
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            sc.name.into(),
            sc.jobs.to_string(),
            accepted.to_string(),
            rejected.to_string(),
            completed.to_string(),
            failed.to_string(),
            dl_miss.to_string(),
            budget_out.to_string(),
            panics.to_string(),
            retries.to_string(),
            quantile(0.5),
            quantile(0.99),
            format!("{:.0}", reports as f64 / wall.as_secs_f64()),
            if reconciled {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }

    // Kill+resume drill: interrupt an all-pairs campaign with a step
    // budget, tear the whole service down, resume on a fresh pool.
    let w = gen::random_connected(7, 0.4, 9, seed.wrapping_add(101));
    let apsp = |resume_from| JobKind::Apsp {
        resume_from,
        checkpoint_every: 1,
    };
    let svc = SolveService::start(ServeConfig::default());
    let full = svc
        .submit(JobSpec::new(w.clone(), apsp(None)))
        .expect("reference campaign accepted")
        .wait();
    svc.shutdown();
    let reference = match full.outcome {
        Ok(JobOutcome::Apsp(doc)) => doc.to_string_compact(),
        other => panic!("reference campaign must complete, got {other:?}"),
    };
    let mut session = ppa_mcp::McpSession::new(&w).expect("session builds");
    session.ppa_mut().limit_steps(1_000_000);
    session.all_pairs().expect("campaign solves");
    let used = 1_000_000 - session.ppa_mut().steps_remaining().expect("budget armed");
    let svc = SolveService::start(ServeConfig::default());
    let mut partial = JobSpec::new(w.clone(), apsp(None));
    partial.step_budget = Some(used / 2);
    let interrupted = svc.submit(partial).expect("accepted").wait();
    svc.shutdown();
    let resume_identical = match interrupted.outcome {
        Err(ServeError::Interrupted { checkpoint, .. }) => {
            let progress = ApspCheckpoint::from_json(&checkpoint).expect("checkpoint parses");
            let midway = progress.next_dest() > 0 && !progress.is_complete();
            let svc = SolveService::start(ServeConfig::default());
            let resumed = svc
                .submit(JobSpec::new(w, apsp(Some(checkpoint))))
                .expect("accepted")
                .wait();
            svc.shutdown();
            midway
                && matches!(
                    &resumed.outcome,
                    Ok(JobOutcome::Apsp(doc)) if doc.to_string_compact() == reference
                )
        }
        _ => false,
    };

    t.note(format!(
        "lost_jobs: {lost_jobs} (accepted jobs that never produced a report)"
    ));
    t.note(format!(
        "silent_wrong: {silent_wrong} (completed jobs refuted by the host-side reference)"
    ));
    t.note(format!(
        "resume_byte_identical: {resume_identical} (kill mid-campaign via step budget, resume \
         checkpoint on a fresh service, compare to an uninterrupted run)"
    ));
    t.note(format!(
        "introspect_reconciled: {introspect_ok} (live snapshot taken while idle round-trips \
         byte-identically and its counters equal the client-side tallies)"
    ));
    t.note("`reconciled` = every failure-class count observed on client tickets equals the");
    t.note("corresponding serve.* metrics counter exactly; latency quantiles are log2-bucket");
    t.note("upper bounds from the serve.latency_us histogram.");
    ServeRun {
        table: t,
        baseline: Baseline::new("serve", entries),
        introspection: Json::obj(vec![
            ("campaign_seed", Json::Num(seed as f64)),
            ("reconciled", Json::Bool(introspect_ok)),
            ("scenarios", Json::Array(snapshots)),
        ]),
    }
}

/// Host-side refutation check for a completed serve job.
fn serve_outcome_is_correct(spec: &ppa_serve::JobSpec, out: &ppa_serve::JobOutcome) -> bool {
    use ppa_serve::{ApspCheckpoint, JobKind, JobOutcome};
    match (&spec.kind, out) {
        (JobKind::Shortest { dest }, JobOutcome::Shortest(o)) => {
            validate::is_valid_solution(&spec.graph, *dest, &o.sow, &o.ptn)
        }
        (JobKind::Widest { dest }, JobOutcome::Widest(o)) => {
            // cap[dest] is MAXINT on the array and Weight::MAX in the
            // oracle; only the off-destination entries are comparable.
            let oracle = ppa_mcp::widest::widest_path_oracle(&spec.graph, *dest);
            (0..spec.graph.n()).all(|i| i == *dest || o.cap[i] == oracle[i])
        }
        (JobKind::Apsp { .. }, JobOutcome::Apsp(doc)) => {
            let Ok(cp) = ApspCheckpoint::from_json(doc) else {
                return false;
            };
            cp.is_complete()
                && cp
                    .completed()
                    .iter()
                    .all(|r| validate::is_valid_solution(&spec.graph, r.dest, &r.sow, &r.ptn))
        }
        _ => false,
    }
}

/// NET — the network-edge chaos campaign: wire-protocol fuzzing,
/// admission-control flooding, dropped connections, deadline/cancel
/// over the wire, resumable network campaigns, and a kill -9 shard
/// drill that spawns real `solve shard-worker` processes.
pub fn net_campaign(seed: u64) -> Table {
    net_run(seed, true).table
}

/// Everything the `net` experiment produces: the campaign [`Table`] and
/// the measured [`Baseline`] (the shard drill is excluded from the
/// baseline cells so bench mode — which must stay subprocess-free —
/// measures the same grid).
pub struct NetRun {
    /// Campaign summary table.
    pub table: Table,
    /// Per-scenario wall-clock baseline.
    pub baseline: Baseline,
}

/// The network-edge campaign (see [`net_campaign`]). `with_shard_drill`
/// additionally runs the crash drill: three `solve shard-worker`
/// processes over a split destination range, one killed with SIGKILL
/// mid-campaign and restarted, their checkpoints merged and compared
/// byte-for-byte against a single-process run.
pub fn net_run(seed: u64, with_shard_drill: bool) -> NetRun {
    use ppa_obs::Json;
    use ppa_serve::wire::{read_incoming, write_frame, CampaignRequest, Incoming};
    use ppa_serve::{
        ApspCheckpoint, JobKind, JobOutcome, JobSpec, NetClient, NetConfig, NetServer, Request,
        Response, ServeConfig, SolveService, SubmitRequest,
    };
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;
    use std::sync::Arc;

    let mut t = Table::new(
        "net",
        format!(
            "network edge chaos campaign (seed {seed}): wire fuzzing, admission flood, dropped \
             connections, deadline/cancel over the wire, resumable campaigns; every count \
             reconciled against the server's net.* / serve.* counters"
        ),
        vec![
            "scenario".into(),
            "ops".into(),
            "accepted".into(),
            "rejected".into(),
            "typed errors".into(),
            "completed".into(),
            "lost".into(),
            "reconciled".into(),
        ],
    );
    let mut entries: Vec<BaselineEntry> = Vec::new();
    let mut lost_jobs = 0u64;
    let mut silent_wrong = 0u64;

    let submit = |graph: &WeightMatrix, dest: usize, wait: bool| SubmitRequest {
        graph: ppa_graph::io::to_edge_list(graph),
        kind: "shortest".into(),
        dest,
        checkpoint_every: 1,
        resume_from: None,
        deadline_ms: None,
        step_budget: None,
        transient_faults: None,
        wait,
    };
    let drain_service = |svc: Arc<SolveService>| {
        if let Ok(s) = Arc::try_unwrap(svc) {
            s.shutdown();
        }
    };
    let mut push_cell = |name: &str, ops: u64, wall: std::time::Duration| {
        entries.push(BaselineEntry {
            cell: name.to_owned(),
            steps: ops,
            wall: WallStats::from_samples(&[wall.as_nanos() as u64]),
            counters: std::collections::BTreeMap::new(),
        });
    };

    // --- wire fuzz: malformed bytes get typed errors, never hangs ----
    {
        let start = Instant::now();
        let svc = Arc::new(SolveService::start(ServeConfig {
            workers: 2,
            seed,
            ..ServeConfig::default()
        }));
        let server = NetServer::start(
            Arc::clone(&svc),
            NetConfig {
                max_frame: 4096,
                ..NetConfig::default()
            },
        )
        .expect("fuzz server binds");
        let addr = server.local_addr();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xF022);
        let ops = 40u64;
        let (mut oversized, mut garbage, mut unknown, mut truncated, mut http) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        let mut typed_errors = 0u64;
        let mut all_typed = true;
        let read_response = |stream: &TcpStream| -> Option<Response> {
            let mut r = stream;
            match read_incoming(&mut r, 1 << 20) {
                Ok(Incoming::Frame(doc)) => Response::from_json(&doc).ok(),
                _ => None,
            }
        };
        let error_kind = |resp: Option<Response>| -> Option<String> {
            match resp {
                Some(Response::Error(f)) => Some(f.kind),
                _ => None,
            }
        };
        for i in 0..ops {
            let mut stream = TcpStream::connect(addr).expect("fuzz connect");
            match i % 5 {
                0 => {
                    // A length prefix far beyond the server's cap: the
                    // payload must be rejected *before* allocation.
                    let len = 4097 + rng.gen_range(0..1_000_000u32);
                    stream.write_all(&len.to_be_bytes()).expect("write prefix");
                    oversized += 1;
                    let kind = error_kind(read_response(&stream));
                    all_typed &= kind.as_deref() == Some("frame_too_large");
                    typed_errors += u64::from(kind.is_some());
                }
                1 => {
                    // A well-framed payload of non-UTF-8 bytes (every
                    // byte has the high bit set, so it can never start a
                    // JSON value).
                    let len = rng.gen_range(1..64usize);
                    let payload: Vec<u8> = (0..len)
                        .map(|_| rng.gen_range(0x80..0x100u32) as u8)
                        .collect();
                    stream
                        .write_all(&(len as u32).to_be_bytes())
                        .expect("write prefix");
                    stream.write_all(&payload).expect("write payload");
                    garbage += 1;
                    let kind = error_kind(read_response(&stream));
                    all_typed &= kind.as_deref() == Some("malformed");
                    typed_errors += u64::from(kind.is_some());
                }
                2 => {
                    // Valid JSON, unknown op: typed error and the stream
                    // stays usable for a follow-up request.
                    let doc = Json::obj(vec![("op", Json::Str("bogus".into()))]);
                    write_frame(&mut stream, &doc).expect("write frame");
                    unknown += 1;
                    let kind = error_kind(read_response(&stream));
                    all_typed &= kind.as_deref() == Some("unknown_op");
                    typed_errors += u64::from(kind.is_some());
                    write_frame(&mut stream, &Request::Status.to_json()).expect("write status");
                    all_typed &= matches!(read_response(&stream), Some(Response::Status(_)));
                }
                3 => {
                    // A truncated frame: the prefix promises more bytes
                    // than ever arrive, then the client vanishes.
                    stream
                        .write_all(&100u32.to_be_bytes())
                        .expect("write prefix");
                    stream
                        .write_all(&[0x7b; 10])
                        .expect("write partial payload");
                    truncated += 1;
                }
                _ => {
                    // An HTTP GET for a bogus path shares the port.
                    stream
                        .write_all(b"GET /nope HTTP/1.1\r\n\r\n")
                        .expect("write http");
                    http += 1;
                    let mut buf = Vec::new();
                    let mut r = &stream;
                    let _ = r.read_to_end(&mut buf);
                    all_typed &= buf.starts_with(b"HTTP/1.1 404");
                }
            }
        }
        // After the abuse, a legitimate job must still go through.
        let probe_graph = gen::random_connected(10, 0.4, 9, seed ^ 1);
        let mut client = NetClient::connect(addr).expect("probe connects");
        let probe_ok = matches!(
            client.call(&Request::Submit(submit(&probe_graph, 0, true))),
            Ok(Response::Report { .. })
        );
        drop(client);
        let net_metrics = server.shutdown();
        drain_service(svc);
        // Truncated frames race the hangup: the server sees either a
        // truncated payload (counted malformed) or a bare reset.
        let malformed = net_metrics.counter("net.malformed");
        let reconciled = all_typed
            && probe_ok
            && net_metrics.counter("net.oversized") == oversized
            && net_metrics.counter("net.unknown_op") == unknown
            && malformed >= garbage
            && malformed <= garbage + truncated
            && net_metrics.counter("net.http_gets") == http;
        push_cell("wire fuzz", ops, start.elapsed());
        t.row(vec![
            "wire fuzz".into(),
            ops.to_string(),
            "1".into(),
            "0".into(),
            typed_errors.to_string(),
            "1".into(),
            "0".into(),
            if reconciled {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }

    // --- admission flood: shed at the edge, nothing lost -------------
    {
        let start = Instant::now();
        let graph = gen::random_connected(18, 0.3, 9, seed ^ 2);
        let svc = Arc::new(SolveService::start(ServeConfig {
            workers: 2,
            queue_capacity: 4,
            seed,
            ..ServeConfig::default()
        }));
        let server =
            NetServer::start(Arc::clone(&svc), NetConfig::default()).expect("flood server binds");
        let addr = server.local_addr();
        const CLIENTS: usize = 4;
        const PER_CLIENT: usize = 25;
        let ops = (CLIENTS * PER_CLIENT) as u64;
        // (accepted (id, dest) pairs, rejection count, retry hints all sane)
        type ClientTally = (Vec<(u64, usize)>, u64, bool);
        let per_client: Vec<ClientTally> = std::thread::scope(|scope| {
            let submit = &submit;
            let graph = &graph;
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    scope.spawn(move || {
                        let mut client = NetClient::connect(addr).expect("flood connect");
                        let mut accepted = Vec::new();
                        let mut rejected = 0u64;
                        let mut hints_ok = true;
                        for j in 0..PER_CLIENT {
                            let dest = (c * PER_CLIENT + j) % graph.n();
                            match client.call(&Request::Submit(submit(graph, dest, false))) {
                                Ok(Response::Accepted { id }) => accepted.push((id, dest)),
                                Ok(Response::Error(f)) => {
                                    rejected += 1;
                                    hints_ok &= f.kind == "rejected"
                                        && f.retry_after_ms.is_some_and(|ms| ms >= 1);
                                }
                                other => panic!("unexpected flood response: {other:?}"),
                            }
                        }
                        (accepted, rejected, hints_ok)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("flood client"))
                .collect()
        });
        let mut ids: Vec<(u64, usize)> = Vec::new();
        let mut rejected = 0u64;
        let mut hints_ok = true;
        for (a, r, h) in per_client {
            ids.extend(a);
            rejected += r;
            hints_ok &= h;
        }
        let accepted = ids.len() as u64;
        // Every accepted job must yield exactly one fetchable report,
        // and every completed answer must survive the reference check.
        let mut client = NetClient::connect(addr).expect("fetch connect");
        let (mut completed, mut failed, mut fetched) = (0u64, 0u64, 0u64);
        for &(id, dest) in &ids {
            match client.call(&Request::Result { id }) {
                Ok(Response::Report { outcome, .. }) => {
                    fetched += 1;
                    match ppa_serve::wire::outcome_from_json(&outcome) {
                        Ok(JobOutcome::Shortest(out)) => {
                            completed += 1;
                            if !validate::is_valid_solution(&graph, dest, &out.sow, &out.ptn) {
                                silent_wrong += 1;
                            }
                        }
                        _ => failed += 1,
                    }
                }
                Ok(Response::Error(f)) if f.kind != "unknown_job" => {
                    fetched += 1;
                    failed += 1;
                }
                _ => {}
            }
        }
        let metrics = match client.call(&Request::Metrics) {
            Ok(Response::MetricsDoc(doc)) => ppa_obs::Metrics::from_json(&doc).ok(),
            _ => None,
        };
        drop(client);
        server.shutdown();
        drain_service(svc);
        lost_jobs += accepted - fetched;
        let reconciled = hints_ok
            && completed + failed == fetched
            && metrics.is_some_and(|m| {
                m.counter("serve.accepted") == accepted
                    && m.counter("serve.rejected_queue_full") == rejected
                    && m.counter("serve.completed") + m.counter("serve.failed") == accepted
                    && m.counter("net.submitted") == accepted
                    && m.counter("net.submit_rejected") == rejected
            });
        push_cell("admission flood", ops, start.elapsed());
        t.row(vec![
            "admission flood".into(),
            ops.to_string(),
            accepted.to_string(),
            rejected.to_string(),
            rejected.to_string(),
            completed.to_string(),
            (accepted - fetched).to_string(),
            if reconciled {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }

    // --- dropped connections: orphaned jobs still settle -------------
    {
        let start = Instant::now();
        let graph = gen::random_connected(14, 0.35, 9, seed ^ 3);
        let svc = Arc::new(SolveService::start(ServeConfig {
            workers: 2,
            seed,
            ..ServeConfig::default()
        }));
        let server =
            NetServer::start(Arc::clone(&svc), NetConfig::default()).expect("drop server binds");
        let addr = server.local_addr();
        let conns = 8u64;
        let mut ids: Vec<(u64, usize)> = Vec::new();
        for i in 0..conns as usize {
            if i % 2 == 0 {
                // Submit asynchronously, then vanish without fetching.
                let mut client = NetClient::connect(addr).expect("drop connect");
                let dest = i % graph.n();
                match client.call(&Request::Submit(submit(&graph, dest, false))) {
                    Ok(Response::Accepted { id }) => ids.push((id, dest)),
                    other => panic!("unexpected drop response: {other:?}"),
                }
            } else {
                // Hang up mid-frame.
                let mut stream = TcpStream::connect(addr).expect("drop connect raw");
                stream
                    .write_all(&64u32.to_be_bytes())
                    .expect("write prefix");
                stream.write_all(b"{\"op\":").expect("write partial");
            }
        }
        let submitted = ids.len() as u64;
        let mut client = NetClient::connect(addr).expect("reap connect");
        let (mut completed, mut fetched) = (0u64, 0u64);
        for &(id, dest) in &ids {
            if let Ok(Response::Report { outcome, .. }) = client.call(&Request::Result { id }) {
                fetched += 1;
                if let Ok(JobOutcome::Shortest(out)) = ppa_serve::wire::outcome_from_json(&outcome)
                {
                    completed += 1;
                    if !validate::is_valid_solution(&graph, dest, &out.sow, &out.ptn) {
                        silent_wrong += 1;
                    }
                }
            }
        }
        let status_ok = matches!(client.call(&Request::Status), Ok(Response::Status(_)));
        drop(client);
        server.shutdown();
        drain_service(svc);
        lost_jobs += submitted - fetched;
        let reconciled = status_ok && fetched == submitted && completed == submitted;
        push_cell("dropped connections", conns, start.elapsed());
        t.row(vec![
            "dropped connections".into(),
            conns.to_string(),
            submitted.to_string(),
            "0".into(),
            "0".into(),
            completed.to_string(),
            (submitted - fetched).to_string(),
            if reconciled {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }

    // --- deadline + cancel travel the wire ---------------------------
    {
        let start = Instant::now();
        let graph = gen::random_connected(16, 0.3, 9, seed ^ 4);
        let svc = Arc::new(SolveService::start(ServeConfig {
            workers: 2,
            seed,
            ..ServeConfig::default()
        }));
        let server = NetServer::start(Arc::clone(&svc), NetConfig::default())
            .expect("deadline server binds");
        let addr = server.local_addr();
        let mut client = NetClient::connect(addr).expect("deadline connect");
        let ops = 5u64;
        let mut typed = 0u64;
        let mut ok = true;
        // An already-expired deadline fails with the deadline taxonomy.
        let mut req = submit(&graph, 0, true);
        req.deadline_ms = Some(0);
        match client.call(&Request::Submit(req)) {
            Ok(Response::Error(f)) => {
                typed += 1;
                ok &= f.kind == "deadline" || f.kind == "deadline_in_queue";
            }
            _ => ok = false,
        }
        // A mid-campaign step budget hands back a parseable resume
        // checkpoint with the error. Half the measured full-campaign
        // cost lands between destinations, like `serve_run`'s drill.
        let mut session = ppa_mcp::McpSession::new(&graph).expect("session builds");
        session.ppa_mut().limit_steps(1_000_000);
        session.all_pairs().expect("campaign solves");
        let used = 1_000_000 - session.ppa_mut().steps_remaining().expect("budget armed");
        let mut req = submit(&graph, 0, true);
        req.kind = "apsp".into();
        req.step_budget = Some(used / 2);
        match client.call(&Request::Submit(req)) {
            Ok(Response::Error(f)) => {
                typed += 1;
                ok &= f.kind == "interrupted:budget"
                    && f.checkpoint
                        .as_ref()
                        .is_some_and(|doc| ApspCheckpoint::from_json(doc).is_ok());
            }
            _ => ok = false,
        }
        // Cancelling an unknown id is answered, not ignored.
        match client.call(&Request::Cancel { id: 424_242 }) {
            Ok(Response::CancelResult { known, .. }) => ok &= !known,
            _ => ok = false,
        }
        // Cancel a live submission: whatever wins the race, the report
        // must settle as either a result or a typed cancellation.
        let id = match client.call(&Request::Submit(submit(&graph, 1, false))) {
            Ok(Response::Accepted { id }) => id,
            _ => {
                ok = false;
                u64::MAX
            }
        };
        ok &= matches!(
            client.call(&Request::Cancel { id }),
            Ok(Response::CancelResult { .. })
        );
        match client.call(&Request::Result { id }) {
            Ok(Response::Report { .. }) => {}
            Ok(Response::Error(f)) => {
                typed += 1;
                ok &= f.kind == "cancelled";
            }
            _ => ok = false,
        }
        drop(client);
        server.shutdown();
        drain_service(svc);
        push_cell("deadline + cancel", ops, start.elapsed());
        t.row(vec![
            "deadline + cancel".into(),
            ops.to_string(),
            "3".into(),
            "0".into(),
            typed.to_string(),
            "-".into(),
            "0".into(),
            if ok { "yes".into() } else { "NO".into() },
        ]);
    }

    // --- resumable campaigns over the network ------------------------
    {
        let start = Instant::now();
        let w = gen::random_connected(9, 0.4, 9, seed ^ 5);
        let n = w.n();
        // Host-side reference: the same campaign in one process.
        let svc0 = SolveService::start(ServeConfig {
            seed,
            ..ServeConfig::default()
        });
        let reference = match svc0
            .submit(JobSpec::new(
                w.clone(),
                JobKind::Apsp {
                    resume_from: None,
                    checkpoint_every: 1,
                },
            ))
            .expect("reference campaign accepted")
            .wait()
            .outcome
        {
            Ok(JobOutcome::Apsp(doc)) => doc.to_string_compact(),
            other => panic!("reference campaign must complete, got {other:?}"),
        };
        svc0.shutdown();
        // A half-done checkpoint built host-side from verified solves.
        let mut partial = ApspCheckpoint::new(n);
        for d in 0..n / 2 {
            let out = ppa_mcp::McpSession::new(&w)
                .expect("session builds")
                .solve(d)
                .expect("prefix dest solves");
            partial.record(&out);
        }
        let resumed_prefix = partial.next_dest();
        let svc = Arc::new(SolveService::start(ServeConfig {
            seed,
            ..ServeConfig::default()
        }));
        let server = NetServer::start(Arc::clone(&svc), NetConfig::default())
            .expect("campaign server binds");
        let addr = server.local_addr();
        let mut client = NetClient::connect(addr).expect("campaign connect");
        let campaign = |resume_from: Option<Json>| CampaignRequest {
            graph: ppa_graph::io::to_edge_list(&w),
            checkpoint_every: 1,
            deadline_ms: None,
            step_budget: None,
            resume_from,
        };
        let mut resumed_progress = 0u64;
        let resumed = client.campaign(campaign(Some(partial.to_json())), |_, _| {
            resumed_progress += 1;
        });
        let resumed_identical = matches!(&resumed, Ok(doc) if doc.to_string_compact() == reference);
        let mut full_progress = 0u64;
        let full = client.campaign(campaign(None), |_, _| full_progress += 1);
        let full_identical = matches!(&full, Ok(doc) if doc.to_string_compact() == reference);
        if resumed.is_ok() && !resumed_identical {
            silent_wrong += 1;
        }
        if full.is_ok() && !full_identical {
            silent_wrong += 1;
        }
        drop(client);
        server.shutdown();
        drain_service(svc);
        let ops = (n + (n - resumed_prefix)) as u64;
        let reconciled = resumed_identical
            && full_identical
            && resumed_progress == (n - resumed_prefix) as u64
            && full_progress == n as u64;
        push_cell("resumable campaign", ops, start.elapsed());
        t.row(vec![
            "resumable campaign".into(),
            ops.to_string(),
            "2".into(),
            "0".into(),
            "0".into(),
            (2 * n).to_string(),
            "0".into(),
            if reconciled {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }

    // --- shard kill -9 drill (real worker processes) -----------------
    let mut sharded_byte_identical = false;
    let mut drill_note = String::new();
    if with_shard_drill {
        match shard_drill(seed) {
            Ok(d) => {
                sharded_byte_identical = d.byte_identical;
                drill_note = format!(
                    "3 worker processes over {} destinations; victim {} with {} destination(s) \
                     persisted, restarted, merged",
                    d.n,
                    if d.victim_killed {
                        "killed -9 mid-campaign"
                    } else {
                        "finished before the kill landed"
                    },
                    d.resumed_prefix,
                );
                t.row(vec![
                    "shard kill -9 drill".into(),
                    "4".into(),
                    "3".into(),
                    "0".into(),
                    "0".into(),
                    d.n.to_string(),
                    "0".into(),
                    if d.byte_identical {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                ]);
            }
            Err(e) => {
                drill_note = format!("drill failed: {e}");
                t.row(vec![
                    "shard kill -9 drill".into(),
                    "4".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "NO".into(),
                ]);
            }
        }
    }

    t.note(format!(
        "lost_jobs: {lost_jobs} (accepted submissions whose report could not be fetched back)"
    ));
    t.note(format!(
        "silent_wrong: {silent_wrong} (completed network answers refuted by the host-side \
         reference)"
    ));
    if with_shard_drill {
        t.note(format!(
            "sharded_byte_identical: {sharded_byte_identical} ({drill_note})"
        ));
    } else {
        t.note(
            "shard drill skipped (bench mode runs no subprocesses); run `report net` for the \
             kill -9 drill",
        );
    }
    t.note("`reconciled` = client-side tallies equal the server's counters exactly and every");
    t.note("protocol violation drew a typed error frame (never a hang or a dropped job).");
    NetRun {
        table: t,
        baseline: Baseline::new("net", entries),
    }
}

/// What the kill -9 shard drill observed.
struct ShardDrillOutcome {
    byte_identical: bool,
    victim_killed: bool,
    resumed_prefix: usize,
    n: usize,
}

/// Runs the crash drill: three `solve shard-worker` processes split an
/// all-pairs campaign by destination range, shard 1 is killed with
/// SIGKILL mid-run (its `--stall-ms` widens the window), restarted, and
/// the merged checkpoints are compared byte-for-byte against a
/// single-process campaign. Also exercises the `solve shard-merge` CLI
/// on the same files.
fn shard_drill(seed: u64) -> Result<ShardDrillOutcome, String> {
    use ppa_serve::{merge_shard_files, JobKind, JobOutcome, JobSpec, ServeConfig, SolveService};
    use std::process::{Command, Stdio};
    use std::time::Duration;

    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe.parent().ok_or("current_exe has no parent")?;
    let name = format!("solve{}", std::env::consts::EXE_SUFFIX);
    // Sibling of the report binary; one level up when running from a
    // test harness in target/<profile>/deps/.
    let solve = [dir.join(&name), dir.join("..").join(&name)]
        .into_iter()
        .find(|p| p.exists())
        .ok_or("solve binary not found next to this binary (build -p ppa-bench first)")?;

    let tmp = std::env::temp_dir().join(format!("ppa-net-drill-{}-{seed}", std::process::id()));
    std::fs::create_dir_all(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
    let graph_path = tmp.join("graph.txt");
    let w = gen::random_connected(12, 0.3, 9, seed ^ 6);
    let n = w.n();
    std::fs::write(&graph_path, ppa_graph::io::to_edge_list(&w))
        .map_err(|e| format!("write graph: {e}"))?;

    // Single-process reference document.
    let svc = SolveService::start(ServeConfig::default());
    let reference = match svc
        .submit(JobSpec::new(
            w,
            JobKind::Apsp {
                resume_from: None,
                checkpoint_every: 1,
            },
        ))
        .map_err(|e| format!("reference submit: {e}"))?
        .wait()
        .outcome
    {
        Ok(JobOutcome::Apsp(doc)) => doc.to_string_compact(),
        other => return Err(format!("reference campaign did not complete: {other:?}")),
    };
    svc.shutdown();

    let spawn = |shard: usize, stall_ms: Option<u64>| {
        let mut cmd = Command::new(&solve);
        cmd.arg("shard-worker")
            .arg(&graph_path)
            .arg("--shard")
            .arg(shard.to_string())
            .arg("--of")
            .arg("3")
            .arg("--checkpoint")
            .arg(tmp.join(format!("shard{shard}.json")))
            .arg("--every")
            .arg("1")
            .arg("--workers")
            .arg("2")
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(ms) = stall_ms {
            cmd.arg("--stall-ms").arg(ms.to_string());
        }
        cmd.spawn().map_err(|e| format!("spawn shard {shard}: {e}"))
    };
    let mut survivor0 = spawn(0, None)?;
    let mut survivor2 = spawn(2, None)?;
    // The victim stalls after every checkpoint flush, so the kill lands
    // mid-campaign with a persisted prefix on disk.
    let mut victim = spawn(1, Some(40))?;
    let victim_path = tmp.join("shard1.json");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !victim_path.exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    if !victim_path.exists() {
        let _ = victim.kill();
        return Err("victim shard never persisted a checkpoint".into());
    }
    let _ = victim.kill(); // SIGKILL: no destructors, no atexit flushes
    let status = victim.wait().map_err(|e| format!("reap victim: {e}"))?;
    let victim_killed = !status.success();
    // The surviving file must already be a loadable prefix — the atomic
    // write discipline means a torn document is impossible.
    let prefix = ppa_serve::ShardCheckpoint::load(&victim_path)
        .map_err(|e| format!("killed worker left an unreadable checkpoint: {e}"))?;
    let resumed_prefix = prefix.completed().len();
    // Restart the victim without the stall: it must resume the prefix.
    let status = spawn(1, None)?
        .wait()
        .map_err(|e| format!("wait restarted victim: {e}"))?;
    if !status.success() {
        return Err(format!("restarted shard worker failed: {status}"));
    }
    for (shard, child) in [(0usize, &mut survivor0), (2, &mut survivor2)] {
        let status = child
            .wait()
            .map_err(|e| format!("wait shard {shard}: {e}"))?;
        if !status.success() {
            return Err(format!("shard worker {shard} failed: {status}"));
        }
    }

    let shard_paths: Vec<std::path::PathBuf> =
        (0..3).map(|s| tmp.join(format!("shard{s}.json"))).collect();
    let merged = merge_shard_files(&shard_paths).map_err(|e| format!("merge: {e}"))?;
    let in_process_identical = merged.to_json().to_string_compact() == reference;
    // The CLI merge must agree with the library merge.
    let merged_path = tmp.join("merged.json");
    let mut cmd = Command::new(&solve);
    cmd.arg("shard-merge").arg("--out").arg(&merged_path);
    for p in &shard_paths {
        cmd.arg(p);
    }
    let status = cmd
        .stdout(Stdio::null())
        .status()
        .map_err(|e| format!("run shard-merge: {e}"))?;
    if !status.success() {
        return Err(format!("shard-merge CLI failed: {status}"));
    }
    let cli_identical = std::fs::read_to_string(&merged_path)
        .ok()
        .and_then(|text| ppa_obs::Json::parse(&text).ok())
        .and_then(|doc| ppa_serve::ApspCheckpoint::from_json(&doc).ok())
        .is_some_and(|cp| cp.to_json().to_string_compact() == reference);
    let _ = std::fs::remove_dir_all(&tmp);
    Ok(ShardDrillOutcome {
        byte_identical: in_process_identical && cli_identical,
        victim_killed,
        resumed_prefix,
        n,
    })
}

/// Host-side check that a degraded result is exact for the induced
/// healthy subgraph (excluded vertices report [`INF`]).
fn degraded_matches_reference(w: &WeightMatrix, d: usize, r: &ppa_mcp::RecoveredMcp) -> bool {
    let n = w.n();
    let excluded = &r.recovery.excluded;
    let mut pruned = w.clone();
    for &v in excluded {
        for u in 0..n {
            if u != v {
                pruned.remove(v, u);
                pruned.remove(u, v);
            }
        }
    }
    let oracle = reference::bellman_ford_to_dest(&pruned, d);
    (0..n).all(|v| {
        if excluded.contains(&v) {
            r.output.sow[v] == INF && r.output.ptn[v] == v
        } else {
            r.output.sow[v] == oracle.dist[v]
        }
    })
}

/// CH — the full-stack chaos drill: lane-replicated redundant execution
/// under seeded stuck-at and transient faults, the serve-layer
/// quarantine/readmission drill, and a redundant network-edge flood.
///
/// Four stages, all seeded:
///
/// 1. **dmr stuck-at** — a single stuck-at fault planted inside one
///    replica's column band of a DMR wave, over an n × flavor × lane
///    grid. Every effective corruption must be caught by the vote alone;
///    the sequential reference is a *post-hoc audit* that classifies
///    accepted results, never a runtime check.
/// 2. **dmr transient** — seeded transient glitch processes over the
///    whole replicated array, same acceptance rule.
/// 3. **tmr correct** — the stuck-at grid again under correcting TMR:
///    every accepted output must be bit-identical to the fault-free
///    solo solve (sow, ptn, iterations, and the step ledger).
/// 4. **quarantine drill** + **net flood** — a live [`SolveService`]
///    with a planted per-machine fault plan (one machine heals, one is
///    faulty forever), background scrubbing, and DMR redundancy: the
///    faulty machines must be quarantined and replaced, the healed one
///    readmitted, while jobs (chaos panics included) and a concurrent
///    network-edge flood keep being served with zero quarantine leaks —
///    then the flood's accepted jobs are all fetched and re-verified.
///
/// The summary notes carry the invariants CI greps for:
/// `silent_wrong: 0`, `vote_detection: 1.0`,
/// `tmr_corrected_bit_identical: true`, `quarantine_leaks: 0`.
pub fn chaos_campaign(seed: u64) -> Table {
    chaos_run(seed).table
}

/// Everything the `chaos` experiment produces: the campaign [`Table`]
/// and the measured per-stage wall-clock [`Baseline`]
/// (`BENCH_chaos.json`).
pub struct ChaosRun {
    /// Campaign summary table.
    pub table: Table,
    /// Per-stage wall-clock baseline.
    pub baseline: Baseline,
}

/// Per-stage tally of redundant-wave verdicts against the post-hoc
/// sequential audit.
#[derive(Default)]
struct VoteTally {
    trials: u64,
    /// Unanimous accept, bit-identical to the healthy solo (the fault
    /// never disturbed the wave, or TMR out-voted it).
    masked: u64,
    /// Vote-corrected accept (TMR only), bit-identical to the healthy solo.
    corrected: u64,
    /// The vote indicted a minority (or found no majority) and refused.
    vote: u64,
    /// A corruption-class machine abort (`FaultyArray`, corrupt bus, ...).
    typed: u64,
    /// Accepted result refuted by the post-hoc reference. Must stay 0.
    silent: u64,
    /// An error outside the corruption taxonomy. Must stay 0.
    untyped: u64,
}

impl VoteTally {
    fn observe(
        &mut self,
        result: Result<ppa_mcp::RedundantWave, ppa_mcp::McpError>,
        healthy: &ppa_mcp::McpOutput,
    ) {
        use ppa_mcp::McpError;
        self.trials += 1;
        match result {
            Err(e) if e.indicates_corruption() => self.typed += 1,
            Err(_) => self.untyped += 1,
            Ok(wave) => match &wave.lanes[0].outcome {
                Ok(out) if out == healthy => {
                    if wave.lanes[0].vote.corrected {
                        self.corrected += 1;
                    } else {
                        self.masked += 1;
                    }
                }
                Ok(_) => self.silent += 1,
                Err(McpError::VoteDisagreement { .. }) => self.vote += 1,
                Err(e) if e.indicates_corruption() => self.typed += 1,
                Err(_) => self.untyped += 1,
            },
        }
    }

    fn ok(&self) -> bool {
        self.silent == 0 && self.untyped == 0
    }
}

/// The chaos drill with its measured baseline (see [`chaos_campaign`]
/// for the campaign semantics).
pub fn chaos_run(seed: u64) -> ChaosRun {
    use ppa_machine::{Coord, SwitchFault, TransientFaults};
    use ppa_mcp::batch::replicate;
    use ppa_mcp::{BatchSession, McpOutput, McpSession, Redundancy};
    use ppa_serve::{
        FaultSpec, JobKind, JobOutcome, JobSpec, MachineFaultPlan, NetClient, NetConfig, NetServer,
        Request, Response, RetryPolicy, ScrubConfig, ServeConfig, ServeError, SolveService,
        SubmitRequest,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let mut t = Table::new(
        "chaos",
        format!(
            "full-stack chaos drill (seed {seed}): stuck-at + transient faults under DMR/TMR \
             voting, scrub-driven quarantine/readmission on a live pool, and a redundant \
             network-edge flood; accepted results audited post-hoc against the sequential \
             reference"
        ),
        vec![
            "stage".into(),
            "trials".into(),
            "masked".into(),
            "corrected".into(),
            "vote detected".into(),
            "typed errors".into(),
            "silent wrong".into(),
            "leaks".into(),
            "verdict".into(),
        ],
    );
    let mut entries: Vec<BaselineEntry> = Vec::new();
    let mut push_cell = |name: &str, steps: u64, wall: std::time::Duration| {
        entries.push(BaselineEntry {
            cell: name.to_owned(),
            steps,
            wall: WallStats::from_samples(&[wall.as_nanos() as u64]),
            counters: std::collections::BTreeMap::new(),
        });
    };
    let verdict_row =
        |t: &mut Table, stage: &str, tally: &VoteTally, extra_ok: bool, leaks: &str| {
            t.row(vec![
                stage.into(),
                tally.trials.to_string(),
                tally.masked.to_string(),
                tally.corrected.to_string(),
                tally.vote.to_string(),
                tally.typed.to_string(),
                tally.silent.to_string(),
                leaks.into(),
                if tally.ok() && extra_ok {
                    "ok".into()
                } else {
                    "NO".into()
                },
            ]);
        };

    // The fault-free solo solve at the wave's word width: the post-hoc
    // audit every accepted redundant result is compared against.
    let healthy_solo = |w: &WeightMatrix, d: usize, word_bits: u32| -> McpOutput {
        let ppa = Ppa::square(w.n()).with_word_bits(word_bits);
        McpSession::from_ppa(ppa, w)
            .expect("healthy session builds")
            .solve(d)
            .expect("healthy solo solves")
    };
    let trial_graph = |n: usize, salt: u64| -> WeightMatrix {
        gen::random_connected(n, 0.5, 9, seed.wrapping_mul(1_000_003).wrapping_add(salt))
    };

    // --- stage 1: DMR vote integrity under planted stuck-at faults ----
    let mut dmr = VoteTally::default();
    let dmr_start = Instant::now();
    for &n in &[4usize, 5, 6] {
        for fault in [SwitchFault::StuckOpen, SwitchFault::StuckShort] {
            for lane in 0..2usize {
                for trial in 0..2u64 {
                    let salt = (n * 1000 + lane * 100) as u64
                        + trial * 10
                        + u64::from(matches!(fault, SwitchFault::StuckShort));
                    let w = trial_graph(n, salt);
                    let d = trial as usize % n;
                    let mut sess =
                        BatchSession::new(&replicate(&w, 2)).expect("replicated session builds");
                    let mut fm = FaultMap::new();
                    let row = (salt.wrapping_mul(0x9e37_79b9) >> 8) as usize % n;
                    let col = (salt.wrapping_mul(0x9e37_79b9) >> 24) as usize % n;
                    fm.inject(Coord::new(row, lane * n + col), fault);
                    sess.ppa_mut().machine_mut().attach_faults(fm);
                    let healthy = healthy_solo(&w, d, sess.word_bits());
                    dmr.observe(sess.solve_redundant(&[d], Redundancy::Dmr), &healthy);
                }
            }
        }
    }
    push_cell("dmr stuck-at", dmr.trials, dmr_start.elapsed());
    verdict_row(&mut t, "dmr stuck-at", &dmr, true, "-");

    // --- stage 2: DMR under seeded transient glitch processes ---------
    let mut transient = VoteTally::default();
    let transient_start = Instant::now();
    for trial in 0..8u64 {
        let w = trial_graph(5, 0xBEA7 + trial);
        let d = trial as usize % w.n();
        let mut sess = BatchSession::new(&replicate(&w, 2)).expect("replicated session builds");
        sess.ppa_mut()
            .machine_mut()
            .attach_transient_faults(TransientFaults::new(0.08, seed ^ (0x7AA0 + trial)));
        let healthy = healthy_solo(&w, d, sess.word_bits());
        transient.observe(sess.solve_redundant(&[d], Redundancy::Dmr), &healthy);
    }
    push_cell("dmr transient", transient.trials, transient_start.elapsed());
    verdict_row(&mut t, "dmr transient", &transient, true, "-");

    // --- stage 3: correcting TMR is bit-identical -------------------
    let mut tmr = VoteTally::default();
    let tmr_start = Instant::now();
    for &n in &[4usize, 5, 6] {
        for fault in [SwitchFault::StuckOpen, SwitchFault::StuckShort] {
            for lane in 0..3usize {
                let salt = (n * 1000 + lane * 100) as u64
                    + 7
                    + u64::from(matches!(fault, SwitchFault::StuckShort));
                let w = trial_graph(n, salt);
                let d = lane % n;
                let mut sess =
                    BatchSession::new(&replicate(&w, 3)).expect("replicated session builds");
                let mut fm = FaultMap::new();
                let row = (salt.wrapping_mul(0x9e37_79b9) >> 8) as usize % n;
                let col = (salt.wrapping_mul(0x9e37_79b9) >> 24) as usize % n;
                fm.inject(Coord::new(row, lane * n + col), fault);
                sess.ppa_mut().machine_mut().attach_faults(fm);
                let healthy = healthy_solo(&w, d, sess.word_bits());
                tmr.observe(
                    sess.solve_redundant(&[d], Redundancy::Tmr { correct: true }),
                    &healthy,
                );
            }
        }
    }
    // Correcting TMR never refuses on a single in-band fault: a trial
    // either masks, corrects, or aborts with a typed machine error.
    let tmr_identical = tmr.ok() && tmr.vote == 0 && tmr.corrected >= 1;
    push_cell("tmr correct", tmr.trials, tmr_start.elapsed());
    verdict_row(&mut t, "tmr correct", &tmr, tmr_identical, "-");

    // --- stage 4: quarantine drill on a live redundant pool ----------
    let drill_start = Instant::now();
    let drill_jobs = 16usize;
    let (drill_tally, drill_leaks, drill_ok) = {
        let mut tally = VoteTally::default();
        let svc = SolveService::start(ServeConfig {
            workers: 2,
            queue_capacity: drill_jobs,
            redundancy: Redundancy::Dmr,
            scrubbing: ScrubConfig {
                enabled: true,
                idle_after: Duration::from_micros(500),
                min_interval: Duration::from_micros(200),
                duty_cycle: 1.0,
                probe_n: 5,
                benched_pause: Duration::from_micros(300),
            },
            // Machine 0 heals after a few rebuilds (quarantine ->
            // probation -> readmitted); machine 1 is faulty forever and
            // must stay benched until shutdown.
            fault_plan: MachineFaultPlan::default()
                .with(
                    0,
                    FaultSpec {
                        count: 3,
                        seed: seed ^ 0xFA01,
                        heal_after_builds: Some(6),
                    },
                )
                .with(
                    1,
                    FaultSpec {
                        count: 2,
                        seed: seed ^ 0xFA02,
                        heal_after_builds: None,
                    },
                ),
            retry: RetryPolicy {
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_micros(400),
                ..RetryPolicy::default()
            },
            seed,
            ..ServeConfig::default()
        });
        // Let the scrubber find both planted faults and walk machine 0
        // all the way back to the pool before any traffic arrives.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let m = svc.metrics();
            if (m.counter("serve.health.quarantined") >= 2
                && m.counter("serve.health.readmitted") >= 1)
                || Instant::now() > deadline
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut pending = Vec::new();
        for j in 0..drill_jobs {
            let w = trial_graph(5 + j % 3, 0xD211 + j as u64);
            let kind = if j % 8 == 7 {
                JobKind::Chaos
            } else {
                JobKind::Shortest { dest: j % w.n() }
            };
            let spec = JobSpec::new(w, kind);
            let ticket = svc.submit(spec.clone()).expect("drill job accepted");
            pending.push((spec, ticket));
        }
        for (spec, ticket) in pending {
            let report = ticket.wait();
            tally.trials += 1;
            match &report.outcome {
                Ok(out) => {
                    if serve_outcome_is_correct(&spec, out) {
                        tally.masked += 1;
                    } else {
                        tally.silent += 1;
                    }
                }
                // The planted panic is the expected, typed outcome.
                Err(_) if matches!(spec.kind, JobKind::Chaos) => tally.typed += 1,
                Err(e) => match e {
                    ServeError::Solver(cause) if cause.indicates_corruption() => tally.typed += 1,
                    ServeError::WorkerPanicked { .. } => tally.typed += 1,
                    _ => tally.untyped += 1,
                },
            }
        }
        let snap = svc.introspect();
        let benched_visible = snap.health.iter().any(|h| h.state == "quarantined");
        let metrics = svc.shutdown();
        let leaks = metrics.counter("serve.health.quarantine_leaks");
        let drill_ok = leaks == 0
            && benched_visible
            && metrics.counter("serve.health.quarantined") >= 2
            && metrics.counter("serve.health.readmitted") >= 1
            && metrics.counter("serve.health.replacements") >= 2
            && metrics.counter("serve.scrub.sweeps") >= 4;
        (tally, leaks, drill_ok)
    };
    push_cell("quarantine drill", drill_jobs as u64, drill_start.elapsed());
    verdict_row(
        &mut t,
        "quarantine drill",
        &drill_tally,
        drill_ok,
        &drill_leaks.to_string(),
    );

    // --- stage 5: network-edge flood with redundancy on --------------
    let flood_start = Instant::now();
    const CLIENTS: usize = 3;
    const PER_CLIENT: usize = 12;
    let flood_ops = (CLIENTS * PER_CLIENT) as u64;
    let (flood_tally, flood_leaks, flood_ok) = {
        let mut tally = VoteTally::default();
        let graph = gen::random_connected(10, 0.35, 9, seed ^ 0xF10D);
        let svc = Arc::new(SolveService::start(ServeConfig {
            workers: 2,
            queue_capacity: 6,
            redundancy: Redundancy::Tmr { correct: true },
            seed,
            ..ServeConfig::default()
        }));
        let server =
            NetServer::start(Arc::clone(&svc), NetConfig::default()).expect("flood server binds");
        let addr = server.local_addr();
        let submit = |dest: usize| SubmitRequest {
            graph: ppa_graph::io::to_edge_list(&graph),
            kind: "shortest".into(),
            dest,
            checkpoint_every: 1,
            resume_from: None,
            deadline_ms: None,
            step_budget: None,
            transient_faults: None,
            wait: false,
        };
        type ClientTally = (Vec<(u64, usize)>, u64, bool);
        let per_client: Vec<ClientTally> = std::thread::scope(|scope| {
            let submit = &submit;
            let graph = &graph;
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    scope.spawn(move || {
                        let mut client = NetClient::connect(addr).expect("flood connect");
                        let mut accepted = Vec::new();
                        let mut rejected = 0u64;
                        let mut typed = true;
                        for j in 0..PER_CLIENT {
                            let dest = (c * PER_CLIENT + j) % graph.n();
                            match client.call(&Request::Submit(submit(dest))) {
                                Ok(Response::Accepted { id }) => accepted.push((id, dest)),
                                Ok(Response::Error(f)) => {
                                    rejected += 1;
                                    typed &= f.kind == "rejected";
                                }
                                other => panic!("unexpected flood response: {other:?}"),
                            }
                        }
                        (accepted, rejected, typed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("flood client"))
                .collect()
        });
        let mut ids: Vec<(u64, usize)> = Vec::new();
        let mut typed_rejections = true;
        let mut rejected = 0u64;
        for (a, r, ok) in per_client {
            ids.extend(a);
            rejected += r;
            typed_rejections &= ok;
        }
        let accepted = ids.len() as u64;
        let mut client = NetClient::connect(addr).expect("fetch connect");
        let mut fetched = 0u64;
        for &(id, dest) in &ids {
            tally.trials += 1;
            match client.call(&Request::Result { id }) {
                Ok(Response::Report { outcome, .. }) => {
                    fetched += 1;
                    match ppa_serve::wire::outcome_from_json(&outcome) {
                        Ok(JobOutcome::Shortest(out)) => {
                            if validate::is_valid_solution(&graph, dest, &out.sow, &out.ptn) {
                                tally.masked += 1;
                            } else {
                                tally.silent += 1;
                            }
                        }
                        _ => tally.typed += 1,
                    }
                }
                Ok(Response::Error(_)) => {
                    fetched += 1;
                    tally.typed += 1;
                }
                other => panic!("unexpected fetch response: {other:?}"),
            }
        }
        drop(client);
        // Every flood job has been fetched, so the counters are final.
        let metrics = svc.metrics();
        server.shutdown();
        if let Ok(s) = Arc::try_unwrap(svc) {
            s.shutdown();
        }
        let leaks = metrics.counter("serve.health.quarantine_leaks");
        let flood_ok = typed_rejections
            && fetched == accepted
            && leaks == 0
            && metrics.counter("serve.accepted") == accepted
            && metrics.counter("serve.rejected_queue_full") == rejected
            && metrics.counter("serve.health.vote_disagreements") == 0;
        (tally, leaks, flood_ok)
    };
    push_cell("net flood", flood_ops, flood_start.elapsed());
    verdict_row(
        &mut t,
        "net flood",
        &flood_tally,
        flood_ok,
        &flood_leaks.to_string(),
    );

    // --- summary notes (CI greps these exact keys) -------------------
    let silent_wrong =
        dmr.silent + transient.silent + tmr.silent + drill_tally.silent + flood_tally.silent;
    let vote_caught = dmr.vote + transient.vote;
    let vote_effective = vote_caught + dmr.silent + transient.silent;
    let vote_detection = if vote_effective == 0 {
        1.0
    } else {
        vote_caught as f64 / vote_effective as f64
    };
    t.note(format!(
        "silent_wrong: {silent_wrong} (accepted results refuted by the post-hoc sequential audit, \
         across every stage)"
    ));
    t.note(format!(
        "vote_detection: {vote_detection:.1} ({vote_caught} result-affecting corruptions under \
         DMR, every one refused by the vote alone; the sequential reference is a post-hoc audit, \
         not a runtime check)"
    ));
    t.note(format!(
        "tmr_corrected_bit_identical: {tmr_identical} ({} corrected waves, each bit-identical to \
         the fault-free solo solve; {} typed aborts)",
        tmr.corrected, tmr.typed
    ));
    t.note(format!(
        "quarantine_leaks: {} (jobs that reached a benched machine, drill + flood; the scrubber \
         quarantined {} machines, readmitted the healed one, and the pool kept serving)",
        drill_leaks + flood_leaks,
        2
    ));
    t.note("masked = the fault never disturbed the accepted wave; vote detected = the DMR vote");
    t.note("refused a divergent wave; typed errors = corruption-class machine aborts (and the");
    t.note("drill's planted chaos panics), all reported, never silent.");
    ChaosRun {
        table: t,
        baseline: Baseline::new("chaos", entries),
    }
}

/// A named experiment runner.
pub type Experiment = (&'static str, fn() -> Table);

/// Every experiment, in report order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("fig1", fig1 as fn() -> Table),
        ("t1", t1_min_cost),
        ("t2", t2_steps_vs_p),
        ("t3", t3_steps_vs_h),
        ("t4", t4_architectures),
        ("t5", t5_validation),
        ("t6", t6_engine),
        ("t7", t7_family),
        ("t8", t8_faults),
        ("t9", t9_phase_profile),
        ("a1", a1_bus_ablation),
        ("a2", a2_min_ablation),
        ("backend", backend_table),
        ("scale", scale_table),
        ("batch", batch_table),
        // The report binary intercepts this entry to also write the trace
        // and metrics artifacts from the same run (see `profile_run`).
        ("profile", || profile_run().table),
        // The report binary intercepts this entry to honour `--seed`
        // (see `faults_campaign`); 7 is the documented default.
        ("faults", || faults_campaign(7)),
        // Likewise intercepted for `--seed` (see `serve_campaign`).
        ("serve", || serve_campaign(7)),
        // Likewise intercepted for `--seed` (see `net_campaign`).
        ("net", || net_campaign(7)),
        // Likewise intercepted for `--seed` (see `chaos_campaign`).
        ("chaos", || chaos_campaign(7)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_reports_exact_linear_cost() {
        let t = t1_min_cost();
        // Every row: min steps == 4h + 4.
        for row in &t.rows {
            let h: u64 = row[1].parse().unwrap();
            let steps: u64 = row[2].parse().unwrap();
            assert_eq!(steps, 4 * h + 4, "{row:?}");
        }
    }

    #[test]
    fn t2_iterations_equal_p() {
        let t = t2_steps_vs_p();
        for row in &t.rows {
            assert_eq!(row[1], row[2], "{row:?}");
        }
    }

    #[test]
    fn t5_has_zero_mismatches() {
        let t = t5_validation();
        for row in &t.rows {
            assert_eq!(row[3], "0", "{row:?}");
        }
    }

    #[test]
    fn a1_overhead_is_positive() {
        let t = a1_bus_ablation();
        for row in &t.rows {
            assert!(row[3].starts_with('+'), "{row:?}");
        }
    }

    #[test]
    fn t9_bit_serial_scans_dominate() {
        let t = t9_phase_profile();
        let steps_of = |needle: &str| -> u64 {
            t.rows
                .iter()
                .find(|r| r[0].contains(needle))
                .map(|r| r[1].parse().unwrap())
                .unwrap_or(0)
        };
        let total: u64 = t.rows.iter().map(|r| r[1].parse::<u64>().unwrap()).sum();
        let scans = steps_of("stmt 11") + steps_of("stmt 12");
        assert!(
            scans as f64 / total as f64 > 0.8,
            "scans {scans} of {total}"
        );
    }

    #[test]
    fn t8_bist_coverage_is_total_and_nothing_is_silent() {
        let t = t8_faults();
        for row in &t.rows {
            assert_eq!(row[4], "0", "silent fault in {row:?}");
            assert_eq!(row[5], "0", "BIST miss in {row:?}");
            // distorting = wrong + undriven.
            let d: u32 = row[1].parse().unwrap();
            let w: u32 = row[2].parse().unwrap();
            let u: u32 = row[3].parse().unwrap();
            assert_eq!(d, w + u, "{row:?}");
        }
    }

    #[test]
    fn backend_rows_agree_and_cache_is_warm() {
        let t = backend_table();
        // Three rows per n: scalar, packed (W64), packed256.
        assert_eq!(t.rows.len(), 9);
        for block in t.rows.chunks(3) {
            assert_eq!(block[1][1], "packed", "{block:?}");
            assert_eq!(block[2][1], "packed256", "{block:?}");
            for row in &block[1..] {
                // Same n, same step count on every backend row.
                assert_eq!(row[0], block[0][0]);
                assert_eq!(row[2], block[0][2], "{block:?}");
            }
        }
        // The n = 64 rows keep the bus-plan cache hot at both widths.
        for row in &t.rows[t.rows.len() - 2..] {
            let rate: f64 = row[5].trim_end_matches('%').parse().unwrap();
            assert!(rate > 90.0, "plan hit rate {rate}% on {row:?}");
        }
    }

    #[test]
    fn all_experiments_render() {
        // fig1 and the cheap tables render without panicking (t4/t6 are
        // exercised by the report binary; they take seconds, not minutes).
        let _ = fig1().render();
        let _ = t1_min_cost().render();
        let _ = t3_steps_vs_h().render();
        let _ = a2_min_ablation().render();
    }
}
