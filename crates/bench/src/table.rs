//! Rendering and serialization of experiment tables.

use ppa_obs::Json;
use std::fmt::Write as _;

/// One experiment's output: a labelled grid plus free-form notes
/// (renders as aligned ASCII, CSV, or JSON).
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (`T1`, `A2`, ...).
    pub id: String,
    /// One-line description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified cells).
    pub rows: Vec<Vec<String>>,
    /// Notes printed under the grid (interpretation, renders, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the aligned ASCII form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "[{}] {}", self.id, self.title);
        let hdr: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", hdr.join("  "));
        let _ = writeln!(
            out,
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "  {}", cells.join("  "));
        }
        for note in &self.notes {
            for line in note.lines() {
                let _ = writeln!(out, "  # {line}");
            }
        }
        out
    }

    /// Renders the CSV form (headers + rows; notes as trailing comments).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// The JSON value form (`{id, title, headers, rows, notes}`).
    pub fn to_json_value(&self) -> Json {
        let strings = |v: &[String]| Json::Array(v.iter().map(|s| s.as_str().into()).collect());
        Json::obj(vec![
            ("id", self.id.as_str().into()),
            ("title", self.title.as_str().into()),
            ("headers", strings(&self.headers)),
            (
                "rows",
                Json::Array(self.rows.iter().map(|r| strings(r)).collect()),
            ),
            ("notes", strings(&self.notes)),
        ])
    }

    /// Renders the JSON form.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T9", "demo", vec!["a".into(), "value".into()]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        t.note("a note");
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        assert!(s.contains("[T9] demo"), "{s}");
        assert!(s.contains("# a note"), "{s}");
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows share the same width layout.
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = sample();
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("X", "t", vec!["h".into()]);
        t.row(vec!["a,b".into()]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    fn json_round_trips_shape() {
        let j = sample().to_json();
        let v = ppa_obs::Json::parse(&j).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("T9"));
        assert_eq!(v.get("rows").unwrap().as_array().unwrap().len(), 2);
    }
}
