//! Criterion bench for experiment T4: all architectures, one workload.
//!
//! Wall-clock of the *simulations* (the step-count comparison lives in
//! `report t4`); useful mainly to confirm the harness itself is not the
//! bottleneck when sweeping sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use ppa_baselines::{Gcn, Hypercube, McpSolver, PlainMesh, SequentialBf};
use ppa_graph::gen;
use ppa_mcp::mcp::{fit_word_bits, minimum_cost_path};
use ppa_ppc::Ppa;
use std::hint::black_box;

fn bench_architectures(c: &mut Criterion) {
    let n = 24;
    let w = gen::random_connected(n, 0.25, 20, 42);
    let d = 0;
    let h = 16u32;

    let mut group = c.benchmark_group("architectures");
    group.sample_size(10);

    group.bench_function("ppa", |b| {
        b.iter(|| {
            let mut ppa = Ppa::square(n).with_word_bits(h.max(fit_word_bits(&w)));
            black_box(minimum_cost_path(&mut ppa, black_box(&w), d).unwrap())
        })
    });
    group.bench_function("gcn", |b| {
        let s = Gcn::new(h);
        b.iter(|| black_box(s.solve(black_box(&w), d)))
    });
    group.bench_function("hypercube", |b| {
        let s = Hypercube::new(h);
        b.iter(|| black_box(s.solve(black_box(&w), d)))
    });
    group.bench_function("plain_mesh", |b| {
        let s = PlainMesh::new(h);
        b.iter(|| black_box(s.solve(black_box(&w), d)))
    });
    group.bench_function("sequential", |b| {
        let s = SequentialBf::new();
        b.iter(|| black_box(s.solve(black_box(&w), d)))
    });
    group.finish();
}

criterion_group!(benches, bench_architectures);
criterion_main!(benches);
