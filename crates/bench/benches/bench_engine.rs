//! Criterion bench for experiment T6: raw simulator primitives.
//!
//! Measures the host cost of single machine instructions (broadcast,
//! wired-OR, ALU map) across array sizes and execution modes — the
//! steps/second denominator of the T6 table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppa_machine::{Direction, ExecMode, Machine, Plane};
use std::hint::black_box;

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_broadcast");
    group.sample_size(20);
    for &n in &[64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut m = Machine::square(n);
            let src = Plane::from_fn(m.dim(), |c| (c.row * 31 + c.col) as i64);
            let open = Plane::from_fn(m.dim(), |c| c.row == 0);
            b.iter(|| {
                black_box(
                    m.broadcast(black_box(&src), Direction::South, &open)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_alu_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_alu_map");
    group.sample_size(20);
    let n = 256;
    for (label, mode) in [
        ("seq", ExecMode::Sequential),
        ("thr2", ExecMode::threaded(2)),
        ("thr4", ExecMode::threaded(4)),
    ] {
        group.bench_function(label, |b| {
            let mut m = Machine::with_mode(ppa_machine::Dim::square(n), mode);
            let src = Plane::from_fn(m.dim(), |c| (c.row ^ c.col) as i64);
            b.iter(|| black_box(m.map(black_box(&src), |&v| v.wrapping_mul(31) + 7).unwrap()));
        });
    }
    group.finish();
}

fn bench_bus_or(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_bus_or");
    group.sample_size(20);
    let n = 128;
    let mut m = Machine::square(n);
    let vals = Plane::from_fn(m.dim(), |c| (c.row + c.col) % 7 == 0);
    let open = Plane::from_fn(m.dim(), |c| c.col % 4 == 0);
    group.bench_function("n128", |b| {
        b.iter(|| black_box(m.bus_or(black_box(&vals), Direction::East, &open).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_broadcast, bench_alu_modes, bench_bus_or);
criterion_main!(benches);
