//! Criterion bench for experiment T1: the bit-serial `min` primitive.
//!
//! Wall-clock complements the step counts of `report t1`: simulated cost
//! is O(h) steps; host cost per step is O(n^2) PE updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppa_machine::Direction;
use ppa_ppc::{Parallel, Ppa};
use std::hint::black_box;

fn bench_min(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_bitserial");
    group.sample_size(20);
    for &n in &[16usize, 64] {
        for &h in &[8u32, 32] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("h{h}")),
                &(n, h),
                |b, &(n, h)| {
                    let mut ppa = Ppa::square(n).with_word_bits(h);
                    let vals = Parallel::from_fn(ppa.dim(), |c| {
                        ((c.row as u64 * 37 + c.col as u64 * 11) % 200) as i64
                    });
                    let col = ppa.col_index();
                    let nm1 = ppa.constant(n as i64 - 1);
                    let heads = ppa.eq(&col, &nm1).unwrap();
                    b.iter(|| {
                        black_box(ppa.min(black_box(&vals), Direction::West, &heads).unwrap())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_min_vs_word(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_vs_word_ablation");
    group.sample_size(20);
    let n = 32;
    let mut ppa = Ppa::square(n).with_word_bits(16);
    let vals = Parallel::from_fn(ppa.dim(), |c| ((c.row * 3 + c.col * 7) % 999) as i64);
    let col = ppa.col_index();
    let nm1 = ppa.constant(n as i64 - 1);
    let heads = ppa.eq(&col, &nm1).unwrap();
    group.bench_function("bit_serial", |b| {
        b.iter(|| black_box(ppa.min(black_box(&vals), Direction::West, &heads).unwrap()))
    });
    group.bench_function("word_combining", |b| {
        b.iter(|| {
            black_box(
                ppa.min_word(black_box(&vals), Direction::West, &heads)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_min, bench_min_vs_word);
criterion_main!(benches);
