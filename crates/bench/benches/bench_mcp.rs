//! Criterion bench for experiments T2/T3: the full MCP run.
//!
//! Sweeps the three complexity knobs independently: array size `n`
//! (host cost only — simulated steps stay flat), path length `p`
//! (iterations), and word width `h` (per-iteration cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppa_graph::gen;
use ppa_mcp::mcp::minimum_cost_path;
use ppa_ppc::Ppa;
use std::hint::black_box;

fn bench_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcp_vs_n");
    group.sample_size(10);
    for &n in &[8usize, 16, 32, 64] {
        let w = gen::padded_path(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| {
                let mut ppa = Ppa::square(n).with_word_bits(12);
                black_box(minimum_cost_path(&mut ppa, black_box(w), 4).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_vs_p(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcp_vs_p");
    group.sample_size(10);
    let n = 24;
    for &p in &[2usize, 4, 8, 16] {
        let w = gen::padded_path(n, p);
        group.bench_with_input(BenchmarkId::from_parameter(p), &w, |b, w| {
            b.iter(|| {
                let mut ppa = Ppa::square(n).with_word_bits(12);
                black_box(minimum_cost_path(&mut ppa, black_box(w), p).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_vs_h(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcp_vs_h");
    group.sample_size(10);
    let n = 16;
    let w = gen::ring(n);
    for &h in &[8u32, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| {
                let mut ppa = Ppa::square(n).with_word_bits(h);
                black_box(minimum_cost_path(&mut ppa, black_box(&w), 0).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_n, bench_vs_p, bench_vs_h);
criterion_main!(benches);
