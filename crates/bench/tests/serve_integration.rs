//! End-to-end acceptance tests for the serving stress campaign.
//!
//! These pin the `report serve` contract CI greps for: a seeded run of
//! the full job-mix x deadline-grid x fault x chaos campaign loses no
//! accepted job (`lost_jobs: 0`), completes no job with a silently
//! wrong answer (`silent_wrong: 0`), resumes a killed all-pairs
//! campaign byte-identically (`resume_byte_identical: true`), and
//! reconciles every per-scenario client-side tally 1:1 against the
//! service's own `serve.*` counters.

use ppa_bench::serve_campaign;

/// Column index helper — fails loudly if the campaign schema drifts.
fn col(table: &ppa_bench::Table, name: &str) -> usize {
    table
        .headers
        .iter()
        .position(|c| c == name)
        .unwrap_or_else(|| panic!("campaign table lost its {name:?} column"))
}

fn note(table: &ppa_bench::Table, prefix: &str) -> String {
    table
        .notes
        .iter()
        .find(|n| n.starts_with(prefix))
        .unwrap_or_else(|| panic!("campaign lost its {prefix:?} note"))
        .clone()
}

#[test]
fn campaign_loses_nothing_and_reconciles_every_scenario() {
    let table = serve_campaign(7);
    assert_eq!(table.rows.len(), 5, "campaign scenario grid changed size");

    // The three greppable invariants CI checks in the .txt artifact.
    assert!(note(&table, "lost_jobs:").starts_with("lost_jobs: 0 "));
    assert!(note(&table, "silent_wrong:").starts_with("silent_wrong: 0 "));
    assert!(note(&table, "resume_byte_identical:").starts_with("resume_byte_identical: true "));

    let reconciled = col(&table, "reconciled");
    let jobs = col(&table, "jobs");
    let accepted = col(&table, "accepted");
    let completed = col(&table, "completed");
    let failed = col(&table, "failed");
    let panics = col(&table, "panics");
    for row in &table.rows {
        // Client tallies match the serve.* metrics counters exactly.
        assert_eq!(row[reconciled], "yes", "unreconciled scenario {row:?}");
        // Every accepted job reported back as completed or failed.
        let acc: u64 = row[accepted].parse().unwrap();
        let done: u64 = row[completed].parse().unwrap();
        let fail: u64 = row[failed].parse().unwrap();
        assert_eq!(acc, done + fail, "job unaccounted for in {row:?}");
        assert!(
            acc <= row[jobs].parse().unwrap(),
            "over-acceptance in {row:?}"
        );
    }

    // The chaos scenarios must actually exercise panic isolation.
    let chaos_panics: u64 = table
        .rows
        .iter()
        .map(|r| r[panics].parse::<u64>().unwrap())
        .sum();
    assert!(
        chaos_panics > 0,
        "no worker ever panicked — chaos path dead"
    );
}

#[test]
fn robustness_invariants_hold_on_a_rerolled_seed() {
    // Per-scenario tallies legitimately vary with thread scheduling
    // (deadline misses and breaker routing are wall-clock dependent),
    // but the robustness invariants must hold for *any* seed: nothing
    // lost, nothing silently wrong, every scenario reconciled.
    let table = serve_campaign(11);
    assert!(note(&table, "lost_jobs:").starts_with("lost_jobs: 0 "));
    assert!(note(&table, "silent_wrong:").starts_with("silent_wrong: 0 "));
    assert!(note(&table, "resume_byte_identical:").starts_with("resume_byte_identical: true "));
    let reconciled = col(&table, "reconciled");
    for row in &table.rows {
        assert_eq!(row[reconciled], "yes", "unreconciled scenario {row:?}");
    }
}
