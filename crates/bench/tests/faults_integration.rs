//! End-to-end acceptance tests for the fault-tolerance campaign.
//!
//! These pin the `report faults` contract: every trial of the seeded
//! campaign ends in `recovered` or `reported` — never a silently wrong
//! path cost — and the recovery overhead reported by the solver's own
//! [`ppa_mcp::RecoveryStats`] reconciles row by row with the
//! `recovery.overhead_steps` counter collected through `ppa-obs`.

use ppa_bench::faults_campaign;
use ppa_graph::reference::bellman_ford_to_dest;
use ppa_graph::validate::is_valid_solution;
use ppa_graph::{gen, WeightMatrix, INF};
use ppa_machine::{Coord, FaultMap, SwitchFault};
use ppa_mcp::{solve_with_recovery, RecoveredMcp, RecoveryPolicy};
use ppa_ppc::Ppa;

/// Column index helper — keeps the assertions readable and fails loudly
/// if the campaign schema drifts.
fn col(table: &ppa_bench::Table, name: &str) -> usize {
    table
        .headers
        .iter()
        .position(|c| c == name)
        .unwrap_or_else(|| panic!("campaign table lost its {name:?} column"))
}

#[test]
fn campaign_has_no_silent_wrong_rows_and_overhead_reconciles() {
    let table = faults_campaign(7);
    // 3 sizes x 3 fault counts x 3 trials.
    assert_eq!(table.rows.len(), 27, "campaign grid changed size");
    let outcome = col(&table, "outcome");
    let faults = col(&table, "faults");
    let stats_overhead = col(&table, "overhead steps");
    let metrics_overhead = col(&table, "metrics overhead");

    let mut single_fault_rows = 0;
    for row in &table.rows {
        // The acceptance bar: every trial either recovers (verified
        // against the sequential reference inside the campaign) or
        // reports a typed error. A silently wrong cost is a bug.
        assert!(
            row[outcome] == "recovered" || row[outcome] == "reported",
            "trial {row:?} ended in {:?}",
            row[outcome]
        );
        // The solver's own step accounting and the ppa-obs counter are
        // two independent paths to the same number.
        assert_eq!(
            row[stats_overhead], row[metrics_overhead],
            "overhead accounting diverged in {row:?}"
        );
        if row[faults] == "1" {
            single_fault_rows += 1;
        }
    }
    assert_eq!(single_fault_rows, 9, "expected one k=1 block per size");

    // The JSON artifact the report binary writes is the same table
    // serialized; it must carry the outcomes and no silent-wrong rows.
    let json = table.to_json();
    assert!(json.contains("\"recovered\""));
    // The summary note mentions "0 silent-wrong"; what must never appear
    // is a *cell* holding that outcome.
    assert!(!json.contains("\"silent-wrong\""));
}

#[test]
fn campaign_is_deterministic_per_seed() {
    assert_eq!(faults_campaign(7).rows, faults_campaign(7).rows);
    // A different seed re-rolls graphs and fault maps; the schema stays.
    let other = faults_campaign(8);
    assert_eq!(other.rows.len(), 27);
}

/// Prunes every edge touching an excluded vertex, mirroring what the
/// degraded hardware can still compute.
fn prune(w: &WeightMatrix, excluded: &[usize]) -> WeightMatrix {
    let mut pruned = w.clone();
    for &v in excluded {
        for u in 0..w.n() {
            if u != v {
                pruned.remove(v, u);
                pruned.remove(u, v);
            }
        }
    }
    pruned
}

/// A degraded result is correct iff healthy vertices match the
/// sequential reference on the pruned graph and excluded vertices
/// report unreachable.
fn degraded_is_exact(w: &WeightMatrix, d: usize, r: &RecoveredMcp) -> bool {
    let oracle = bellman_ford_to_dest(&prune(w, &r.recovery.excluded), d);
    (0..w.n()).all(|v| {
        if r.recovery.excluded.contains(&v) {
            r.output.sow[v] == INF && r.output.ptn[v] == v
        } else {
            r.output.sow[v] == oracle.dist[v]
        }
    })
}

/// The satellite guarantee: every possible single stuck-at fault on a
/// 4x4 array is either recovered from (with a host-verified result) or
/// reported as a typed error — never a silently wrong path cost.
#[test]
fn every_single_stuck_fault_on_4x4_is_recovered_or_reported() {
    let w = gen::random_connected(4, 0.6, 9, 42);
    let d = 0;
    let mut corrupted_trials = 0;
    for row in 0..4 {
        for c in 0..4 {
            for kind in [SwitchFault::StuckShort, SwitchFault::StuckOpen] {
                let at = Coord { row, col: c };
                let mut ppa = Ppa::square(4).with_word_bits(10);
                let mut fm = FaultMap::new();
                fm.inject(at, kind);
                ppa.machine_mut().attach_faults(fm);
                match solve_with_recovery(
                    &mut ppa,
                    &w,
                    d,
                    RecoveryPolicy::Degrade { max_retries: 2 },
                ) {
                    Ok(r) => {
                        if r.recovery.self_tests > 0 {
                            corrupted_trials += 1;
                        }
                        let exact = if r.recovery.excluded.is_empty() {
                            is_valid_solution(&w, d, &r.output.sow, &r.output.ptn)
                        } else {
                            degraded_is_exact(&w, d, &r)
                        };
                        assert!(exact, "{kind} at {at} produced a silently wrong result");
                    }
                    // A typed error is an acceptable outcome: the fault
                    // was detected and reported, not papered over.
                    Err(e) => {
                        corrupted_trials += 1;
                        let _ = e.to_string();
                    }
                }
            }
        }
    }
    assert!(
        corrupted_trials > 0,
        "no fault ever corrupted a run — the injection path is dead"
    );
}

/// The Degrade acceptance criterion: with a faulty switch box in row 2,
/// the solver excludes the affected vertices and returns costs for the
/// surviving sources that match the sequential reference exactly.
#[test]
fn degrade_returns_exact_costs_for_healthy_sources() {
    // On a ring, vertex 3's only candidate next hop is 4, and a
    // StuckOpen at (2, 4) splits column 4's southward broadcast so rows
    // below 2 read MAXINT there — guaranteed corruption, and the
    // invariant check trips deterministically.
    let w = gen::ring(8);
    let d = 0;
    let mut ppa = Ppa::square(8).with_word_bits(10);
    let mut fm = FaultMap::new();
    fm.inject(Coord { row: 2, col: 4 }, SwitchFault::StuckOpen);
    ppa.machine_mut().attach_faults(fm);

    let r = solve_with_recovery(&mut ppa, &w, d, RecoveryPolicy::Degrade { max_retries: 0 })
        .expect("degrade solves on the healthy sub-array");
    assert_eq!(r.recovery.excluded, vec![2, 4]);
    assert!(r.recovery.self_tests >= 1);
    assert!(degraded_is_exact(&w, d, &r));
    // Spot-check the surviving ring arc 5 -> 6 -> 7 -> 0 carries real
    // costs, not just unreachable markers.
    assert_eq!(r.output.sow[7], 1);
    assert_eq!(r.output.sow[6], 2);
    assert_eq!(r.output.sow[5], 3);
    assert_eq!(r.output.sow[2], INF);
}
