//! Bench-gate mutation drill: prove the width-differential gate of
//! `report backend` / `report scale` actually fires on a corrupted
//! kernel, so `report bench --check` exits nonzero instead of recording
//! a poisoned baseline.
//!
//! The drill flips one bit of every packed `vote` result (the
//! `mutation-drill` feature of `ppa-machine`, never compiled into
//! release binaries) and asserts that [`ppa_bench::measure_identical`]
//! — the exact helper the BK/SC tables run every cell through before
//! timing it — panics on the corrupted backend at both word widths,
//! while passing on the healthy ones. A panic inside `backend_run` /
//! `scale_run` aborts the `report` binary with a nonzero exit, which is
//! the gate the acceptance criterion names.

use ppa_bench::measure_identical;
use ppa_graph::gen;
use ppa_machine::{Dim, ExecMode, Machine, PackedBackend, Word, W256, W64};
use ppa_mcp::mcp::{fit_word_bits, minimum_cost_path};
use ppa_ppc::Ppa;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The drill solves toward an *interior* destination. The perturbed
/// bit is PE (0, 0); with destination 0 that is the destination's own
/// diagonal cell, whose distance is pinned at zero by the recurrence,
/// so a corruption there self-masks — the one position in the array
/// where a one-bit vote flip is unobservable. Any other destination
/// makes row 0's minimum load-bearing and the flip visible.
const DRILL_DEST: usize = 7;

/// The BK workload's smallest cell, solved on the scalar reference.
fn reference() -> (ppa_graph::WeightMatrix, u32, ppa_mcp::McpOutput) {
    let n = 16usize;
    let w = gen::random_connected(n, 0.2, 25, 99);
    let h = 16.max(fit_word_bits(&w)).clamp(2, 62);
    let mut ppa = Ppa::square(n).with_word_bits(h);
    let want = minimum_cost_path(&mut ppa, &w, DRILL_DEST).unwrap();
    (w, h, want)
}

fn drilled_ppa<W: Word>(n: usize, h: u32) -> Ppa<PackedBackend<W>> {
    Ppa::from_machine(Machine::with_backend(
        Dim::square(n),
        ExecMode::Sequential,
        PackedBackend::<W>::with_perturbed_vote(),
    ))
    .with_word_bits(h)
}

#[test]
fn healthy_backends_pass_the_gate_at_both_widths() {
    let (w, h, want) = reference();
    let n = w.n();
    measure_identical(
        &|| Ppa::<PackedBackend>::packed(n).with_word_bits(h),
        &w,
        DRILL_DEST,
        &want,
        "drill control, packed",
    );
    measure_identical(
        &|| Ppa::<PackedBackend<W256>>::packed_wide(n).with_word_bits(h),
        &w,
        DRILL_DEST,
        &want,
        "drill control, packed256",
    );
}

#[test]
fn one_bit_vote_corruption_trips_the_gate_at_w64() {
    let (w, h, want) = reference();
    let n = w.n();
    let tripped = catch_unwind(AssertUnwindSafe(|| {
        measure_identical(
            &|| drilled_ppa::<W64>(n, h),
            &w,
            DRILL_DEST,
            &want,
            "drill, packed",
        )
    }));
    assert!(
        tripped.is_err(),
        "the bit-identity gate must fail on a one-bit vote corruption (W64)"
    );
}

#[test]
fn one_bit_vote_corruption_trips_the_gate_at_w256() {
    let (w, h, want) = reference();
    let n = w.n();
    let tripped = catch_unwind(AssertUnwindSafe(|| {
        measure_identical(
            &|| drilled_ppa::<W256>(n, h),
            &w,
            DRILL_DEST,
            &want,
            "drill, packed256",
        )
    }));
    assert!(
        tripped.is_err(),
        "the bit-identity gate must fail on a one-bit vote corruption (W256)"
    );
}

/// Even if a corrupted run slipped past the in-table assertions, a step
/// or counter drift in the recorded baseline is a hard `--check`
/// failure on any host — the second, independent layer of the gate.
#[test]
fn step_drift_is_a_hard_check_failure() {
    use ppa_bench::{Baseline, BaselineEntry, WallStats};
    let entry = |steps: u64| BaselineEntry {
        cell: "n=16/packed256".into(),
        steps,
        wall: WallStats::from_samples(&[1_000_000]),
        counters: std::collections::BTreeMap::new(),
    };
    let recorded = Baseline::new("backend", vec![entry(1000)]);
    let drifted = Baseline::new("backend", vec![entry(1001)]);
    let report = ppa_bench::baseline::compare(&recorded, &drifted);
    assert!(
        !report.passed(),
        "a one-step drift in a width cell must hard-fail report bench --check"
    );
}
