//! Integration test of the `report profile` experiment: the artifacts that
//! `profile_run` produces must be internally consistent — every per-Op
//! metrics counter exactly matches the run's [`StepReport`], the Chrome
//! trace is Perfetto-loadable (balanced `B`/`E` pairs), and the metrics
//! snapshot survives a JSON round-trip byte-exactly.

use ppa_bench::profile_run;
use ppa_machine::Op;
use ppa_obs::{validate_chrome_trace, Json, Metrics};

#[test]
fn profile_artifacts_reconcile_and_validate() {
    let run = profile_run();

    // Acceptance criterion: the metrics JSON's per-Op counters equal the
    // run's StepReport totals, class by class.
    for op in Op::ALL {
        assert_eq!(
            run.metrics.counter(op.metric_name()),
            run.report.count(op),
            "counter mismatch for {}",
            op.label()
        );
    }
    assert_eq!(run.metrics.counter("steps.total"), run.report.total());
    assert!(run.report.total() > 0, "profile workload ran nothing");

    // The iteration histogram accounts for every loop pass.
    let iterations = run.metrics.counter("mcp.iterations");
    assert!(iterations > 0);
    let hist = run
        .metrics
        .histogram("mcp.steps_per_iteration")
        .expect("per-iteration histogram");
    assert_eq!(hist.count, iterations);

    // Bus/mask activity metrics fired (the workload broadcasts heavily).
    assert!(run.metrics.counter("bus.transactions") > 0);
    assert!(run.metrics.counter("mask.writes") > 0);

    // The Chrome trace is well-formed and stays so through the text form
    // that `report profile --trace-out` writes to disk.
    let pairs = validate_chrome_trace(&run.chrome_trace).expect("well-formed trace");
    assert!(pairs > 0, "trace has no spans");
    let reparsed = Json::parse(&run.chrome_trace.to_string_pretty()).unwrap();
    assert_eq!(validate_chrome_trace(&reparsed), Ok(pairs));

    // The metrics snapshot round-trips exactly through its JSON encoding.
    let text = run.metrics.to_json().to_string_pretty();
    let back = Metrics::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, run.metrics);

    // The wall-clock engine hooks observed the same run.
    let engine = run
        .engine
        .expect("engine profiling enabled during profile_run");
    assert!(engine.build_calls > 0);
    assert!(engine.reduce_calls > 0);

    // Micro-op attribution observed the same run: per-class counts equal
    // the controller report, and the exec.* counters folded into the
    // metrics snapshot agree.
    assert!(!run.micro.is_empty(), "micro profile recorded nothing");
    for op in Op::ALL {
        assert_eq!(
            run.micro.class(op.label()).map_or(0, |w| w.count),
            run.report.count(op),
            "micro class {}",
            op.label()
        );
        assert_eq!(
            run.metrics.counter(&format!(
                "exec.{}.{}.count",
                run.micro.backend(),
                op.label()
            )),
            run.report.count(op),
            "exec counter {}",
            op.label()
        );
    }
    assert_eq!(run.micro.total().count, run.report.total());

    // The folded-stack artifact is valid inferno input: every line is
    // `backend;class <nanos>` and the frame set matches the profile.
    let folded = run.micro.folded_lines();
    let stacks = ppa_obs::parse_folded(&folded).expect("folded lines parse");
    assert!(!stacks.is_empty(), "folded artifact is empty");
    for (frames, _) in &stacks {
        assert_eq!(frames.len(), 2, "stack depth is backend;class");
        assert_eq!(frames[0], run.micro.backend());
    }
}

// The micro profile must reconcile 1:1 with the controller's step
// counters on *every* backend, not just the scalar reference (which
// `ppa-machine`'s own tests cover).

#[test]
fn micro_profile_reconciles_on_packed_backend() {
    let w = ppa_graph::gen::ring(6);
    let mut ppa = ppa_ppc::Ppa::packed(6).with_word_bits(10);
    ppa.enable_metrics();
    ppa.enable_micro_profile();
    let out = ppa_mcp::mcp::minimum_cost_path(&mut ppa, &w, 0).expect("packed MCP solves");
    let micro = ppa.take_micro_profile();
    let metrics = ppa.take_metrics();
    assert_eq!(micro.backend(), "packed");
    let report = out.stats.total;
    for op in Op::ALL {
        assert_eq!(
            micro.class(op.label()).map_or(0, |w| w.count),
            report.count(op),
            "packed micro class {}",
            op.label()
        );
        assert_eq!(
            metrics.counter(&format!("exec.packed.{}.count", op.label())),
            report.count(op),
            "packed exec counter {}",
            op.label()
        );
    }
    assert_eq!(micro.total().count, report.total());
}

#[test]
fn micro_profile_reconciles_on_threaded_backend() {
    let w = ppa_graph::gen::ring(6);
    let mut ppa = ppa_ppc::Ppa::threaded(6, 2).with_word_bits(10);
    ppa.enable_metrics();
    ppa.enable_micro_profile();
    let out = ppa_mcp::mcp::minimum_cost_path(&mut ppa, &w, 0).expect("threaded MCP solves");
    let micro = ppa.take_micro_profile();
    let metrics = ppa.take_metrics();
    assert_eq!(micro.backend(), "threaded");
    let report = out.stats.total;
    for op in Op::ALL {
        assert_eq!(
            micro.class(op.label()).map_or(0, |w| w.count),
            report.count(op),
            "threaded micro class {}",
            op.label()
        );
        assert_eq!(
            metrics.counter(&format!("exec.threaded.{}.count", op.label())),
            report.count(op),
            "threaded exec counter {}",
            op.label()
        );
    }
    assert_eq!(micro.total().count, report.total());
}
