//! Integration test of the `report profile` experiment: the artifacts that
//! `profile_run` produces must be internally consistent — every per-Op
//! metrics counter exactly matches the run's [`StepReport`], the Chrome
//! trace is Perfetto-loadable (balanced `B`/`E` pairs), and the metrics
//! snapshot survives a JSON round-trip byte-exactly.

use ppa_bench::profile_run;
use ppa_machine::Op;
use ppa_obs::{validate_chrome_trace, Json, Metrics};

#[test]
fn profile_artifacts_reconcile_and_validate() {
    let run = profile_run();

    // Acceptance criterion: the metrics JSON's per-Op counters equal the
    // run's StepReport totals, class by class.
    for op in Op::ALL {
        assert_eq!(
            run.metrics.counter(op.metric_name()),
            run.report.count(op),
            "counter mismatch for {}",
            op.label()
        );
    }
    assert_eq!(run.metrics.counter("steps.total"), run.report.total());
    assert!(run.report.total() > 0, "profile workload ran nothing");

    // The iteration histogram accounts for every loop pass.
    let iterations = run.metrics.counter("mcp.iterations");
    assert!(iterations > 0);
    let hist = run
        .metrics
        .histogram("mcp.steps_per_iteration")
        .expect("per-iteration histogram");
    assert_eq!(hist.count, iterations);

    // Bus/mask activity metrics fired (the workload broadcasts heavily).
    assert!(run.metrics.counter("bus.transactions") > 0);
    assert!(run.metrics.counter("mask.writes") > 0);

    // The Chrome trace is well-formed and stays so through the text form
    // that `report profile --trace-out` writes to disk.
    let pairs = validate_chrome_trace(&run.chrome_trace).expect("well-formed trace");
    assert!(pairs > 0, "trace has no spans");
    let reparsed = Json::parse(&run.chrome_trace.to_string_pretty()).unwrap();
    assert_eq!(validate_chrome_trace(&reparsed), Ok(pairs));

    // The metrics snapshot round-trips exactly through its JSON encoding.
    let text = run.metrics.to_json().to_string_pretty();
    let back = Metrics::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, run.metrics);

    // The wall-clock engine hooks observed the same run.
    let engine = run
        .engine
        .expect("engine profiling enabled during profile_run");
    assert!(engine.build_calls > 0);
    assert!(engine.reduce_calls > 0);
}
